"""Scenario: arbitrary Boolean events beyond PRESENCE and PATTERN.

The paper's Fig. 1 motivates events that are neither a region visit nor a
region sequence -- e.g. "visited the clinic at t=2 but NOT the pharmacy
at t=4" or "visited exactly one of two sensitive places".  The compiled-
automaton engine (a documented extension, DESIGN.md §5) evaluates priors
and posteriors for any such expression; PRESENCE/PATTERN reduce to the
paper's two-world construction as a special case.

Run:  python examples/custom_events.py
"""

import numpy as np

from repro import AutomatonModel, GridMap, gaussian_kernel_transitions
from repro.events.expressions import in_region
from repro.lppm.planar_laplace import PlanarLaplaceMechanism

HORIZON = 8


def main() -> None:
    grid = GridMap(6, 6, cell_size_km=1.0)
    chain = gaussian_kernel_transitions(grid, sigma=1.0)
    pi = np.full(grid.n_cells, 1.0 / grid.n_cells)

    clinic = grid.rectangle_cells((0, 1), (0, 1))
    pharmacy = grid.rectangle_cells((4, 5), (4, 5))

    visited_clinic = in_region(2, clinic) | in_region(3, clinic)
    visited_pharmacy = in_region(4, pharmacy) | in_region(5, pharmacy)

    events = {
        "clinic then no pharmacy": visited_clinic & ~visited_pharmacy,
        "exactly one of the two": (
            (visited_clinic & ~visited_pharmacy)
            | (~visited_clinic & visited_pharmacy)
        ),
        "both places": visited_clinic & visited_pharmacy,
        "neither place": ~visited_clinic & ~visited_pharmacy,
    }

    lppm = PlanarLaplaceMechanism(grid, alpha=1.0)
    rng = np.random.default_rng(2)
    from repro.markov.simulate import sample_trajectory

    truth = sample_trajectory(chain, HORIZON, initial=pi, rng=rng)
    released = [lppm.perturb(u, rng) for u in truth]
    columns = np.stack([lppm.emission_column(o) for o in released])

    print(f"{'event':<26} {'prior':>8} {'posterior':>10} {'states':>7}")
    for name, expression in events.items():
        model = AutomatonModel(chain, expression, horizon=HORIZON)
        prior = model.prior_probability(pi)
        joint = model.joint_probability(pi, columns)
        total = model.observation_probability(pi, columns)
        posterior = joint / total
        print(
            f"{name:<26} {prior:>8.3f} {posterior:>10.3f} "
            f"{model.compiled.max_states:>7}"
        )
    print(
        "\n'states' is the automaton width: PRESENCE/PATTERN-like events "
        "compile to 2 worlds; richer Boolean structure needs a few more."
    )


if __name__ == "__main__":
    main()
