"""Scenario: indistinguishability between two *alternative* events.

The paper defers this definition to future work (Section II-C):
"Alternatively we can define privacy as indistinguishability between an
event and an alternative event."  Concretely: the adversary knows the
user ran an errand mid-day; the secret is *which* errand -- the clinic
or the shopping mall.  We quantify, per released prefix, the ratio
``Pr(trace | clinic visit) / Pr(trace | mall visit)`` under increasingly
strict mechanisms, and check arbitrary-prior safety with the certificate
+ search of :class:`repro.core.EventPairAnalyzer`.

Run:  python examples/alternative_events.py
"""

import numpy as np

from repro import (
    EventPairAnalyzer,
    GridMap,
    PlanarLaplaceMechanism,
    PresenceEvent,
    Region,
    gaussian_kernel_transitions,
)
from repro.core.event_pair import PairStatus
from repro.markov.simulate import sample_trajectory

HORIZON = 12
EPSILON = 0.5


def main() -> None:
    grid = GridMap(8, 8, cell_size_km=1.0)
    chain = gaussian_kernel_transitions(grid, sigma=1.5)
    pi = np.full(grid.n_cells, 1.0 / grid.n_cells)

    clinic = Region.rectangle(grid, (0, 1), (0, 1))
    mall = Region.rectangle(grid, (6, 7), (6, 7))
    clinic_visit = PresenceEvent(clinic, start=5, end=8)
    mall_visit = PresenceEvent(mall, start=5, end=8)
    analyzer = EventPairAnalyzer(chain, clinic_visit, mall_visit, horizon=HORIZON)

    rng = np.random.default_rng(6)
    truth = sample_trajectory(chain, HORIZON, initial=pi, rng=rng)

    print(f"secret: clinic visit vs mall visit during t=5..8  (eps = {EPSILON})")
    print(f"{'alpha':>6} {'max |log ratio| (fixed pi)':>28} {'arbitrary-pi verdicts':>24}")
    for alpha in (2.0, 0.5, 0.1, 0.02):
        lppm = PlanarLaplaceMechanism(grid, alpha)
        released = [lppm.perturb(u, rng) for u in truth]
        columns = np.stack([lppm.emission_column(o) for o in released])
        ratios = analyzer.ratio_fixed_prior(pi, columns)
        worst = max(abs(float(np.log(r))) for r in ratios)
        checks = analyzer.check_arbitrary_prior(columns, epsilon=EPSILON, seed=0)
        tally = {status: 0 for status in PairStatus}
        for check in checks:
            tally[check.status] += 1
        verdicts = "/".join(f"{tally[s]}{s.value[0].upper()}" for s in PairStatus)
        print(f"{alpha:>6} {worst:>28.3f} {verdicts:>24}")
    print(
        "\nweaker mechanisms reveal which errand happened (large log-ratio, "
        "violations); strict ones keep the two stories indistinguishable "
        "(certified Safe). Verdict key: S=safe, V=violated, U=unknown."
    )


if __name__ == "__main__":
    main()
