"""Scenario: hide a hospital visit from a location-based service.

The paper's motivating example: "visited hospital in the last week".  A
commuter shares her location with an LBS; an adversary knowing her
mobility pattern runs optimal forward-backward inference on the released
trace.  We compare what the adversary learns about the hospital-visit
event under (a) a plain planar Laplace mechanism tuned for location
privacy only, and (b) the same mechanism calibrated by PriSTE for
spatiotemporal event privacy.

Run:  python examples/hospital_visit.py
"""

import numpy as np

from repro import (
    GridMap,
    PlanarLaplaceMechanism,
    PresenceEvent,
    PriSTE,
    PriSTEConfig,
    Region,
)
from repro.core.joint import joint_probability, observation_probability
from repro.core.two_world import TwoWorldModel
from repro.markov.simulate import sample_trajectory
from repro.markov.synthetic import biased_commute_transitions

HORIZON = 24  # one day, hourly samples
EPSILON = 0.4


def build_world():
    """A 10x10 km city with home, office and a hospital block."""
    grid = GridMap(10, 10, cell_size_km=1.0)
    home = grid.cell_index(1, 1)
    office = grid.cell_index(8, 8)
    chain = biased_commute_transitions(
        grid, anchors=(home, office), sigma=1.0, anchor_pull=0.55
    )
    hospital = Region.rectangle(grid, (4, 5), (0, 1))
    return grid, chain, home, hospital


def adversary_event_posterior(chain, event, emission_matrices, released, pi):
    """Pr(EVENT | released trace) for an adversary knowing the chain."""
    model = TwoWorldModel(chain, event, horizon=len(released))
    columns = np.stack(
        [matrix[:, o] for matrix, o in zip(emission_matrices, released)]
    )
    joint = joint_probability(model, pi, columns)
    total = observation_probability(model, pi, columns)
    return joint / total


def main() -> None:
    grid, chain, home, hospital = build_world()
    pi = np.zeros(grid.n_cells)
    pi[home] = 1.0
    # A strictly positive prior keeps the event ratio well-defined while
    # staying overwhelmingly "starts at home".
    pi = 0.99 * pi + 0.01 / grid.n_cells

    # Secret: present at the hospital block sometime mid-day (t = 9..14).
    event = PresenceEvent(hospital, start=9, end=14)
    model = TwoWorldModel(chain, event, horizon=HORIZON)
    print(f"prior Pr(hospital visit) = {model.prior_probability(pi):.3f}")

    # A day that does include a hospital visit: force the walk through it.
    rng = np.random.default_rng(4)
    truth = None
    for _ in range(400):
        candidate = sample_trajectory(chain, HORIZON, initial=pi, rng=rng)
        if event.ground_truth(candidate):
            truth = candidate
            break
    if truth is None:
        raise SystemExit("no visiting trajectory sampled; increase attempts")
    print(f"ground truth: the user DID visit the hospital")

    # (a) Location privacy only: fixed 1.0-PLM.
    plain = PlanarLaplaceMechanism(grid, alpha=1.0)
    released_plain = [plain.perturb(u, rng) for u in truth]
    posterior_plain = adversary_event_posterior(
        chain, event, [plain.emission_matrix()] * HORIZON, released_plain, pi
    )

    # (b) PriSTE-calibrated release of the same trajectory.
    config = PriSTEConfig(epsilon=EPSILON, prior_mode="fixed", prior=pi)
    priste = PriSTE(chain, event, plain, config, horizon=HORIZON)
    log = priste.run(truth, rng=4)
    matrices = [
        PlanarLaplaceMechanism(grid, record.budget).emission_matrix()
        for record in log.records
    ]
    posterior_priste = adversary_event_posterior(
        chain, event, matrices, log.released_cells, pi
    )

    prior = model.prior_probability(pi)
    print(f"adversary posterior, plain 1.0-PLM : {posterior_plain:.3f}")
    print(f"adversary posterior, PriSTE        : {posterior_priste:.3f}")
    print(
        f"PriSTE kept the posterior within the epsilon-band of the prior: "
        f"|log-odds shift| = "
        f"{abs(np.log((posterior_priste / (1 - posterior_priste)) / (prior / (1 - prior)))):.3f}"
        f" <= {EPSILON}"
    )
    print(f"utility cost: avg budget {log.average_budget:.3f} vs base 1.0; "
          f"avg error {log.euclidean_error_km(grid, truth):.2f} km")


if __name__ == "__main__":
    main()
