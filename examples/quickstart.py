"""Quickstart: protect a PRESENCE event while releasing locations.

A user walks on a 20x20 km grid (Gaussian-kernel mobility).  The secret
is "visited the sensitive area (cells 0..9) at some time in t = 4..8".
We release perturbed locations with a planar Laplace mechanism and let
PriSTE (Algorithm 2) calibrate its budget so the released sequence
satisfies 0.5-spatiotemporal event privacy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GridMap,
    PlanarLaplaceMechanism,
    PresenceEvent,
    PriSTE,
    PriSTEConfig,
    Region,
    gaussian_kernel_transitions,
    quantify_fixed_prior,
    sample_trajectory,
)


def main() -> None:
    # 1. The world: a km-scale grid and a Markov mobility model.
    grid = GridMap(20, 20, cell_size_km=1.0)
    chain = gaussian_kernel_transitions(grid, sigma=1.0)
    pi = np.full(grid.n_cells, 1.0 / grid.n_cells)

    # 2. The secret: PRESENCE in cells 0..9 during timestamps 4..8.
    sensitive = Region.from_range(grid.n_cells, 0, 9)
    event = PresenceEvent(sensitive, start=4, end=8)
    print(f"protecting {event}")

    # 3. The mechanism and the privacy requirement.
    lppm = PlanarLaplaceMechanism(grid, alpha=0.2)
    epsilon = 0.5
    config = PriSTEConfig(epsilon=epsilon, prior_mode="fixed", prior=pi)
    priste = PriSTE(chain, event, lppm, config, horizon=50)

    # 4. Walk and release.
    truth = sample_trajectory(chain, 50, initial=pi, rng=0)
    log = priste.run(truth, rng=0)

    print(f"released {len(log)} locations")
    print(f"average PLM budget kept: {log.average_budget:.4f} (base alpha 0.2)")
    print(f"average Euclidean error: {log.euclidean_error_km(grid, truth):.2f} km")
    in_window = log.budgets[event.start - 1 : event.end]
    print(f"budgets inside the event window: {np.round(in_window, 4)}")

    # 5. Verify the guarantee on the released sequence.
    matrices = np.stack(
        [
            PlanarLaplaceMechanism(grid, record.budget).emission_matrix()
            for record in log.records
        ]
    )
    result = quantify_fixed_prior(
        chain, event, matrices, log.released_cells, pi, horizon=50
    )
    print(
        f"realized privacy loss: {result.epsilon:.4f} <= {epsilon} "
        f"(Pr(EVENT) = {result.prior_probability:.3f})"
    )
    assert result.epsilon <= epsilon + 1e-6


if __name__ == "__main__":
    main()
