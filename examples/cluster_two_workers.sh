#!/usr/bin/env bash
# Two-worker cluster walkthrough with a live migration drill.
#
# Starts two `repro worker` processes on ephemeral localhost ports, routes a
# cluster-backed server at them, drives a handful of sessions, drains one
# worker mid-stream with the `migrate` op, kills the drained worker, and
# finishes every session — zero dropped streams.
#
# Run from the repo root:
#   bash examples/cluster_two_workers.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORKDIR="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

ENGINE_FLAGS=(--rows 6 --cols 6 --horizon 10)

# 1. Two workers on ephemeral ports. Each announces a JSON line with the
#    bound port once it is listening.
python -m repro.cli worker --listen 127.0.0.1:0 "${ENGINE_FLAGS[@]}" \
  > "$WORKDIR/w1.jsonl" &
W1_PID=$!
python -m repro.cli worker --listen 127.0.0.1:0 "${ENGINE_FLAGS[@]}" \
  > "$WORKDIR/w2.jsonl" &
W2_PID=$!

for f in w1 w2; do
  for _ in $(seq 1 50); do
    grep -q '"op": "worker"' "$WORKDIR/$f.jsonl" 2>/dev/null && break
    sleep 0.2
  done
done

W1_ADDR="tcp://$(python - "$WORKDIR/w1.jsonl" <<'EOF'
import json, sys
line = json.loads(open(sys.argv[1]).readline())
print(f"{line['host']}:{line['port']}")
EOF
)"
W2_ADDR="tcp://$(python - "$WORKDIR/w2.jsonl" <<'EOF'
import json, sys
line = json.loads(open(sys.argv[1]).readline())
print(f"{line['host']}:{line['port']}")
EOF
)"
echo "workers: $W1_ADDR $W2_ADDR"

# 2. A cluster-backed server routing at both workers.
python -m repro.cli serve --port 0 "${ENGINE_FLAGS[@]}" \
  --backend "$W1_ADDR,$W2_ADDR" --batch-window-ms 2 \
  > "$WORKDIR/serve.jsonl" &
SERVE_PID=$!

for _ in $(seq 1 50); do
  grep -q '"op": "serving"' "$WORKDIR/serve.jsonl" 2>/dev/null && break
  sleep 0.2
done
PORT="$(python - "$WORKDIR/serve.jsonl" <<'EOF'
import json, sys
print(json.loads(open(sys.argv[1]).readline())["port"])
EOF
)"
echo "server: 127.0.0.1:$PORT"

# 3. Drive sessions, drain worker 1 mid-stream, kill it, and finish.
PORT="$PORT" W1_ADDR="$W1_ADDR" W1_PID="$W1_PID" python - <<'EOF'
import os
import signal
import time

from repro.service.client import ServiceClient

port = int(os.environ["PORT"])
w1_addr = os.environ["W1_ADDR"]
w1_pid = int(os.environ["W1_PID"])

with ServiceClient("127.0.0.1", port) as client:
    stats = client.stats()
    assert stats["server"]["shards"] == 2, stats["server"]
    assert stats["shards"]["alive"] == 2, stats["shards"]

    sessions = [f"drill-{i}" for i in range(16)]
    for sid in sessions:
        client.open(sid)
    for t in range(3):
        for i, sid in enumerate(sessions):
            client.step(sid, cell=(5 * t + i) % 36)

    summary = client.migrate(w1_addr)
    print("drained:", summary)
    assert summary["worker"] == w1_addr
    assert summary["migrated"] >= 1, summary

    os.kill(w1_pid, signal.SIGTERM)
    time.sleep(0.5)

    # Every stream keeps serving after its old home is gone.
    for t in range(3, 6):
        for i, sid in enumerate(sessions):
            client.step(sid, cell=(5 * t + i) % 36)
    for sid in sessions:
        out = client.finish(sid)
        assert out["n_released"] == 6, out
    print(f"finished {len(sessions)} sessions, zero dropped streams")
EOF

# 4. Clean drain: SIGINT the server and confirm nothing was lost.
kill -INT "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
python - "$WORKDIR/serve.jsonl" <<'EOF'
import json, sys
drained = [json.loads(l) for l in open(sys.argv[1]) if '"drained"' in l][-1]
assert drained["sessions_lost"] == 0, drained
print("drained cleanly:", drained)
EOF

echo "OK"
