"""Scenario: audit LPPM families for event privacy and attack resistance.

How much spatiotemporal event privacy do the classic LPPM families give
for free?  We quantify the realized loss of planar Laplace, k-randomized
response, the exponential mechanism, and spatial cloaking (with and
without block noise) for the same PRESENCE secret, and measure the
adversary's localization ability (expected error, top-1 accuracy) with
the inference toolkit.  Deterministic cloaking — k-anonymous for
location queries — leaks events that align with block boundaries
completely, which is the paper's motivating gap.

Run:  python examples/mechanism_audit.py
"""

import numpy as np

from repro import (
    CloakingMechanism,
    ExponentialMechanism,
    GridMap,
    PlanarLaplaceMechanism,
    PresenceEvent,
    RandomizedResponseMechanism,
    Region,
    gaussian_kernel_transitions,
    location_posteriors,
    quantify_fixed_prior,
)
from repro.errors import ReproError
from repro.markov.simulate import sample_trajectory
from repro.metrics.privacy import expected_inference_error_km, top1_accuracy

HORIZON = 20
N_WALKS = 15


def main() -> None:
    grid = GridMap(8, 8, cell_size_km=1.0)
    chain = gaussian_kernel_transitions(grid, sigma=1.0)
    pi = np.full(grid.n_cells, 1.0 / grid.n_cells)
    # Secret aligned with a cloaking block on purpose.
    event = PresenceEvent(Region.rectangle(grid, (0, 1), (0, 1)), start=5, end=8)

    mechanisms = {
        "1.0-PLM": PlanarLaplaceMechanism(grid, 1.0),
        "2.0-exponential": ExponentialMechanism.from_distance(grid, 2.0),
        "ln(8)-kRR": RandomizedResponseMechanism(grid.n_cells, np.log(8.0)),
        "cloaking k=4 (det.)": CloakingMechanism.k_anonymous(grid, k=4),
        "cloaking k=4 (noisy)": CloakingMechanism.k_anonymous(
            grid, k=4, flip_probability=0.35
        ),
    }

    rng = np.random.default_rng(3)
    walks = [sample_trajectory(chain, HORIZON, initial=pi, rng=rng) for _ in range(N_WALKS)]

    header = f"{'mechanism':<22} {'event eps (max)':>16} {'adv err km':>11} {'top-1':>6}"
    print(header)
    print("-" * len(header))
    for name, mechanism in mechanisms.items():
        losses = []
        errors = []
        accuracy = []
        for truth in walks:
            released = [mechanism.perturb(u, rng) for u in truth]
            try:
                result = quantify_fixed_prior(
                    chain, event, mechanism, released, pi, horizon=HORIZON
                )
                losses.append(result.epsilon)
            except ReproError:
                losses.append(float("inf"))
            posteriors = location_posteriors(chain, pi, mechanism, released)
            errors.append(expected_inference_error_km(posteriors, truth, grid))
            accuracy.append(top1_accuracy(posteriors, truth))
        worst = max(losses)
        loss_label = f"{worst:.2f}" if np.isfinite(worst) else "inf"
        print(
            f"{name:<22} {loss_label:>16} {np.mean(errors):>11.2f} "
            f"{np.mean(accuracy):>6.2f}"
        )

    print(
        "\nDeterministic cloaking: strong k-anonymity for single queries, "
        "*infinite* event-privacy loss when the secret aligns with a block "
        "-- the gap PriSTE closes by calibrating a randomized mechanism."
    )


if __name__ == "__main__":
    main()
