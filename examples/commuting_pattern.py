"""Scenario: hide a commuting PATTERN (home -> office every morning).

The paper's second motivating secret: "regularly commuting between
Address 1 and Address 2 every morning and afternoon" -- from which the
adversary infers which addresses are home and office.  The secret is a
PATTERN event: the user is in the home block, then the office block, on
consecutive morning timestamps.  We protect it with PriSTE on top of
delta-location set privacy (Algorithm 3), the mechanism designed for
exactly this kind of strongly correlated mobility.

Run:  python examples/commuting_pattern.py
"""

import numpy as np

from repro import (
    GridMap,
    PatternEvent,
    PriSTEConfig,
    PriSTEDeltaLocationSet,
    Region,
)
from repro.core.two_world import TwoWorldModel
from repro.markov.simulate import sample_trajectory
from repro.markov.synthetic import biased_commute_transitions

HORIZON = 16
EPSILON = 0.5


def main() -> None:
    grid = GridMap(8, 8, cell_size_km=0.5)
    home = grid.cell_index(1, 1)
    office = grid.cell_index(6, 6)
    chain = biased_commute_transitions(
        grid, anchors=(home, office), sigma=1.0, anchor_pull=0.6
    )

    home_block = Region.disk(grid, home, radius_km=0.75)
    office_block = Region.disk(grid, office, radius_km=0.75)

    # The commute PATTERN per Definition II.3: consecutive regions, one
    # per timestamp -- in the home block at t=5, in the office block at
    # t=6 (half-km cells, so one hop covers the commute leg).
    event = PatternEvent([home_block, office_block], start=5)
    print(f"protecting commute PATTERN {event}")

    pi = np.zeros(grid.n_cells)
    pi[home] = 1.0
    pi = 0.95 * pi + 0.05 / grid.n_cells

    model = TwoWorldModel(chain, event, horizon=HORIZON)
    print(f"prior Pr(pattern) = {model.prior_probability(pi):.3f}")

    priste = PriSTEDeltaLocationSet(
        chain,
        event,
        grid,
        alpha=2.0,
        delta=0.1,
        initial=pi,
        config=PriSTEConfig(epsilon=EPSILON, prior_mode="fixed", prior=pi),
        horizon=HORIZON,
    )

    rng = np.random.default_rng(11)
    budgets = []
    errors = []
    for _ in range(5):
        truth = sample_trajectory(chain, HORIZON, initial=pi, rng=rng)
        log = priste.run(truth, rng=rng)
        budgets.append(log.average_budget)
        errors.append(log.euclidean_error_km(grid, truth))
    print(f"average kept budget over 5 days: {np.mean(budgets):.3f} (base 2.0)")
    print(f"average Euclidean error:         {np.mean(errors):.3f} km")
    print("the released traces satisfy "
          f"{EPSILON}-spatiotemporal event privacy for the commute pattern")


if __name__ == "__main__":
    main()
