"""Scenario: train on (Geolife-like) GPS data and audit an LPPM.

End-to-end data pipeline: simulate Geolife-style commuter traces around
Beijing (or load the real dataset by passing its root directory),
discretize onto a km grid, train the Markov model exactly as the paper
does, then *audit* how much spatiotemporal event privacy a fixed planar
Laplace mechanism provides for a PRESENCE secret -- the Section III
quantification question, before any calibration.

Run:  python examples/geolife_study.py [GEOLIFE_ROOT]
"""

import sys

import numpy as np

from repro import PlanarLaplaceMechanism, quantify_fixed_prior
from repro.experiments.scenarios import geolife_scenario


def main() -> None:
    root = sys.argv[1] if len(sys.argv) > 1 else None
    scenario = geolife_scenario(
        root=root, n_users=6, n_days=3, cell_size_km=1.0, horizon=30, rng=0
    )
    grid, chain = scenario.grid, scenario.chain
    print(f"data source: {scenario.source}")
    print(f"grid: {grid.n_rows} x {grid.n_cols} cells of {grid.cell_size_km} km")
    print(f"trained chain: pattern strength {chain.pattern_strength():.2f}")

    # The secret: presence in the busiest block during timestamps 5..10.
    visit_counts = np.zeros(grid.n_cells)
    for trajectory in scenario.trajectories:
        for cell in trajectory:
            visit_counts[cell] += 1
    busiest = int(np.argmax(visit_counts))
    event = scenario.presence_event(
        max(0, busiest - 1), min(grid.n_cells - 1, busiest + 1), 5, 10
    )
    print(f"auditing secret: {event}")

    rng = np.random.default_rng(1)
    print(f"{'alpha':>6} | {'realized eps (median/max over 20 walks)':>40}")
    for alpha in (0.5, 1.0, 2.0, 4.0):
        lppm = PlanarLaplaceMechanism(grid, alpha)
        losses = []
        for _ in range(20):
            truth = scenario.sample_trajectory(rng)
            released = [lppm.perturb(u, rng) for u in truth]
            result = quantify_fixed_prior(
                chain, event, lppm, released, scenario.initial,
                horizon=scenario.horizon,
            )
            losses.append(result.epsilon)
        losses = np.asarray(losses)
        print(f"{alpha:>6} | median {np.median(losses):8.3f}   max {losses.max():8.3f}")
    print(
        "larger alpha (weaker location privacy) leaks more spatiotemporal "
        "event privacy -- the gap PriSTE's calibration closes"
    )


if __name__ == "__main__":
    main()
