"""Streaming release sessions: Algorithm 1 as an online service.

Three escalating shapes of the same machinery:

1. a single :class:`ReleaseSession` stepped one location fix at a time
   (what a mobile client's requests look like),
2. checkpoint/restore -- the session is serialized to JSON between two
   "requests", as a service would park it in a store,
3. a :class:`SessionManager` fanning out over many users with a shared
   verdict cache.

Run:  python examples/streaming_sessions.py
"""

import json

import numpy as np

from repro import (
    GridMap,
    PlanarLaplaceMechanism,
    PresenceEvent,
    Region,
    ReleaseSession,
    SessionBuilder,
    SessionManager,
    SessionState,
    gaussian_kernel_transitions,
    sample_trajectory,
)


def main() -> None:
    grid = GridMap(10, 10, cell_size_km=1.0)
    chain = gaussian_kernel_transitions(grid, sigma=1.0)
    pi = np.full(grid.n_cells, 1.0 / grid.n_cells)
    event = PresenceEvent(Region.from_range(grid.n_cells, 0, 9), start=4, end=8)

    builder = (
        SessionBuilder()
        .with_grid(grid)
        .with_chain(chain)
        .protecting(event)
        .with_mechanism(PlanarLaplaceMechanism(grid, alpha=0.5))
        .with_epsilon(0.5)
        .with_fixed_prior(pi)
        .with_horizon(12)
    )

    # -- 1. one user, one fix at a time --------------------------------
    truth = sample_trajectory(chain, 12, initial=pi, rng=0)
    session = builder.build(rng=0)
    print("single session:")
    for cell in truth[:4]:
        record = session.step(cell)
        print(
            f"  t={record.t}: true {record.true_cell:3d} -> released "
            f"{record.released_cell:3d}  (budget {record.budget:.3f}, "
            f"{record.n_attempts} attempt(s))"
        )
    print(f"  next step would start from budget {session.peek_budget():.3f}")

    # -- 2. suspend to JSON, resume, keep going ------------------------
    wire = json.dumps(session.to_state().to_json())
    print(f"suspended session -> {len(wire)} bytes of JSON")
    resumed = ReleaseSession.from_state(
        builder.build_config(), SessionState.from_json(json.loads(wire))
    )
    for cell in truth[4:]:
        resumed.step(cell)
    log = resumed.finish()
    print(
        f"resumed and finished: {len(log)} releases, "
        f"average budget {log.average_budget:.3f}, "
        f"{log.n_conservative} conservative\n"
    )

    # -- 3. many users under one manager -------------------------------
    manager = SessionManager(builder)
    rng = np.random.default_rng(1)
    users = {
        f"user-{i}": sample_trajectory(chain, 12, initial=pi, rng=rng)
        for i in range(50)
    }
    for i, name in enumerate(users):
        manager.open(name, rng=i)
    for t in range(12):
        manager.step_all({name: traj[t] for name, traj in users.items()})
    logs = manager.finish_all()
    budgets = [log.average_budget for log in logs.values()]
    stats = manager.cache_stats()
    print(f"manager: drove {len(logs)} users x 12 timestamps")
    print(f"  mean average-budget {np.mean(budgets):.3f}")
    print(
        f"  verdict cache: {stats.hits} hits / {stats.misses} misses "
        f"(hit rate {stats.hit_rate:.1%})"
    )


if __name__ == "__main__":
    main()
