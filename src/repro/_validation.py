"""Shared validation helpers.

These functions normalize user input into canonical numpy forms and raise
:class:`repro.errors.ValidationError` with actionable messages.  They are
used at the public boundaries of every subsystem so the numerical core can
assume well-formed inputs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .errors import ValidationError

#: Default absolute tolerance for probability arithmetic.  Chosen to be
#: loose enough for long products of row-stochastic matrices in float64.
PROB_ATOL = 1e-9


def as_float_array(values, name: str = "array") -> np.ndarray:
    """Return ``values`` as a C-contiguous float64 numpy array."""
    try:
        arr = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} is not numeric: {exc}") from exc
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains NaN or infinite entries")
    return np.ascontiguousarray(arr)


def check_probability_vector(
    vector, name: str = "probability vector", atol: float = PROB_ATOL
) -> np.ndarray:
    """Validate a 1-D distribution: non-negative entries summing to one."""
    vec = as_float_array(vector, name)
    if vec.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {vec.shape}")
    if vec.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.any(vec < -atol):
        raise ValidationError(f"{name} has negative entries (min={vec.min():.3g})")
    total = float(vec.sum())
    if abs(total - 1.0) > max(atol, atol * vec.size):
        raise ValidationError(f"{name} sums to {total:.12g}, expected 1")
    vec = np.clip(vec, 0.0, None)
    return vec / vec.sum()


def check_stochastic_matrix(
    matrix, name: str = "transition matrix", atol: float = PROB_ATOL
) -> np.ndarray:
    """Validate a square row-stochastic matrix and renormalize rows."""
    mat = as_float_array(matrix, name)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValidationError(f"{name} must be square 2-D, got shape {mat.shape}")
    if np.any(mat < -atol):
        raise ValidationError(f"{name} has negative entries (min={mat.min():.3g})")
    row_sums = mat.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > max(atol, atol * mat.shape[1])):
        worst = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ValidationError(
            f"{name} row {worst} sums to {row_sums[worst]:.12g}, expected 1"
        )
    mat = np.clip(mat, 0.0, None)
    return mat / mat.sum(axis=1, keepdims=True)


def check_emission_matrix(
    matrix, n_states: int, name: str = "emission matrix", atol: float = PROB_ATOL
) -> np.ndarray:
    """Validate an emission matrix with ``n_states`` rows.

    Rows are true locations, columns are outputs; each row is a
    distribution over outputs.  The matrix need not be square: mechanisms
    may restrict (δ-location set) or enlarge the output alphabet.
    """
    mat = as_float_array(matrix, name)
    if mat.ndim != 2:
        raise ValidationError(f"{name} must be 2-D, got shape {mat.shape}")
    if mat.shape[0] != n_states:
        raise ValidationError(
            f"{name} must have {n_states} rows (one per true location), "
            f"got {mat.shape[0]}"
        )
    if np.any(mat < -atol):
        raise ValidationError(f"{name} has negative entries (min={mat.min():.3g})")
    row_sums = mat.sum(axis=1)
    if np.any(np.abs(row_sums - 1.0) > max(atol, atol * mat.shape[1])):
        worst = int(np.argmax(np.abs(row_sums - 1.0)))
        raise ValidationError(
            f"{name} row {worst} sums to {row_sums[worst]:.12g}, expected 1"
        )
    mat = np.clip(mat, 0.0, None)
    return mat / mat.sum(axis=1, keepdims=True)


def check_index(index: int, size: int, name: str = "index") -> int:
    """Validate an integer index in ``[0, size)``."""
    idx = int(index)
    if idx != index:
        raise ValidationError(f"{name} must be an integer, got {index!r}")
    if not 0 <= idx < size:
        raise ValidationError(f"{name}={idx} out of range [0, {size})")
    return idx


def check_timestamp(t: int, horizon: int | None = None, name: str = "timestamp") -> int:
    """Validate a 1-based paper-style timestamp, optionally within a horizon."""
    ts = int(t)
    if ts != t or ts < 1:
        raise ValidationError(f"{name} must be an integer >= 1, got {t!r}")
    if horizon is not None and ts > horizon:
        raise ValidationError(f"{name}={ts} exceeds horizon T={horizon}")
    return ts


def check_indicator_vector(
    vector, size: int, name: str = "region indicator"
) -> np.ndarray:
    """Validate a 0/1 indicator vector of length ``size``."""
    vec = as_float_array(vector, name)
    if vec.shape != (size,):
        raise ValidationError(f"{name} must have shape ({size},), got {vec.shape}")
    if not np.all((vec == 0.0) | (vec == 1.0)):
        raise ValidationError(f"{name} must contain only 0s and 1s")
    return vec


def check_positive(value: float, name: str = "value") -> float:
    """Validate a strictly positive finite scalar."""
    val = float(value)
    if not np.isfinite(val) or val <= 0:
        raise ValidationError(f"{name} must be a positive finite number, got {value!r}")
    return val


def check_non_negative(value: float, name: str = "value") -> float:
    """Validate a non-negative finite scalar."""
    val = float(value)
    if not np.isfinite(val) or val < 0:
        raise ValidationError(
            f"{name} must be a non-negative finite number, got {value!r}"
        )
    return val


def check_unit_interval(value: float, name: str = "value") -> float:
    """Validate a scalar in ``[0, 1]``."""
    val = float(value)
    if not np.isfinite(val) or not 0.0 <= val <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
    return val


def check_cell_sequence(cells: Sequence[int], size: int, name: str = "cells"):
    """Validate a sequence of cell indices; returns a tuple of ints."""
    out = []
    for position, cell in enumerate(cells):
        out.append(check_index(cell, size, f"{name}[{position}]"))
    return tuple(out)


def resolve_rng(rng=None) -> np.random.Generator:
    """Normalize ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh default generator), an integer seed, or an
    existing generator.  The library never touches numpy's global RNG.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise ValidationError(f"rng must be None, an int seed or a Generator, got {rng!r}")
