"""The PriSTE framework: Algorithms 1, 2 and 3 (batch front end).

Algorithm 1 (the framework): at every timestamp, generate a perturbed
location with the LPPM, check epsilon-spatiotemporal event privacy
(Theorem IV.1 via the QP solver), and calibrate the LPPM -- here by
exponentially decaying its budget (Algorithm 2's halving) -- until the
check passes; only then release.

Algorithm 2 instantiates the framework with the planar Laplace mechanism
(geo-indistinguishability).  The calibration is *per timestamp*: the
budget resets to the configured alpha at every t (Algorithm 2 line 2) and
is halved within the timestamp until the conditions hold.  The halving
loop terminates because alpha -> 0 is the uniform mechanism, which always
satisfies the conditions (its emission column is constant, so
``b = const * a`` and both quadratic forms reduce to
``(e^eps - 1)(pi.a)(pi.a - 1) <= 0``).

Algorithm 3 instantiates it with delta-location set privacy: the LPPM is
rebuilt each timestamp from the Markov-propagated posterior (Eq. 21),
restricted to the delta-location set.

Conservative release (Section IV-C): when the solver cannot *prove* the
conditions within its work/time threshold (UNKNOWN), the candidate is not
released and the budget is halved -- potentially over-perturbing, never
unsound.  Such timestamps are flagged in the release log, feeding the
Table III experiment.

The per-timestamp loop itself lives in :mod:`repro.engine`: this module
is now the batch-shaped front end, driving one
:class:`~repro.engine.ReleaseSession` over a whole trajectory.  The
streaming API is strictly more general (incremental ``step``, checkpoint
and resume, pluggable calibration, multi-session fan-out); ``run`` here
reproduces the original batch behaviour bit-for-bit, including the old
release logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .._validation import check_positive, check_probability_vector, resolve_rng
from ..engine.cache import VerdictCache
from ..engine.calibration import BudgetHalving
from ..engine.config import EngineConfig
from ..engine.providers import (
    DeltaLocationSetProvider,
    MechanismProvider,
    StaticMechanismProvider,
)
from ..engine.records import ReleaseLog, ReleaseRecord
from ..engine.session import EngineCore, ReleaseSession
from ..errors import CalibrationError, QuantificationError
from ..events.events import SpatiotemporalEvent
from ..geo.grid import GridMap
from ..lppm.base import LPPM
from ..lppm.delta_location_set import DeltaLocationSetMechanism
from .qp import SolverOptions

__all__ = [
    "PriSTE",
    "PriSTEConfig",
    "PriSTEDeltaLocationSet",
    "ReleaseLog",
    "ReleaseRecord",
    "MechanismProvider",
    "StaticMechanismProvider",
    "DeltaLocationSetProvider",
]


@dataclass(frozen=True)
class PriSTEConfig:
    """Configuration shared by Algorithms 2 and 3.

    Parameters
    ----------
    epsilon:
        The epsilon of epsilon-spatiotemporal event privacy to enforce.
    decay:
        Budget multiplier per calibration round (paper default 1/2; the
        paper notes it is "a tunable parameter that provides a trade-off
        between efficiency and utility").
    max_calibrations:
        Rounds before falling back to the uniform mechanism (alpha = 0),
        the guaranteed-safe limit of the decay.
    solver:
        QP solver options; ``time_limit_s``/``work_limit`` implement the
        conservative-release threshold of Table III.
    prior_mode:
        ``"worst_case"`` (default) enforces Theorem IV.1 for *arbitrary*
        initial distributions via the QP solver.  ``"fixed"`` enforces the
        Definition II.4 ratio only at the concrete ``prior`` below -- the
        Section III quantification applied online.  The worst-case mode is
        the sound guarantee but is dominated by adversarial two-point
        priors pitting far-apart cells against each other, which forces
        roughly ``alpha <= epsilon / map diameter`` at *every* timestamp;
        the paper's per-timestamp utility curves (budget dips concentrated
        inside the event window, Figs. 7-10) correspond to the fixed-prior
        check, which the experiment harness therefore uses.
    prior:
        The initial distribution for ``prior_mode="fixed"``.
    """

    epsilon: float
    decay: float = 0.5
    max_calibrations: int = 60
    solver: SolverOptions = field(default_factory=SolverOptions)
    prior_mode: str = "worst_case"
    prior: np.ndarray | None = None
    record_emissions: bool = False

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        if not 0.0 < self.decay < 1.0:
            raise CalibrationError(f"decay must be in (0, 1), got {self.decay!r}")
        if self.max_calibrations < 1:
            raise CalibrationError(
                f"max_calibrations must be >= 1, got {self.max_calibrations!r}"
            )
        if self.prior_mode not in ("worst_case", "fixed"):
            raise CalibrationError(
                f"prior_mode must be 'worst_case' or 'fixed', got {self.prior_mode!r}"
            )
        if self.prior_mode == "fixed":
            if self.prior is None:
                raise CalibrationError("prior_mode='fixed' requires a prior")
            object.__setattr__(
                self, "prior", check_probability_vector(self.prior, "prior")
            )


class PriSTE:
    """Algorithms 1 / 2: PriSTE with an arbitrary budget-scalable LPPM.

    Parameters
    ----------
    chain:
        The user's mobility model (also the adversary's knowledge).
    events:
        One event or a list; with several events the conditions of *all*
        events must hold simultaneously at every timestamp (Fig. 9).
    lppm:
        The base mechanism (e.g. :class:`~repro.lppm.PlanarLaplaceMechanism`);
        must support :meth:`~repro.lppm.base.LPPM.with_budget`.
    config:
        Privacy and calibration parameters.
    horizon:
        Release horizon ``T``.
    """

    def __init__(
        self,
        chain,
        events: SpatiotemporalEvent | Sequence[SpatiotemporalEvent],
        lppm: LPPM,
        config: PriSTEConfig,
        horizon: int,
    ):
        if isinstance(events, SpatiotemporalEvent):
            events = [events]
        if not events:
            raise QuantificationError("PriSTE needs at least one event")
        self._chain = chain
        self._events = list(events)
        self._config = config
        self._horizon = int(horizon)
        self._provider: MechanismProvider = StaticMechanismProvider(lppm)
        # One shared core: two-world models are built once here and
        # reused by every run()'s session.  The factory honours the
        # EngineConfig contract (fresh instance per call when stateful,
        # via _new_session_provider); run() separately threads its one
        # long-lived provider through every call, preserving the
        # historical semantics of Algorithm 3's posterior carrying over
        # between consecutive run() calls on one PriSTE object.
        self._core = EngineCore(
            EngineConfig(
                chain=chain,
                events=tuple(self._events),
                horizon=self._horizon,
                epsilon=config.epsilon,
                provider_factory=lambda: self._new_session_provider(),
                calibration=BudgetHalving(config.decay),
                max_calibrations=config.max_calibrations,
                solver=config.solver,
                prior_mode=config.prior_mode,
                prior=config.prior,
                record_emissions=config.record_emissions,
            )
        )
        self._n_states = self._core.n_states
        if lppm.n_states != self._n_states:
            raise QuantificationError(
                f"LPPM has {lppm.n_states} states, chain has {self._n_states}"
            )

    # hook point for Algorithm 3's subclass
    def _set_provider(self, provider: MechanismProvider) -> None:
        self._provider = provider

    @property
    def config(self) -> PriSTEConfig:
        """The run configuration."""
        return self._config

    @property
    def events(self) -> list[SpatiotemporalEvent]:
        """The protected events."""
        return list(self._events)

    def _new_session_provider(self) -> MechanismProvider:
        """Provider for an independent session() (fresh when stateful)."""
        return self._provider

    def session(self, rng=None, cache: VerdictCache | None = None) -> ReleaseSession:
        """A fresh streaming session over this instance's configuration.

        The session shares this object's two-world models but gets its
        own mechanism-provider state, so concurrent sessions are
        isolated.  ``run`` is equivalent to stepping one of these
        through a whole trajectory -- except that ``run`` deliberately
        keeps the historical behaviour of sharing Algorithm 3's
        posterior across consecutive calls on one instance.
        """
        return ReleaseSession(self._core, rng=rng, cache=cache)

    # ------------------------------------------------------------------
    # the framework loop (Algorithm 1 / 2), batch form
    # ------------------------------------------------------------------
    def run(
        self, trajectory: Sequence[int], rng=None, cache: VerdictCache | None = None
    ) -> ReleaseLog:
        """Release a perturbed trajectory satisfying the privacy checks.

        Parameters
        ----------
        trajectory:
            The user's true cells ``u_1..u_T`` (length <= horizon).
        rng:
            Seed or generator for the mechanism sampling.
        cache:
            Optional shared :class:`~repro.engine.VerdictCache`.  Off by
            default: with work/time limits configured, cached UNKNOWN
            verdicts are conservative rather than bit-for-bit identical
            to a fresh solve (see the cache docs).
        """
        cells = [int(c) for c in trajectory]
        if not 1 <= len(cells) <= self._horizon:
            raise QuantificationError(
                f"trajectory length {len(cells)} outside [1, {self._horizon}]"
            )
        for cell in cells:
            if not 0 <= cell < self._n_states:
                raise QuantificationError(
                    f"cell {cell} out of range [0, {self._n_states})"
                )
        generator = resolve_rng(rng)
        session = ReleaseSession(
            self._core, rng=generator, cache=cache, _provider=self._provider
        )
        for cell in cells:
            session.step(cell)
        return session.finish()


class PriSTEDeltaLocationSet(PriSTE):
    """Algorithm 3: PriSTE with delta-location set privacy.

    The base mechanism at every timestamp is an alpha-PLM restricted to
    the delta-location set of the Markov-propagated posterior; Eq. (21)
    updates the posterior after each release.
    """

    def __init__(
        self,
        chain,
        events: SpatiotemporalEvent | Sequence[SpatiotemporalEvent],
        grid: GridMap,
        alpha: float,
        delta: float,
        initial,
        config: PriSTEConfig,
        horizon: int,
    ):
        placeholder = DeltaLocationSetMechanism(
            grid, check_positive(alpha, "alpha"), initial, delta
        )
        super().__init__(chain, events, placeholder, config, horizon)
        self._grid = grid
        self._alpha = float(alpha)
        self._delta = float(delta)
        self._initial = initial
        self._set_provider(
            DeltaLocationSetProvider(grid, chain, alpha, delta, initial)
        )

    def _new_session_provider(self) -> MechanismProvider:
        # The provider is stateful (tracks the adversary posterior):
        # every independent session needs its own, started from the
        # initial distribution -- sharing run()'s instance would let
        # concurrent sessions corrupt each other's posterior.
        return DeltaLocationSetProvider(
            self._grid, self._chain, self._alpha, self._delta, self._initial
        )
