"""The PriSTE framework: Algorithms 1, 2 and 3.

Algorithm 1 (the framework): at every timestamp, generate a perturbed
location with the LPPM, check epsilon-spatiotemporal event privacy
(Theorem IV.1 via the QP solver), and calibrate the LPPM -- here by
exponentially decaying its budget (Algorithm 2's halving) -- until the
check passes; only then release.

Algorithm 2 instantiates the framework with the planar Laplace mechanism
(geo-indistinguishability).  The calibration is *per timestamp*: the
budget resets to the configured alpha at every t (Algorithm 2 line 2) and
is halved within the timestamp until the conditions hold.  The halving
loop terminates because alpha -> 0 is the uniform mechanism, which always
satisfies the conditions (its emission column is constant, so
``b = const * a`` and both quadratic forms reduce to
``(e^eps - 1)(pi.a)(pi.a - 1) <= 0``).

Algorithm 3 instantiates it with delta-location set privacy: the LPPM is
rebuilt each timestamp from the Markov-propagated posterior (Eq. 21),
restricted to the delta-location set.

Conservative release (Section IV-C): when the solver cannot *prove* the
conditions within its work/time threshold (UNKNOWN), the candidate is not
released and the budget is halved -- potentially over-perturbing, never
unsound.  Such timestamps are flagged in the release log, feeding the
Table III experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from .._validation import check_positive, check_probability_vector, resolve_rng
from ..errors import CalibrationError, QuantificationError
from ..events.events import SpatiotemporalEvent
from ..geo.grid import GridMap
from ..lppm.base import LPPM
from ..lppm.delta_location_set import DeltaLocationSetMechanism, posterior_update
from ..lppm.uniform import UniformMechanism
from .joint import EventQuantifier
from .qp import SolverOptions, SolverStatus, check_conditions
from .theorem import privacy_conditions, sufficient_safe
from .two_world import TwoWorldModel


@dataclass(frozen=True)
class PriSTEConfig:
    """Configuration shared by Algorithms 2 and 3.

    Parameters
    ----------
    epsilon:
        The epsilon of epsilon-spatiotemporal event privacy to enforce.
    decay:
        Budget multiplier per calibration round (paper default 1/2; the
        paper notes it is "a tunable parameter that provides a trade-off
        between efficiency and utility").
    max_calibrations:
        Rounds before falling back to the uniform mechanism (alpha = 0),
        the guaranteed-safe limit of the decay.
    solver:
        QP solver options; ``time_limit_s``/``work_limit`` implement the
        conservative-release threshold of Table III.
    prior_mode:
        ``"worst_case"`` (default) enforces Theorem IV.1 for *arbitrary*
        initial distributions via the QP solver.  ``"fixed"`` enforces the
        Definition II.4 ratio only at the concrete ``prior`` below -- the
        Section III quantification applied online.  The worst-case mode is
        the sound guarantee but is dominated by adversarial two-point
        priors pitting far-apart cells against each other, which forces
        roughly ``alpha <= epsilon / map diameter`` at *every* timestamp;
        the paper's per-timestamp utility curves (budget dips concentrated
        inside the event window, Figs. 7-10) correspond to the fixed-prior
        check, which the experiment harness therefore uses.
    prior:
        The initial distribution for ``prior_mode="fixed"``.
    """

    epsilon: float
    decay: float = 0.5
    max_calibrations: int = 60
    solver: SolverOptions = field(default_factory=SolverOptions)
    prior_mode: str = "worst_case"
    prior: np.ndarray | None = None
    record_emissions: bool = False

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        if not 0.0 < self.decay < 1.0:
            raise CalibrationError(f"decay must be in (0, 1), got {self.decay!r}")
        if self.max_calibrations < 1:
            raise CalibrationError(
                f"max_calibrations must be >= 1, got {self.max_calibrations!r}"
            )
        if self.prior_mode not in ("worst_case", "fixed"):
            raise CalibrationError(
                f"prior_mode must be 'worst_case' or 'fixed', got {self.prior_mode!r}"
            )
        if self.prior_mode == "fixed":
            if self.prior is None:
                raise CalibrationError("prior_mode='fixed' requires a prior")
            object.__setattr__(
                self, "prior", check_probability_vector(self.prior, "prior")
            )


@dataclass(frozen=True)
class ReleaseRecord:
    """One released location and how it was calibrated."""

    t: int
    true_cell: int
    released_cell: int
    budget: float
    n_attempts: int
    conservative: bool
    forced_uniform: bool
    elapsed_s: float


@dataclass
class ReleaseLog:
    """The full output of one PriSTE run.

    ``emission_matrices`` is populated only when the run's config sets
    ``record_emissions=True``: one ``(m, n_outputs)`` matrix per
    timestamp, the *actually used* mechanism (essential for exact
    post-hoc verification of Algorithm 3, whose mechanism depends on the
    evolving posterior and cannot be reconstructed from the budget
    alone).
    """

    records: list[ReleaseRecord] = field(default_factory=list)
    emission_matrices: list[np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.records)

    @property
    def released_cells(self) -> list[int]:
        """The released trajectory ``o_1..o_T``."""
        return [record.released_cell for record in self.records]

    @property
    def budgets(self) -> np.ndarray:
        """Final budget used at each timestamp."""
        return np.array([record.budget for record in self.records])

    @property
    def average_budget(self) -> float:
        """The paper's primary utility metric (higher = better)."""
        return float(self.budgets.mean())

    @property
    def n_conservative(self) -> int:
        """Timestamps where an UNKNOWN verdict forced extra perturbation."""
        return sum(1 for record in self.records if record.conservative)

    @property
    def total_elapsed_s(self) -> float:
        """Total wall-clock spent calibrating and releasing."""
        return sum(record.elapsed_s for record in self.records)

    def euclidean_error_km(self, grid: GridMap, true_cells: Sequence[int]) -> float:
        """Average km error vs the true trajectory (lower = better)."""
        return grid.trajectory_error_km(list(true_cells), self.released_cells)

    def emission_stack(self) -> np.ndarray:
        """The recorded per-timestamp emission matrices as one array.

        Requires the run to have used ``record_emissions=True`` and every
        mechanism to share an output alphabet; raises otherwise.
        """
        if self.emission_matrices is None:
            raise QuantificationError(
                "emissions were not recorded; set "
                "PriSTEConfig(record_emissions=True)"
            )
        shapes = {matrix.shape for matrix in self.emission_matrices}
        if len(shapes) != 1:
            raise QuantificationError(
                f"mechanisms used different output alphabets: {sorted(shapes)}"
            )
        return np.stack(self.emission_matrices)


class MechanismProvider(Protocol):
    """Strategy giving PriSTE its per-timestamp base mechanism."""

    def base_mechanism(self, t: int) -> LPPM:
        """The mechanism to start calibration from at timestamp ``t``."""
        ...

    def after_release(self, t: int, mechanism: LPPM, released_cell: int) -> None:
        """Hook after a release (posterior bookkeeping etc.)."""
        ...


class StaticMechanismProvider:
    """Algorithm 2's provider: the same base LPPM at every timestamp."""

    def __init__(self, lppm: LPPM):
        self._lppm = lppm

    def base_mechanism(self, t: int) -> LPPM:
        return self._lppm

    def after_release(self, t: int, mechanism: LPPM, released_cell: int) -> None:
        return None


class DeltaLocationSetProvider:
    """Algorithm 3's provider: rebuild the mechanism from the posterior.

    Maintains ``p+_{t-1}``; at each timestamp computes the Markov prior
    ``p-_t = p+_{t-1} M`` (line 2), constructs the delta-location set
    mechanism on it (lines 3-4), and updates the posterior with Eq. (21)
    after the release (line 8).
    """

    def __init__(self, grid: GridMap, chain, alpha: float, delta: float, initial):
        self._grid = grid
        from ..markov.transition import TimeVaryingChain, TransitionMatrix

        if isinstance(chain, TimeVaryingChain):
            self._chain = chain
        elif isinstance(chain, TransitionMatrix):
            self._chain = TimeVaryingChain.homogeneous(chain)
        else:
            self._chain = TimeVaryingChain.homogeneous(
                TransitionMatrix(np.asarray(chain))
            )
        self._alpha = check_positive(alpha, "alpha")
        self._delta = float(delta)
        self._posterior = check_probability_vector(initial, "initial distribution")
        self._current_prior: np.ndarray | None = None

    @property
    def posterior(self) -> np.ndarray:
        """``p+_{t-1}``: the adversary's posterior after the last release."""
        return self._posterior.copy()

    def base_mechanism(self, t: int) -> LPPM:
        if t == 1:
            prior = self._posterior
        else:
            prior = self._posterior @ self._chain.array_at(t - 1)
        self._current_prior = prior
        return DeltaLocationSetMechanism(self._grid, self._alpha, prior, self._delta)

    def after_release(self, t: int, mechanism: LPPM, released_cell: int) -> None:
        if self._current_prior is None:
            raise QuantificationError("after_release called before base_mechanism")
        self._posterior = posterior_update(
            self._current_prior, mechanism.emission_matrix(), released_cell
        )
        self._current_prior = None


class PriSTE:
    """Algorithms 1 / 2: PriSTE with an arbitrary budget-scalable LPPM.

    Parameters
    ----------
    chain:
        The user's mobility model (also the adversary's knowledge).
    events:
        One event or a list; with several events the conditions of *all*
        events must hold simultaneously at every timestamp (Fig. 9).
    lppm:
        The base mechanism (e.g. :class:`~repro.lppm.PlanarLaplaceMechanism`);
        must support :meth:`~repro.lppm.base.LPPM.with_budget`.
    config:
        Privacy and calibration parameters.
    horizon:
        Release horizon ``T``.
    """

    def __init__(
        self,
        chain,
        events: SpatiotemporalEvent | Sequence[SpatiotemporalEvent],
        lppm: LPPM,
        config: PriSTEConfig,
        horizon: int,
    ):
        if isinstance(events, SpatiotemporalEvent):
            events = [events]
        if not events:
            raise QuantificationError("PriSTE needs at least one event")
        self._chain = chain
        self._events = list(events)
        self._config = config
        self._horizon = int(horizon)
        self._provider: MechanismProvider = StaticMechanismProvider(lppm)
        self._models = [
            TwoWorldModel(chain, event, self._horizon) for event in self._events
        ]
        self._n_states = self._models[0].n_states
        if lppm.n_states != self._n_states:
            raise QuantificationError(
                f"LPPM has {lppm.n_states} states, chain has {self._n_states}"
            )

    # hook point for Algorithm 3's subclass
    def _set_provider(self, provider: MechanismProvider) -> None:
        self._provider = provider

    @property
    def config(self) -> PriSTEConfig:
        """The run configuration."""
        return self._config

    @property
    def events(self) -> list[SpatiotemporalEvent]:
        """The protected events."""
        return list(self._events)

    # ------------------------------------------------------------------
    # the framework loop (Algorithm 1 / 2)
    # ------------------------------------------------------------------
    def run(self, trajectory: Sequence[int], rng=None) -> ReleaseLog:
        """Release a perturbed trajectory satisfying the privacy checks.

        Parameters
        ----------
        trajectory:
            The user's true cells ``u_1..u_T`` (length <= horizon).
        rng:
            Seed or generator for the mechanism sampling.
        """
        cells = [int(c) for c in trajectory]
        if not 1 <= len(cells) <= self._horizon:
            raise QuantificationError(
                f"trajectory length {len(cells)} outside [1, {self._horizon}]"
            )
        for cell in cells:
            if not 0 <= cell < self._n_states:
                raise QuantificationError(
                    f"cell {cell} out of range [0, {self._n_states})"
                )
        generator = resolve_rng(rng)
        quantifiers = [EventQuantifier(model) for model in self._models]
        a_vectors = [quantifier.a_vector() for quantifier in quantifiers]
        log = ReleaseLog(
            emission_matrices=[] if self._config.record_emissions else None
        )

        for t, true_cell in enumerate(cells, start=1):
            t_start = time.perf_counter()
            for quantifier in quantifiers:
                quantifier.prepare(t)

            mechanism = self._provider.base_mechanism(t)
            released_cell: int | None = None
            released_column: np.ndarray | None = None
            conservative = False
            forced_uniform = False
            attempts = 0

            while True:
                attempts += 1
                if attempts > self._config.max_calibrations:
                    # Guaranteed-safe fallback: the uniform mechanism
                    # releases no information about the true location, so
                    # the conditions hold analytically -- release without
                    # asking the (possibly work-limited) solver.
                    mechanism = UniformMechanism(self._n_states)
                    forced_uniform = True
                    released_cell = int(mechanism.perturb(true_cell, generator))
                    released_column = mechanism.emission_column(released_cell)
                    break
                candidate = int(mechanism.perturb(true_cell, generator))
                column = mechanism.emission_column(candidate)
                verdict = self._check_all(quantifiers, a_vectors, t, column)
                if verdict is SolverStatus.SAFE:
                    released_cell = candidate
                    released_column = column
                    break
                if verdict is SolverStatus.UNKNOWN:
                    conservative = True
                mechanism = mechanism.with_budget(
                    mechanism.budget * self._config.decay
                )

            for quantifier in quantifiers:
                quantifier.commit(t, released_column)
            if log.emission_matrices is not None:
                log.emission_matrices.append(mechanism.emission_matrix())
            self._provider.after_release(t, mechanism, released_cell)
            log.records.append(
                ReleaseRecord(
                    t=t,
                    true_cell=true_cell,
                    released_cell=released_cell,
                    budget=float(mechanism.budget),
                    n_attempts=attempts,
                    conservative=conservative,
                    forced_uniform=forced_uniform,
                    elapsed_s=time.perf_counter() - t_start,
                )
            )
        return log

    def _check_all(self, quantifiers, a_vectors, t: int, column) -> SolverStatus:
        """Worst verdict across all events for one candidate column."""
        worst = SolverStatus.SAFE
        for quantifier, a in zip(quantifiers, a_vectors):
            b, c = quantifier.candidate_bc(t, column)
            if self._config.prior_mode == "fixed":
                status = self._fixed_prior_verdict(a, b, c)
            elif sufficient_safe(
                a, b, c, self._config.epsilon, self._config.solver.tolerance
            ):
                # O(m) certificate: provably safe for every pi without
                # touching the quadratic program (conservative-release
                # fast path).
                status = SolverStatus.SAFE
            else:
                conditions = privacy_conditions(a, b, c, self._config.epsilon)
                status, _ = check_conditions(conditions, self._config.solver)
            if status is SolverStatus.VIOLATED:
                return SolverStatus.VIOLATED
            if status is SolverStatus.UNKNOWN:
                worst = SolverStatus.UNKNOWN
        return worst

    def _fixed_prior_verdict(self, a, b, c) -> SolverStatus:
        """Definition II.4 ratio check at the configured concrete prior."""
        pi = self._config.prior
        prior_true = float(pi @ a)
        joint_true = float(pi @ b)
        joint_false = float(pi @ c) - joint_true
        if not 0.0 < prior_true < 1.0:
            raise QuantificationError(
                f"Pr(EVENT) = {prior_true:.6g} under the configured prior; "
                "the Definition II.4 ratio is undefined"
            )
        if joint_true <= 0.0 and joint_false <= 0.0:
            return SolverStatus.SAFE  # observation impossible either way
        if joint_true <= 0.0 or joint_false <= 0.0:
            return SolverStatus.VIOLATED  # one side certain, infinite ratio
        ratio = (joint_true / prior_true) / (joint_false / (1.0 - prior_true))
        bound = float(np.exp(self._config.epsilon))
        tol = 1.0 + self._config.solver.tolerance
        if ratio <= bound * tol and 1.0 / ratio <= bound * tol:
            return SolverStatus.SAFE
        return SolverStatus.VIOLATED


class PriSTEDeltaLocationSet(PriSTE):
    """Algorithm 3: PriSTE with delta-location set privacy.

    The base mechanism at every timestamp is an alpha-PLM restricted to
    the delta-location set of the Markov-propagated posterior; Eq. (21)
    updates the posterior after each release.
    """

    def __init__(
        self,
        chain,
        events: SpatiotemporalEvent | Sequence[SpatiotemporalEvent],
        grid: GridMap,
        alpha: float,
        delta: float,
        initial,
        config: PriSTEConfig,
        horizon: int,
    ):
        placeholder = DeltaLocationSetMechanism(
            grid, check_positive(alpha, "alpha"), initial, delta
        )
        super().__init__(chain, events, placeholder, config, horizon)
        self._set_provider(
            DeltaLocationSetProvider(grid, chain, alpha, delta, initial)
        )
