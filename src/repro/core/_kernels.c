/* Compiled rank-one-simplex kernel: the native twin of the NumPy
 * stacked kernel in repro/core/qp.py.
 *
 * Plain C99 with a C ABI (loaded through ctypes, no Python.h), so the
 * NumPy fallback never depends on this file existing.  The contract is
 * BIT-IDENTITY with `_solve_stack_numpy`: statuses, best values, best
 * points, evaluation counts and the exhausted flag must match the NumPy
 * path exactly for every input, including the pathological ones.  That
 * pins down several choices:
 *
 * - Floating-point expressions replicate the NumPy kernel's exact
 *   operation sequence (each IEEE-754 double op individually rounded).
 *   The build MUST therefore disable FMA contraction
 *   (-ffp-contract=off): a fused a*b+c rounds once where NumPy rounds
 *   twice, and a single ulp would break the contract.
 * - The vertex scan copies np.max/np.argmax semantics: NaN is maximal
 *   and the FIRST NaN wins; otherwise the first occurrence of the
 *   maximum wins (strict > updates).
 * - The edge sweep walks the upper triangle in the same row-blocked
 *   schedule the NumPy kernel uses (block size chosen by the caller),
 *   because evaluation counts accrue per *block* before the limit and
 *   early-exit checks run -- per-pair accounting would disagree with
 *   the NumPy path whenever a limit or a violation lands mid-block.
 * - Only the interior stationary point of each edge is evaluated
 *   (a2 < 0, a1 > 0, a1 + 2 a2 < 0), exactly mirroring the mask the
 *   NumPy kernel builds; the endpoints are vertices already covered.
 *
 * Unlike the NumPy kernel, the sweep is a single fused pass: no scratch
 * blocks, no masked writes, no per-block reductions -- which is where
 * the speedup comes from, especially at small m where NumPy's per-block
 * dispatch dominates.
 */

#include <math.h>
#include <stdint.h>
#include <time.h>

#if defined(_MSC_VER)
#define RO_EXPORT __declspec(dllexport)
#else
#define RO_EXPORT __attribute__((visibility("default")))
#endif

/* ABI version stamp: the Python loader refuses a cached shared object
 * whose version does not match, so stale caches fail closed. */
RO_EXPORT int64_t ro_kernel_abi_version(void) { return 1; }

static double ro_now(void) {
#if defined(CLOCK_MONOTONIC)
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
#else
    return (double)clock() / (double)CLOCKS_PER_SEC;
#endif
}

/* Unordered pairs (i, j), i < j, contributed by rows r0 <= i < r1 of an
 * m-wide upper triangle; must match qp._triangle_block_evals. */
static int64_t ro_triangle_block_evals(int64_t r0, int64_t r1, int64_t m) {
    int64_t nb = r1 - r0;
    return nb * (m - 1) - (r0 + r1 - 1) * nb / 2;
}

/* Solve K stacked rank-one simplex maximizations.
 *
 * U, V, W: row-major (K, m) coefficient arrays.
 * ev_scratch: caller-provided length-m scratch for the vertex values.
 * tol / work_limit / time_limit_s: SolverOptions fields; negative
 *   work_limit / time_limit_s mean "no limit".
 * exhaustive: nonzero disables the early exit even without limits.
 * block_rows: the row-block size of the NumPy kernel's schedule
 *   (computed by the caller from _BLOCK_ELEMENTS and work_limit).
 * Outputs, one entry per condition:
 *   best_value, best_vertex, best_edge_i / best_edge_j (-1 when the
 *   best point is a vertex), n_evals, exhausted (1/0).
 * Returns 0 on success, -1 on malformed arguments.
 */
RO_EXPORT int ro_solve_rank_one_stack(
    const double *U, const double *V, const double *W,
    double *ev_scratch,
    int64_t K, int64_t m,
    double tol, int64_t work_limit, double time_limit_s,
    int32_t exhaustive, int64_t block_rows,
    double *best_value, int64_t *best_vertex,
    int64_t *best_edge_i, int64_t *best_edge_j,
    int64_t *n_evals, uint8_t *exhausted)
{
    if (K < 0 || m < 1 || block_rows < 1) {
        return -1;
    }
    const double t0 = ro_now();
    const int limited = (work_limit >= 0) || (time_limit_s >= 0.0);
    /* Matches the NumPy kernel: with limits set, keep enumerating after
     * a violation so work accounting stays faithful; without limits a
     * violation ends the sweep unless the caller wants the global max. */
    const int allow_exit = !limited && !exhaustive;

    for (int64_t k = 0; k < K; k++) {
        const double *u = U + k * m;
        const double *v = V + k * m;
        const double *w = W + k * m;
        double *ev = ev_scratch;

        /* Vertex scan with np.max/np.argmax semantics: the first NaN is
         * maximal; otherwise first-occurrence-of-max (strict >). */
        double best = -INFINITY;
        int64_t vertex = 0;
        int saw_nan = 0;
        for (int64_t j = 0; j < m; j++) {
            const double e = u[j] * v[j] + w[j];
            ev[j] = e;
            if (!saw_nan) {
                if (isnan(e)) {
                    saw_nan = 1;
                    best = e;
                    vertex = j;
                } else if (e > best) {
                    best = e;
                    vertex = j;
                }
            }
        }
        int64_t evals = m;
        int64_t bi = -1, bj = -1;
        uint8_t full = 1;

        if (m > 1 && !(allow_exit && best > tol)) {
            for (int64_t r0 = 0; r0 < m - 1; r0 += block_rows) {
                if (time_limit_s >= 0.0 && ro_now() - t0 > time_limit_s) {
                    full = 0;
                    break;
                }
                if (work_limit >= 0 && evals >= work_limit) {
                    full = 0;
                    break;
                }
                const int64_t r1 = (r0 + block_rows < m - 1) ? r0 + block_rows
                                                             : m - 1;
                for (int64_t i = r0; i < r1; i++) {
                    const double ui = u[i], vi = v[i], wi = w[i];
                    for (int64_t j = i + 1; j < m; j++) {
                        const double du = ui - u[j];
                        const double dv = vi - v[j];
                        const double a2 = du * dv;
                        /* Interior stationary point exists iff concave
                         * (a2 < 0) and 0 < lam* < 1, i.e. a1 > 0 and
                         * a1 + 2 a2 < 0 -- the NumPy kernel's mask. */
                        if (!(a2 < 0.0)) {
                            continue;
                        }
                        const double a1 =
                            (v[j] * du + u[j] * dv) + (wi - w[j]);
                        if (!(a1 > 0.0) || !(a1 + 2.0 * a2 < 0.0)) {
                            continue;
                        }
                        /* f(lam*) = f(e_j) - a1^2 / (4 a2), with the
                         * NumPy kernel's op order: square, scale,
                         * divide, subtract -- each rounded once. */
                        const double val = ev[j] - (a1 * a1) / (a2 * 4.0);
                        if (val > best) {
                            best = val;
                            bi = i;
                            bj = j;
                        }
                    }
                }
                evals += ro_triangle_block_evals(r0, r1, m);
                if (allow_exit && best > tol) {
                    break;
                }
            }
        }

        best_value[k] = best;
        best_vertex[k] = vertex;
        best_edge_i[k] = bi;
        best_edge_j[k] = bj;
        n_evals[k] = evals;
        exhausted[k] = full;
    }
    return 0;
}
