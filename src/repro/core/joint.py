"""Joint probabilities of events and observations (Lemmas III.2 / III.3).

:class:`EventQuantifier` is the pi-free, incremental form used by
Algorithm 2: instead of a number it maintains *matrices* so that, at every
timestamp and for every candidate perturbed location, the Theorem IV.1
vectors ``a``, ``b``, ``c`` come out as functions of the (unknown,
adversary-chosen) initial distribution ``pi``:

* ``a[i] = Pr(EVENT | u_1 = s_i)``
* ``b[i] = Pr(EVENT, o_1..o_t | u_1 = s_i)`` (Lemma III.2 / III.3)
* ``c[i] = Pr(o_1..o_t | u_1 = s_i)``

The implementation mirrors Algorithm 2's bookkeeping (lines 3-15 and
21-25) with two refinements:

* fronts are kept *collapsed* to pi-space, i.e. ``(m, 2m)`` matrices
  ``L A`` rather than the paper's ``(2m, 2m)`` ``A``, halving the cost and
  absorbing the ``start == 1`` initial-split extension for free;
* the transition-propagation step (independent of the candidate output)
  is separated from the cheap per-candidate step, so PriSTE's budget-
  halving loop pays O(m^2) per retry instead of O(m^3);
* fronts are renormalized each commit and the log of the factored-out
  scale is tracked, so 50+ timestamp sequences cannot underflow.  The
  returned ``b``/``c`` share one scale factor, which cancels in every
  ratio and preserves the sign of the Theorem IV.1 conditions.

Per the paper (Section III-C), the emission matrix may differ at every
timestamp: each call takes the current emission column ``p~_{o_t}``.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .._validation import as_float_array, check_probability_vector
from ..errors import QuantificationError
from .two_world import TwoWorldModel, _count_front, _scipy_sparse

#: :meth:`EventQuantifier.candidate_bc_many` switches to CSR products
#: when the model is sparse-routed, at least this many candidate columns
#: are screened at once, and the columns' non-zero fraction is at most
#: ``_SPARSE_BC_MAX_DENSITY`` (cloaking / randomized-response emission
#: columns are indicator-like, so bulk screens are mostly zeros).
_SPARSE_BC_MIN_COLUMNS = 32
_SPARSE_BC_MAX_DENSITY = 0.25

class EventQuantifier:
    """Incremental ``a``/``b``/``c`` computation for one event.

    Protocol, per timestamp ``t = 1..T`` (1-based, in order):

    1. :meth:`prepare` once -- propagates the committed state through
       ``M_{t-1}`` (identity at ``t == 1``);
    2. :meth:`candidate_bc` any number of times with candidate emission
       columns (PriSTE's halving loop);
    3. :meth:`commit` once with the emission column of the mechanism and
       output actually released.
    """

    def __init__(self, model: TwoWorldModel):
        self._model = model
        m = model.n_states
        self._m = m
        # Phase 1 front: L A, shape (m, 2m).  Starts as the initial lift.
        self._front: np.ndarray | None = model.initial_lift_matrix()
        # Phase 2 fronts (t > end): event-true part and total.
        self._front_true: np.ndarray | None = None
        self._front_all: np.ndarray | None = None
        self._committed_t = 0
        self._prepared_t: int | None = None
        self._prop: np.ndarray | None = None
        self._prop_true: np.ndarray | None = None
        self._prop_all: np.ndarray | None = None
        self._log_scale = 0.0
        self._tails = model.tail_vectors()
        self._a = model.prior_vector()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def model(self) -> TwoWorldModel:
        """The underlying two-world model."""
        return self._model

    @property
    def committed_t(self) -> int:
        """Last timestamp whose release has been committed (0 = none)."""
        return self._committed_t

    @property
    def log_scale(self) -> float:
        """Natural log of the positive factor divided out of ``b``/``c``.

        The true joint probabilities are ``exp(log_scale)`` times the
        values implied by :meth:`candidate_bc`'s output.
        """
        return self._log_scale

    def a_vector(self) -> np.ndarray:
        """Collapsed prior vector ``a`` (Eq. 17), unscaled."""
        return self._a.copy()

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def prepare(self, t: int) -> None:
        """Propagate committed state through ``M_{t-1}`` for timestamp t."""
        if t != self._committed_t + 1:
            raise QuantificationError(
                f"prepare({t}) called out of order; committed through "
                f"t={self._committed_t}"
            )
        if t > self._model.horizon:
            raise QuantificationError(
                f"t={t} beyond model horizon {self._model.horizon}"
            )
        if self._committed_t <= self._model.end and self._front is not None:
            # Phase 1: single front, lifted transition (identity at t=1).
            if t == 1:
                self._prop = self._front
            else:
                self._prop = self._model.propagate_front(self._front, t - 1)
        else:
            # Phase 2: both fronts propagate through the (block-diagonal
            # after the event) lifted matrix.
            self._prop_true = self._model.propagate_front(self._front_true, t - 1)
            self._prop_all = self._model.propagate_front(self._front_all, t - 1)
        self._prepared_t = t

    def _lift_column(self, ptilde) -> np.ndarray:
        col = as_float_array(ptilde, "emission column")
        if col.shape != (self._m,):
            raise QuantificationError(
                f"emission column must have shape ({self._m},), got {col.shape}"
            )
        if np.any(col < 0) or np.any(col > 1):
            raise QuantificationError("emission probabilities must lie in [0, 1]")
        return np.concatenate([col, col])

    def candidate_bc(self, t: int, ptilde) -> tuple[np.ndarray, np.ndarray]:
        """Scaled ``(b, c)`` if ``ptilde`` were the column released at t.

        ``b[i] ~ Pr(EVENT, o_1..o_t | u_1 = s_i)`` and
        ``c[i] ~ Pr(o_1..o_t | u_1 = s_i)``, both times the common factor
        ``exp(-log_scale)``.
        """
        if self._prepared_t != t:
            raise QuantificationError(
                f"candidate_bc({t}) requires prepare({t}) first"
            )
        lifted = self._lift_column(ptilde)
        if self._prop is not None:
            # Lemma III.2: append the emission and the tail product.
            # Both reductions hit the same front, so they are fused into
            # one (m, 2m) @ (2m, 2) product -- the front streams through
            # memory once instead of twice.
            tail = self._tails[t - 1] if t <= self._model.end else None
            if tail is None:
                raise QuantificationError(
                    "internal error: phase 1 prepared beyond event end"
                )
            stacked = np.empty((2 * self._m, 2), dtype=np.float64)
            np.multiply(lifted, tail, out=stacked[:, 0])
            stacked[:, 1] = lifted
            bc = self._prop @ stacked
            b = np.ascontiguousarray(bc[:, 0])
            c = np.ascontiguousarray(bc[:, 1])
        else:
            # Lemma III.3: the backward product hits the frozen end-front.
            b = self._prop_true @ lifted
            c = self._prop_all @ lifted
        return b, c

    def candidate_bc_many(self, t: int, columns) -> tuple[np.ndarray, np.ndarray]:
        """Scaled ``(B, C)``, each ``(N, m)``, for N candidate columns.

        Row ``n`` matches :meth:`candidate_bc`'s output for
        ``columns[n]`` up to BLAS summation order (a few ulps: the
        one-matmul lift and the per-column product accumulate the same
        dot products in different block orders).  Hot paths that must
        stay bitwise-reproducible against per-candidate stepping -- the
        engine's batched verdict rounds -- therefore call
        :meth:`candidate_bc` per candidate and batch at the solver
        layer instead; this bulk form is for screening and audit
        workloads where N is large and ulps are irrelevant.
        """
        if self._prepared_t != t:
            raise QuantificationError(
                f"candidate_bc_many({t}) requires prepare({t}) first"
            )
        cols = as_float_array(columns, "emission columns")
        if cols.ndim != 2 or cols.shape[1] != self._m:
            raise QuantificationError(
                f"emission columns must be (N, {self._m}), got {cols.shape}"
            )
        if np.any(cols < 0) or np.any(cols > 1):
            raise QuantificationError("emission probabilities must lie in [0, 1]")
        lifted = np.concatenate([cols, cols], axis=1)
        # Unlike propagate_front, an adaptive per-call switch is sound
        # here: this method's contract is already only ulp-accurate
        # against candidate_bc (see above), so the crossover can use the
        # actual screen shape.  Only sparse-routed models opt in, which
        # keeps dense scenarios at exactly one code path.
        sparse = (
            self._model.sparse_routing
            and _scipy_sparse is not None
            and cols.shape[0] >= _SPARSE_BC_MIN_COLUMNS
            and np.count_nonzero(cols) <= _SPARSE_BC_MAX_DENSITY * cols.size
        )
        if self._prop is not None:
            tail = self._tails[t - 1] if t <= self._model.end else None
            if tail is None:
                raise QuantificationError(
                    "internal error: phase 1 prepared beyond event end"
                )
            if sparse:
                lifted_sp = _scipy_sparse.csr_array(lifted)
                prop_t = np.ascontiguousarray(self._prop.T)
                b = np.asarray(lifted_sp.multiply(tail).tocsr() @ prop_t)
                c = np.asarray(lifted_sp @ prop_t)
                _count_front(sparse_matmuls=2)
            else:
                b = (lifted * tail[None, :]) @ self._prop.T
                c = lifted @ self._prop.T
        elif sparse:
            lifted_sp = _scipy_sparse.csr_array(lifted)
            b = np.asarray(lifted_sp @ np.ascontiguousarray(self._prop_true.T))
            c = np.asarray(lifted_sp @ np.ascontiguousarray(self._prop_all.T))
            _count_front(sparse_matmuls=2)
        else:
            b = lifted @ self._prop_true.T
            c = lifted @ self._prop_all.T
        return b, c

    def abort_prepare(self) -> None:
        """Discard a prepared (uncommitted) timestamp, if any.

        :meth:`prepare` never mutates the committed fronts, so dropping
        the propagated copies rolls the quantifier back to the last
        committed boundary -- used by the engine to keep a session
        checkpointable after a failed step.
        """
        self._prepared_t = None
        self._prop = None
        self._prop_true = None
        self._prop_all = None

    def commit(self, t: int, ptilde) -> None:
        """Fold the released emission column into the state (lines 21-25)."""
        if self._prepared_t != t:
            raise QuantificationError(f"commit({t}) requires prepare({t}) first")
        lifted = self._lift_column(ptilde)
        if self._prop is not None:
            front = self._prop * lifted[None, :]
            if t == self._model.end:
                # Cross into phase 2: freeze the end-front, split it into
                # the event-true part (true-world columns) and the total.
                self._front_all = front
                front_true = front.copy()
                front_true[:, : self._m] = 0.0
                self._front_true = front_true
                self._front = None
            else:
                self._front = front
        else:
            self._front_true = self._prop_true * lifted[None, :]
            self._front_all = self._prop_all * lifted[None, :]
        self._rescale()
        self._committed_t = t
        self._prepared_t = None
        self._prop = None
        self._prop_true = None
        self._prop_all = None

    def _rescale(self) -> None:
        # Normalize at every commit: b/c magnitudes then stay within a
        # factor ~m of 1 regardless of sequence length, which keeps the
        # solver's relative tolerance meaningful and rules out underflow.
        reference = self._front if self._front is not None else self._front_all
        peak = float(reference.max())
        if 0.0 < peak and peak != 1.0:
            if self._front is not None:
                self._front = self._front / peak
            else:
                self._front_all = self._front_all / peak
                self._front_true = self._front_true / peak
            self._log_scale += float(np.log(peak))

    # ------------------------------------------------------------------
    # checkpointing (repro.engine session suspend/resume)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the committed state (not valid mid-timestamp).

        Only the between-timestamps state is captured: call it after
        :meth:`commit` (or before the first :meth:`prepare`), never
        between :meth:`prepare` and :meth:`commit`.
        """
        if self._prepared_t is not None:
            raise QuantificationError(
                "state_dict() is only valid between timestamps; "
                f"t={self._prepared_t} is prepared but not committed"
            )

        def pack(array: np.ndarray | None):
            return None if array is None else array.tolist()

        return {
            "front": pack(self._front),
            "front_true": pack(self._front_true),
            "front_all": pack(self._front_all),
            "committed_t": self._committed_t,
            "log_scale": self._log_scale,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""

        def unpack(value):
            if value is None:
                return None
            array = np.asarray(value, dtype=np.float64)
            if array.shape != (self._m, 2 * self._m):
                raise QuantificationError(
                    f"front must have shape ({self._m}, {2 * self._m}), "
                    f"got {array.shape}"
                )
            return array

        front = unpack(state["front"])
        front_true = unpack(state["front_true"])
        front_all = unpack(state["front_all"])
        if (front is None) == (front_all is None):
            raise QuantificationError(
                "exactly one of front (phase 1) and front_all (phase 2) "
                "must be present"
            )
        if (front_true is None) != (front_all is None):
            raise QuantificationError(
                "front_true and front_all must be present together"
            )
        self._front = front
        self._front_true = front_true
        self._front_all = front_all
        self._committed_t = int(state["committed_t"])
        self._log_scale = float(state["log_scale"])
        self._prepared_t = None
        self._prop = None
        self._prop_true = None
        self._prop_all = None

    def prepared_digest(self) -> bytes:
        """Digest of everything a candidate verdict depends on at ``t``.

        Covers the prepared (post-:meth:`prepare`) fronts, the phase-1
        tail vector and the prior vector ``a`` -- together with a
        candidate emission column these determine the Theorem IV.1
        vectors ``(a, b, c)`` exactly, which is what makes verdict
        caching keyed on this digest sound.
        """
        t = self._prepared_t
        if t is None:
            raise QuantificationError("prepared_digest() requires prepare(t) first")
        h = hashlib.blake2b(digest_size=16)
        h.update(t.to_bytes(8, "little"))
        if self._prop is not None:
            h.update(b"p1")
            h.update(np.ascontiguousarray(self._prop).tobytes())
            h.update(np.ascontiguousarray(self._tails[t - 1]).tobytes())
        else:
            h.update(b"p2")
            h.update(np.ascontiguousarray(self._prop_true).tobytes())
            h.update(np.ascontiguousarray(self._prop_all).tobytes())
        h.update(np.ascontiguousarray(self._a).tobytes())
        return h.digest()

    # ------------------------------------------------------------------
    # fixed-pi conveniences
    # ------------------------------------------------------------------
    def joint_probabilities(self, pi, b: np.ndarray, c: np.ndarray) -> tuple[float, float]:
        """Unscaled-ratio form: ``(Pr(EVENT, o), Pr(o))`` times the scale.

        Multiplying back ``exp(log_scale)`` recovers absolute values; most
        callers only need ratios, which are scale-free.
        """
        dist = check_probability_vector(pi, "initial distribution")
        if dist.size != self._m:
            raise QuantificationError(
                f"initial distribution has {dist.size} entries, map has {self._m}"
            )
        return float(dist @ b), float(dist @ c)


#: Element budget per stacked propagate in :func:`prepare_many`.  Each
#: front is ``m x 2m`` (``2 m^2`` floats): stacking amortizes per-call
#: block dispatch, which dominates for small maps, but costs a copy of
#: every front, which dominates for large ones -- so the stack size
#: adapts as ``budget // (2 m^2)`` fronts (at least 1, i.e. no copy).
_PREPARE_STACK_ELEMENTS = 65_536


def prepare_many(quantifiers, t: int) -> None:
    """Batched :meth:`EventQuantifier.prepare` across one shared model.

    All quantifiers must wrap the *same* :class:`TwoWorldModel` object
    and be committed through ``t - 1`` (the same-phase invariant the
    engine's ``step_many`` guarantees for sessions at one timestamp).
    Their committed fronts are stacked in cache-sized groups
    (``_PREPARE_STACK_ELEMENTS``) and pushed through the lifted
    transition ``M_{t-1}`` as stacked matmuls; every quantifier then
    holds a row-slice view of the stacked result that is bit-identical
    to what its own ``prepare(t)`` would have produced, since the
    matmul computes each output row independently.  On maps large
    enough that copying fronts into a stack costs more than the saved
    dispatch, the group degenerates to single fronts (no copy).
    """
    qs = list(quantifiers)
    if not qs:
        return
    model = qs[0]._model
    for quantifier in qs:
        if quantifier._model is not model:
            raise QuantificationError(
                "prepare_many requires quantifiers over one shared model"
            )
        if t != quantifier._committed_t + 1:
            raise QuantificationError(
                f"prepare_many({t}) called out of order; a quantifier is "
                f"committed through t={quantifier._committed_t}"
            )
    if t > model.horizon:
        raise QuantificationError(f"t={t} beyond model horizon {model.horizon}")
    if len(qs) == 1 or t == 1:
        # t == 1 aliases the committed front with no matmul; replicate
        # exactly rather than stack.
        for quantifier in qs:
            quantifier.prepare(t)
        return
    m = model.n_states
    phase1 = qs[0]._committed_t <= model.end and qs[0]._front is not None
    stack = max(1, _PREPARE_STACK_ELEMENTS // (2 * m * m))
    if stack == 1:
        for quantifier in qs:
            quantifier.prepare(t)
        return
    for g0 in range(0, len(qs), stack):
        group = qs[g0 : g0 + stack]
        if len(group) == 1:
            group[0].prepare(t)
            continue
        if phase1:
            stacked = np.concatenate(
                [quantifier._front for quantifier in group], axis=0
            )
            out = model.propagate_front(stacked, t - 1)
            for index, quantifier in enumerate(group):
                quantifier._prop = out[index * m : (index + 1) * m]
                quantifier._prop_true = None
                quantifier._prop_all = None
                quantifier._prepared_t = t
        else:
            stacked = np.concatenate(
                [quantifier._front_true for quantifier in group]
                + [quantifier._front_all for quantifier in group],
                axis=0,
            )
            out = model.propagate_front(stacked, t - 1)
            half = len(group) * m
            for index, quantifier in enumerate(group):
                quantifier._prop = None
                quantifier._prop_true = out[index * m : (index + 1) * m]
                quantifier._prop_all = out[
                    half + index * m : half + (index + 1) * m
                ]
                quantifier._prepared_t = t


def joint_probability(
    model: TwoWorldModel, pi, emission_columns, upto_t: int | None = None
) -> float:
    """Absolute ``Pr(EVENT, o_1..o_t)`` for a fixed ``pi`` (Lemmas III.2/3).

    ``emission_columns`` is a ``(T', m)`` array of released columns; ``t``
    defaults to its length.  This non-incremental wrapper exists for tests
    and one-off quantification; PriSTE uses :class:`EventQuantifier`.
    """
    cols = as_float_array(emission_columns, "emission columns")
    if cols.ndim != 2 or cols.shape[1] != model.n_states:
        raise QuantificationError(
            f"emission columns must be (T', {model.n_states}), got {cols.shape}"
        )
    t_max = cols.shape[0] if upto_t is None else int(upto_t)
    if not 1 <= t_max <= cols.shape[0]:
        raise QuantificationError(
            f"upto_t={upto_t} outside [1, {cols.shape[0]}]"
        )
    quantifier = EventQuantifier(model)
    # Commit everything before t_max; the final timestamp stays a
    # candidate so the returned (b, c) match the quantifier's log_scale
    # (commits rescale, candidates do not).
    for t in range(1, t_max):
        quantifier.prepare(t)
        quantifier.commit(t, cols[t - 1])
    quantifier.prepare(t_max)
    b, c = quantifier.candidate_bc(t_max, cols[t_max - 1])
    joint_scaled, _ = quantifier.joint_probabilities(pi, b, c)
    return float(joint_scaled * np.exp(quantifier.log_scale))


def observation_probability(
    model: TwoWorldModel, pi, emission_columns, upto_t: int | None = None
) -> float:
    """Absolute ``Pr(o_1..o_t)`` for a fixed ``pi``."""
    cols = as_float_array(emission_columns, "emission columns")
    if cols.ndim != 2 or cols.shape[1] != model.n_states:
        raise QuantificationError(
            f"emission columns must be (T', {model.n_states}), got {cols.shape}"
        )
    t_max = cols.shape[0] if upto_t is None else int(upto_t)
    if not 1 <= t_max <= cols.shape[0]:
        raise QuantificationError(f"upto_t={upto_t} outside [1, {cols.shape[0]}]")
    quantifier = EventQuantifier(model)
    for t in range(1, t_max):
        quantifier.prepare(t)
        quantifier.commit(t, cols[t - 1])
    quantifier.prepare(t_max)
    b, c = quantifier.candidate_bc(t_max, cols[t_max - 1])
    _, total_scaled = quantifier.joint_probabilities(pi, b, c)
    return float(total_scaled * np.exp(quantifier.log_scale))
