"""Core engine: the paper's primary contribution.

* :class:`TwoWorldModel` -- the lifted 2m-state Markov chain of Section
  III (Eqs. 3-8) and the Lemma III.1 prior.
* :class:`EventQuantifier` -- incremental computation of the Theorem IV.1
  vectors ``a``, ``b``, ``c`` (Algorithm 2's ``A``/``B`` bookkeeping).
* :mod:`repro.core.theorem` -- the Eq. (15)/(16) quadratic conditions.
* :mod:`repro.core.qp` -- the quadratic-programming solver replacing IBM
  CPLEX, exact over the probability simplex for the rank-1 forms the
  theorem produces.
* :class:`PriSTE` -- Algorithms 1/2 (with geo-indistinguishability) and
  :class:`PriSTEDeltaLocationSet` -- Algorithm 3.
* :mod:`repro.core.baseline` -- Appendix B's exponential enumeration.
* :mod:`repro.core.automaton_engine` -- generalized engine for arbitrary
  event expressions (extension; PRESENCE/PATTERN reduce to two worlds).
"""

from .automaton_engine import AutomatonModel
from .baseline import (
    enumerate_joint,
    enumerate_prior,
    pattern_joint_naive,
    pattern_prior_naive,
)
from .event_pair import EventPairAnalyzer, PairCheckResult, PairStatus, pair_certificate
from .forward_backward import backward_messages, forward_messages, smoothed_posteriors
from .joint import EventQuantifier
from .priste import (
    PriSTE,
    PriSTEConfig,
    PriSTEDeltaLocationSet,
    ReleaseLog,
    ReleaseRecord,
)
from .qp import SolveResult, SolverOptions, SolverStatus
from .quantify import (
    PrivacyCheck,
    QuantificationResult,
    quantify_fixed_prior,
    verify_event_privacy,
)
from .theorem import RankOneCondition, condition_value, privacy_conditions
from .two_world import TwoWorldModel

__all__ = [
    "TwoWorldModel",
    "EventQuantifier",
    "forward_messages",
    "backward_messages",
    "smoothed_posteriors",
    "RankOneCondition",
    "privacy_conditions",
    "condition_value",
    "SolverOptions",
    "SolverStatus",
    "SolveResult",
    "PriSTE",
    "PriSTEConfig",
    "PriSTEDeltaLocationSet",
    "ReleaseLog",
    "ReleaseRecord",
    "QuantificationResult",
    "PrivacyCheck",
    "quantify_fixed_prior",
    "verify_event_privacy",
    "enumerate_prior",
    "enumerate_joint",
    "pattern_prior_naive",
    "pattern_joint_naive",
    "AutomatonModel",
    "EventPairAnalyzer",
    "PairCheckResult",
    "PairStatus",
    "pair_certificate",
]
