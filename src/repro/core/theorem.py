"""Theorem IV.1: privacy conditions for arbitrary initial probability.

Definition II.4 requires, for every observation prefix, both directions of

``Pr(o_1..o_t | EVENT) <= e^eps Pr(o_1..o_t | not EVENT)``.

Writing ``Pr(EVENT) = pi . a``, ``Pr(EVENT, o_1..o_t) = pi . b`` and
``Pr(o_1..o_t) = pi . c`` (all in pi-space, via
:class:`repro.core.two_world.TwoWorldModel.collapse` /
:class:`repro.core.joint.EventQuantifier`), cross-multiplying with
``sum(pi) = 1`` gives the paper's Eqs. (15) and (16):

* Eq. (15): ``(e^eps - 1)(pi.a)(pi.b) - e^eps (pi.a)(pi.c) + pi.b <= 0``
* Eq. (16): ``(e^eps - 1)(pi.a)(pi.b) + (pi.a)(pi.c) - e^eps pi.b <= 0``

Both are *rank-one* quadratics ``(pi.u)(pi.v) + pi.w``: the quadratic
matrix is the outer product of ``a`` with a combination of ``b`` and
``c``.  :mod:`repro.core.qp` exploits this to solve the maximization
exactly over the probability simplex.

Constraint-set note (DESIGN.md §5): the paper states the maximization
"under the constraints of 0 <= pi <= 1", but Eqs. (15)/(16) are derived
with the normalization ``sum(pi) = 1`` folded in (the ``pi.b`` linear term
carries no ``sum(pi)`` factor).  Over the bare box the normalization-free
inequality is a *different* condition that even the uniform mechanism
violates, so the semantically consistent feasible set -- and our default
-- is the simplex.  The box variant remains available in the solver for
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array, check_positive
from ..errors import QuantificationError


@dataclass(frozen=True)
class RankOneCondition:
    """The inequality ``(pi.u)(pi.v) + pi.w <= 0`` over distributions pi.

    Attributes
    ----------
    u, v, w:
        Length-``m`` coefficient vectors.
    label:
        Human-readable direction tag (for diagnostics).
    """

    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    label: str = ""

    def __post_init__(self) -> None:
        u = as_float_array(self.u, "u")
        v = as_float_array(self.v, "v")
        w = as_float_array(self.w, "w")
        if not (u.shape == v.shape == w.shape) or u.ndim != 1:
            raise QuantificationError(
                f"condition vectors must be equal-length 1-D, got "
                f"{u.shape}, {v.shape}, {w.shape}"
            )
        object.__setattr__(self, "u", u)
        object.__setattr__(self, "v", v)
        object.__setattr__(self, "w", w)

    @classmethod
    def _trusted(cls, u, v, w, label: str) -> "RankOneCondition":
        """Construct from known-good equal-length 1-D float64 vectors.

        Skips ``__post_init__`` validation for hot paths that build
        conditions from arrays they just produced (the calibration loop
        creates two per attempt per event).  Kept next to the dataclass
        so the bypass evolves with the invariant it skips.
        """
        condition = object.__new__(cls)
        object.__setattr__(condition, "u", u)
        object.__setattr__(condition, "v", v)
        object.__setattr__(condition, "w", w)
        object.__setattr__(condition, "label", label)
        return condition

    @property
    def n(self) -> int:
        """Dimension ``m``."""
        return self.u.size

    def value(self, pi) -> float:
        """Evaluate the left-hand side at a specific ``pi``."""
        dist = as_float_array(pi, "pi")
        if dist.shape != (self.n,):
            raise QuantificationError(
                f"pi must have shape ({self.n},), got {dist.shape}"
            )
        return float((dist @ self.u) * (dist @ self.v) + dist @ self.w)

    def quadratic_matrix(self) -> np.ndarray:
        """The (asymmetric) quadratic form matrix ``u v^T``."""
        return np.outer(self.u, self.v)


def privacy_conditions(
    a, b, c, epsilon: float
) -> tuple[RankOneCondition, RankOneCondition]:
    """Build the Eq. (15)/(16) conditions from collapsed ``a, b, c``.

    ``b`` and ``c`` may carry a common positive scale factor (see
    :class:`repro.core.joint.EventQuantifier`); both conditions are
    homogeneous of degree one in that factor, so their signs -- the only
    thing the solver uses -- are unaffected.

    Parameters
    ----------
    a, b, c:
        pi-space vectors: prior, event-joint, total observation
        probability per initial cell.
    epsilon:
        The epsilon of epsilon-spatiotemporal event privacy (> 0).
    """
    epsilon = check_positive(epsilon, "epsilon")
    a = as_float_array(a, "a")
    b = as_float_array(b, "b")
    c = as_float_array(c, "c")
    if not (a.shape == b.shape == c.shape) or a.ndim != 1:
        raise QuantificationError(
            f"a, b, c must be equal-length 1-D, got {a.shape}, {b.shape}, {c.shape}"
        )
    # Both conditions are homogeneous of degree one in the common scale of
    # b and c (a product of per-timestamp emission probabilities that
    # shrinks exponentially with t).  Normalize it out so the solver's
    # tolerance is relative to the observation-probability scale rather
    # than an absolute float threshold a long sequence would sink below.
    scale = float(c.max())
    if scale > 0.0:
        b = b / scale
        c = c / scale
    e = float(np.exp(epsilon))
    # The inputs were just validated; construct the conditions through
    # the trusted path so the hot verdict loop does not re-validate the
    # same six arrays on every calibration attempt.
    cond_forward = RankOneCondition._trusted(
        a, (e - 1.0) * b - e * c, b, "Pr(o|EVENT) <= e^eps Pr(o|~EVENT)"
    )
    cond_backward = RankOneCondition._trusted(
        a, (e - 1.0) * b + c, -e * b, "Pr(o|~EVENT) <= e^eps Pr(o|EVENT)"
    )
    return cond_forward, cond_backward


def condition_value(a, b, c, epsilon: float, pi) -> tuple[float, float]:
    """Both condition left-hand sides at a fixed ``pi`` (diagnostics)."""
    forward, backward = privacy_conditions(a, b, c, epsilon)
    return forward.value(pi), backward.value(pi)


def sufficient_safe(a, b, c, epsilon: float, tolerance: float = 1e-9) -> bool:
    """Cheap *sufficient* certificate for both Theorem IV.1 conditions.

    For any initial distribution, ``Pr(o | EVENT)`` is a weighted average
    of the per-start-cell conditionals ``r_i = b_i / a_i`` (weights
    ``pi_i a_i``), and ``Pr(o | not EVENT)`` a weighted average of
    ``q_i = (c_i - b_i) / (1 - a_i)``.  Hence

        max_i r_i <= e^eps * min_j q_j   and
        max_j q_j <= e^eps * min_i r_i

    imply epsilon-spatiotemporal event privacy for *every* pi -- in O(m),
    no quadratic program needed.  The converse does not hold (the exact
    edge solver is tighter), so a ``False`` here means "not certified",
    not "violated".  This is the fast path of the conservative-release
    strategy: under a tight solver threshold a release can still be
    proven safe by this bound.
    """
    check_positive(epsilon, "epsilon")
    a = as_float_array(a, "a")
    b = as_float_array(b, "b")
    c = as_float_array(c, "c")
    bound = float(np.exp(epsilon))
    event_side = a > tolerance
    negation_side = a < 1.0 - tolerance
    if not event_side.any() or not negation_side.any():
        # Pr(EVENT) is 0 or 1 for every pi: the Definition II.4 ratio is
        # vacuous, both quadratic conditions reduce to 0 <= 0.
        return True
    if np.any(b[~event_side] > tolerance * max(1.0, float(c.max()))):
        return False  # joint mass from a no-prior cell: numerically off
    r = b[event_side] / a[event_side]
    q = (c[negation_side] - b[negation_side]) / (1.0 - a[negation_side])
    q = np.clip(q, 0.0, None)
    r_min, r_max = float(r.min()), float(r.max())
    q_min, q_max = float(q.min()), float(q.max())
    if q_min <= 0.0 or r_min <= 0.0:
        # An impossible observation on one side: cannot certify cheaply.
        return bool(r_max <= 0.0 and q_max <= 0.0)
    slack = 1.0 + tolerance
    return bool(r_max <= bound * q_min * slack and q_max <= bound * r_min * slack)


def likelihood_ratio(a, b, c, pi) -> float:
    """``Pr(o | EVENT) / Pr(o | not EVENT)`` at a fixed ``pi``.

    Scale-free in the common factor of ``b`` and ``c``.  Raises
    :class:`QuantificationError` on degenerate priors (the ratio of
    Definition II.4 is undefined when the event is almost-surely true or
    false).
    """
    a = as_float_array(a, "a")
    b = as_float_array(b, "b")
    c = as_float_array(c, "c")
    dist = as_float_array(pi, "pi")
    prior_true = float(dist @ a)
    prior_false = 1.0 - prior_true
    joint_true = float(dist @ b)
    joint_false = float(dist @ c) - joint_true
    if prior_true <= 0 or prior_false <= 0:
        raise QuantificationError(
            f"degenerate prior: Pr(EVENT)={prior_true:.3g} under this pi"
        )
    if joint_false <= 0:
        return float("inf") if joint_true > 0 else float("nan")
    return (joint_true / prior_true) / (joint_false / prior_false)
