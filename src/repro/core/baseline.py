"""Naive exponential baselines (Appendix B).

Two flavours are provided:

* **Generic full enumeration** over all ``m^T`` trajectories --
  :func:`enumerate_prior` / :func:`enumerate_joint`.  These are the exact
  oracles the property tests compare the two-world engine against; they
  accept *any* expression or event.
* **Pattern enumeration** (the paper's Algorithm 4) over the
  ``width^length`` trajectories inside a PATTERN's regions --
  :func:`pattern_prior_naive` / :func:`pattern_joint_naive`.  These are
  the comparators in the Fig. 14 runtime experiment: exponential in event
  length and width where the two-world method is linear / polynomial.
"""

from __future__ import annotations

import itertools

import numpy as np

from .._validation import as_float_array, check_probability_vector
from ..errors import QuantificationError
from ..events.events import PatternEvent, SpatiotemporalEvent
from ..events.expressions import Expression
from ..markov.transition import TimeVaryingChain, TransitionMatrix


def _as_chain(chain) -> TimeVaryingChain:
    if isinstance(chain, TimeVaryingChain):
        return chain
    if isinstance(chain, TransitionMatrix):
        return TimeVaryingChain.homogeneous(chain)
    return TimeVaryingChain.homogeneous(TransitionMatrix(np.asarray(chain)))


def _event_expression(event) -> Expression:
    if isinstance(event, SpatiotemporalEvent):
        return event.to_expression()
    if isinstance(event, Expression):
        return event
    raise QuantificationError(f"not an event or expression: {event!r}")


def _trajectory_probability(chain: TimeVaryingChain, pi: np.ndarray, cells) -> float:
    prob = float(pi[cells[0]])
    for t, (src, dst) in enumerate(zip(cells[:-1], cells[1:]), start=1):
        prob *= float(chain.array_at(t)[src, dst])
        if prob == 0.0:
            return 0.0
    return prob


def enumerate_prior(chain, event, pi, horizon: int | None = None) -> float:
    """Exact ``Pr(EVENT)`` by summing over all ``m^T`` trajectories.

    ``horizon`` defaults to the event's last timestamp.  Exponential --
    use only on toy instances (this is the point of the baseline).
    """
    model = _as_chain(chain)
    expression = _event_expression(event)
    m = model.n_states
    dist = check_probability_vector(pi, "initial distribution")
    if dist.size != m:
        raise QuantificationError(f"pi has {dist.size} entries, chain has {m}")
    _, end = expression.time_window()
    t_max = end if horizon is None else max(int(horizon), end)
    total = 0.0
    for cells in itertools.product(range(m), repeat=t_max):
        if not expression.evaluate(cells):
            continue
        total += _trajectory_probability(model, dist, cells)
    return total


def enumerate_joint(chain, event, pi, emission_columns, upto_t: int | None = None) -> float:
    """Exact ``Pr(EVENT, o_1..o_t)`` by full trajectory enumeration.

    ``emission_columns`` is the ``(T', m)`` array of released columns
    ``p~_{o_i}``; enumeration runs to ``max(t, end)`` so the event's value
    is fully determined on every trajectory.
    """
    model = _as_chain(chain)
    expression = _event_expression(event)
    m = model.n_states
    dist = check_probability_vector(pi, "initial distribution")
    if dist.size != m:
        raise QuantificationError(f"pi has {dist.size} entries, chain has {m}")
    cols = as_float_array(emission_columns, "emission columns")
    if cols.ndim != 2 or cols.shape[1] != m:
        raise QuantificationError(
            f"emission columns must be (T', {m}), got {cols.shape}"
        )
    t_obs = cols.shape[0] if upto_t is None else int(upto_t)
    if not 1 <= t_obs <= cols.shape[0]:
        raise QuantificationError(f"upto_t={upto_t} outside [1, {cols.shape[0]}]")
    _, end = expression.time_window()
    t_max = max(t_obs, end)
    total = 0.0
    for cells in itertools.product(range(m), repeat=t_max):
        if not expression.evaluate(cells):
            continue
        prob = _trajectory_probability(model, dist, cells)
        if prob == 0.0:
            continue
        for i in range(t_obs):
            prob *= float(cols[i, cells[i]])
            if prob == 0.0:
                break
        total += prob
    return total


# ----------------------------------------------------------------------
# Algorithm 4: PATTERN enumeration over region products
# ----------------------------------------------------------------------
def pattern_prior_naive(chain, pattern: PatternEvent, pi) -> float:
    """``Pr(PATTERN)`` by enumerating the region-product trajectories.

    Appendix B: the probability of the pattern is the sum, over all
    ``prod_k |region_k|`` in-region window trajectories, of
    ``p_start[u_start] * prod M[u_t, u_{t+1}]`` where
    ``p_start = pi M^{start-1}``.
    """
    if not isinstance(pattern, PatternEvent):
        raise QuantificationError("pattern_prior_naive requires a PatternEvent")
    model = _as_chain(chain)
    m = model.n_states
    dist = check_probability_vector(pi, "initial distribution")
    if dist.size != m:
        raise QuantificationError(f"pi has {dist.size} entries, chain has {m}")
    p_start = dist.copy()
    for t in range(1, pattern.start):
        p_start = p_start @ model.array_at(t)
    region_cells = [region.cells for region in pattern.regions]
    total = 0.0
    for cells in itertools.product(*region_cells):
        prob = float(p_start[cells[0]])
        for offset, (src, dst) in enumerate(zip(cells[:-1], cells[1:])):
            prob *= float(model.array_at(pattern.start + offset)[src, dst])
            if prob == 0.0:
                break
        total += prob
    return total


def pattern_joint_naive(chain, pattern: PatternEvent, pi, emission_columns) -> float:
    """``Pr(PATTERN, o_start..o_end)`` by region-product enumeration.

    The paper's Algorithm 4: per in-region trajectory, multiply the
    transition probabilities and the emission probabilities of the
    observations within the event window.  ``emission_columns`` is
    ``(length, m)``: row ``k`` is ``p~_{o_{start+k}}``.
    """
    if not isinstance(pattern, PatternEvent):
        raise QuantificationError("pattern_joint_naive requires a PatternEvent")
    model = _as_chain(chain)
    m = model.n_states
    dist = check_probability_vector(pi, "initial distribution")
    if dist.size != m:
        raise QuantificationError(f"pi has {dist.size} entries, chain has {m}")
    cols = as_float_array(emission_columns, "emission columns")
    if cols.shape != (pattern.length, m):
        raise QuantificationError(
            f"emission columns must be ({pattern.length}, {m}), got {cols.shape}"
        )
    p_start = dist.copy()
    for t in range(1, pattern.start):
        p_start = p_start @ model.array_at(t)
    region_cells = [region.cells for region in pattern.regions]
    total = 0.0
    for cells in itertools.product(*region_cells):
        prob = float(p_start[cells[0]]) * float(cols[0, cells[0]])
        if prob == 0.0:
            continue
        alive = True
        for offset, (src, dst) in enumerate(zip(cells[:-1], cells[1:])):
            prob *= float(model.array_at(pattern.start + offset)[src, dst])
            prob *= float(cols[offset + 1, dst])
            if prob == 0.0:
                alive = False
                break
        if alive:
            total += prob
    return total
