"""Quantifying epsilon-spatiotemporal event privacy of a given LPPM.

Two entry points, matching the paper's Section III vs Section IV split:

* :func:`quantify_fixed_prior` -- the Section III question: given a
  concrete initial distribution ``pi``, an LPPM (emission matrices) and a
  released observation sequence, what is the realized privacy loss
  ``max_t |log Pr(o_1..t | EVENT) / Pr(o_1..t | not EVENT)|``?
* :func:`verify_event_privacy` -- the Section IV question: does the
  release satisfy epsilon-spatiotemporal event privacy for *arbitrary*
  ``pi`` (Theorem IV.1, checked by the exact simplex solver)?
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array, check_positive, check_probability_vector
from ..errors import DegeneratePriorError, QuantificationError
from ..lppm.base import LPPM
from .joint import EventQuantifier
from .qp import SolveResult, SolverOptions, SolverStatus, check_conditions_batch
from .theorem import likelihood_ratio, privacy_conditions
from .two_world import TwoWorldModel


def _emission_columns_from(lppm_or_matrices, observations, m: int) -> np.ndarray:
    """Normalize (LPPM | matrix | per-t matrices | log) + outputs into columns."""
    observations = [int(o) for o in observations]
    if hasattr(lppm_or_matrices, "emission_stack"):
        # A ReleaseLog (or anything log-shaped) recorded with
        # record_emissions=True: verify exactly what was used.
        lppm_or_matrices = lppm_or_matrices.emission_stack()
    if isinstance(lppm_or_matrices, LPPM):
        matrices = [lppm_or_matrices.emission_matrix()] * len(observations)
    else:
        arr = np.asarray(lppm_or_matrices, dtype=np.float64)
        if arr.ndim == 2:
            matrices = [arr] * len(observations)
        elif arr.ndim == 3:
            if arr.shape[0] != len(observations):
                raise QuantificationError(
                    f"{arr.shape[0]} emission matrices for "
                    f"{len(observations)} observations"
                )
            matrices = list(arr)
        else:
            raise QuantificationError(
                f"emissions must be an LPPM, a 2-D or a 3-D array, got "
                f"shape {arr.shape}"
            )
    columns = np.empty((len(observations), m), dtype=np.float64)
    for t, (matrix, output) in enumerate(zip(matrices, observations)):
        if matrix.shape[0] != m:
            raise QuantificationError(
                f"emission matrix at t={t + 1} has {matrix.shape[0]} rows, "
                f"expected {m}"
            )
        if not 0 <= output < matrix.shape[1]:
            raise QuantificationError(
                f"observation {output} at t={t + 1} outside output range "
                f"[0, {matrix.shape[1]})"
            )
        columns[t] = matrix[:, output]
    return columns


@dataclass(frozen=True)
class QuantificationResult:
    """Per-timestamp realized privacy loss for a fixed prior.

    Attributes
    ----------
    prior_probability:
        ``Pr(EVENT)`` under the supplied pi.
    ratios:
        ``Pr(o_1..t | EVENT) / Pr(o_1..t | not EVENT)`` per t.
    epsilon:
        The realized loss ``max_t |log ratio_t|``.
    """

    prior_probability: float
    ratios: tuple[float, ...]
    epsilon: float

    @property
    def log_ratios(self) -> tuple[float, ...]:
        """Signed log ratios per timestamp."""
        return tuple(float(np.log(r)) for r in self.ratios)


def quantify_fixed_prior(
    chain, event, lppm_or_matrices, observations, pi, horizon: int | None = None
) -> QuantificationResult:
    """Realized event-privacy loss of a released sequence, fixed ``pi``.

    Parameters
    ----------
    chain:
        Mobility model (transition matrix or time-varying chain).
    event:
        PRESENCE or PATTERN event.
    lppm_or_matrices:
        The mechanism: an :class:`~repro.lppm.base.LPPM`, one emission
        matrix, a ``(T', m, n_out)`` stack (one matrix per timestamp), or
        a :class:`~repro.engine.ReleaseLog` recorded with
        ``record_emissions=True`` (its stack is used).
    observations:
        The released outputs ``o_1..o_T'``.
    pi:
        Initial distribution of the user's first location.
    horizon:
        Model horizon; defaults to ``max(len(observations), event.end)``.
    """
    observations = list(observations)
    if not observations:
        raise QuantificationError("need at least one observation")
    t_total = len(observations)
    if horizon is None:
        horizon = max(t_total, event.end)
    model = TwoWorldModel(chain, event, horizon)
    m = model.n_states
    dist = check_probability_vector(pi, "pi")
    if dist.size != m:
        raise QuantificationError(f"pi has {dist.size} entries, map has {m}")
    columns = _emission_columns_from(lppm_or_matrices, observations, m)

    a = model.prior_vector()
    prior_true = float(dist @ a)
    if prior_true <= 0.0 or prior_true >= 1.0:
        raise DegeneratePriorError(
            f"Pr(EVENT) = {prior_true:.6g} under this pi; the Definition II.4 "
            "ratio is undefined"
        )

    quantifier = EventQuantifier(model)
    ratios: list[float] = []
    for t in range(1, t_total + 1):
        quantifier.prepare(t)
        b, c = quantifier.candidate_bc(t, columns[t - 1])
        ratios.append(likelihood_ratio(a, b, c, dist))
        quantifier.commit(t, columns[t - 1])
    finite = [r for r in ratios if np.isfinite(r) and r > 0]
    if len(finite) != len(ratios):
        epsilon = float("inf")
    else:
        epsilon = max(abs(float(np.log(r))) for r in ratios)
    return QuantificationResult(
        prior_probability=prior_true, ratios=tuple(ratios), epsilon=epsilon
    )


@dataclass(frozen=True)
class PrivacyCheck:
    """Per-timestamp Theorem IV.1 verdicts for a released sequence."""

    statuses: tuple[SolverStatus, ...]
    results: tuple[tuple[SolveResult, ...], ...]

    @property
    def holds(self) -> bool:
        """Whether every timestamp was certified SAFE."""
        return all(status is SolverStatus.SAFE for status in self.statuses)

    @property
    def first_violation(self) -> int | None:
        """1-based first timestamp with a VIOLATED verdict, if any."""
        for t, status in enumerate(self.statuses, start=1):
            if status is SolverStatus.VIOLATED:
                return t
        return None


def verify_event_privacy(
    chain,
    event,
    lppm_or_matrices,
    observations,
    epsilon: float,
    horizon: int | None = None,
    options: SolverOptions | None = None,
) -> PrivacyCheck:
    """Theorem IV.1 check of a released sequence for arbitrary ``pi``.

    Returns one verdict per observation prefix; the sequence satisfies
    epsilon-spatiotemporal event privacy (w.r.t. the modeled correlations)
    iff every verdict is SAFE.
    """
    check_positive(epsilon, "epsilon")
    observations = list(observations)
    if not observations:
        raise QuantificationError("need at least one observation")
    t_total = len(observations)
    if horizon is None:
        horizon = max(t_total, event.end)
    model = TwoWorldModel(chain, event, horizon)
    columns = _emission_columns_from(lppm_or_matrices, observations, model.n_states)

    quantifier = EventQuantifier(model)
    a = quantifier.a_vector()
    statuses: list[SolverStatus] = []
    results: list[tuple[SolveResult, ...]] = []
    for t in range(1, t_total + 1):
        quantifier.prepare(t)
        b, c = quantifier.candidate_bc(t, columns[t - 1])
        conditions = privacy_conditions(a, b, c, epsilon)
        status, detail = check_conditions_batch(conditions, options)
        statuses.append(status)
        results.append(detail)
        quantifier.commit(t, columns[t - 1])
    return PrivacyCheck(statuses=tuple(statuses), results=tuple(results))
