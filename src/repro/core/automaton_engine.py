"""Generalized event engine via compiled automata (extension).

The paper's two-world method handles PRESENCE and PATTERN.  This engine
handles *any* Boolean expression over (location, time) predicates by
lifting the Markov chain with the layered automaton produced by
:func:`repro.events.compiler.compile_event` (Fig. 1(d)-(f) events
included).  PRESENCE/PATTERN compile to <= 2 live states per layer, so
this engine subsumes -- and is cross-validated against -- the two-world
construction.

State convention: ``S_t`` is the automaton state after consuming every
window location up to ``min(t, end)``; before the window it is the single
initial state, after the window it is frozen.  The pair ``(S_t, u_t)`` is
Markov, which is all the forward/backward recursions need.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_probability_vector, check_timestamp
from ..errors import EventError, QuantificationError
from ..events.compiler import CompiledEvent, compile_event
from ..events.events import SpatiotemporalEvent
from ..events.expressions import Expression
from ..markov.transition import TimeVaryingChain, TransitionMatrix


def _as_chain(chain) -> TimeVaryingChain:
    if isinstance(chain, TimeVaryingChain):
        return chain
    if isinstance(chain, TransitionMatrix):
        return TimeVaryingChain.homogeneous(chain)
    return TimeVaryingChain.homogeneous(TransitionMatrix(np.asarray(chain)))


class AutomatonModel:
    """Prior and joint probabilities for an arbitrary compiled event.

    Parameters
    ----------
    chain:
        Mobility model.
    event:
        An expression, a PRESENCE/PATTERN event, or a pre-compiled
        :class:`CompiledEvent`.
    horizon:
        Release horizon ``T`` (must cover the event window).
    """

    def __init__(self, chain, event, horizon: int):
        self._chain = _as_chain(chain)
        if isinstance(event, CompiledEvent):
            self._compiled = event
        elif isinstance(event, SpatiotemporalEvent):
            self._compiled = compile_event(event.to_expression())
        elif isinstance(event, Expression):
            self._compiled = compile_event(event)
        else:
            raise EventError(f"cannot interpret event: {event!r}")
        self._horizon = check_timestamp(horizon, name="horizon")
        if self._compiled.end > self._horizon:
            raise EventError(
                f"event ends at t={self._compiled.end}, beyond horizon "
                f"T={self._horizon}"
            )
        m = self._chain.n_states
        for layer in self._compiled.layers:
            for cell in layer.mentioned_cells:
                if cell >= m:
                    raise EventError(
                        f"event mentions cell {cell}, chain has only {m} states"
                    )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def compiled(self) -> CompiledEvent:
        """The layered automaton."""
        return self._compiled

    @property
    def n_states(self) -> int:
        """Number of map cells ``m``."""
        return self._chain.n_states

    @property
    def start(self) -> int:
        """Event window start."""
        return self._compiled.start

    @property
    def end(self) -> int:
        """Event window end."""
        return self._compiled.end

    def _layer(self, t: int):
        return self._compiled.layers[t - self._compiled.start]

    def _consume(self, rows: np.ndarray, t: int) -> np.ndarray:
        """Automaton step at window timestamp t.

        ``rows`` has shape ``(k_in, m)``: probability mass (or any linear
        payload) per (state, location at time t, before consuming u_t).
        Returns ``(k_out, m)`` with the mass re-binned by next state.
        """
        layer = self._layer(t)
        k_out = self._compiled.n_states_per_layer[t - self._compiled.start + 1]
        out = np.zeros((k_out, rows.shape[1]), dtype=np.float64)
        for state in range(rows.shape[0]):
            default = layer.defaults[state]
            out[default] += rows[state]
            for cell, nxt in layer.transitions[state].items():
                if nxt != default:
                    out[nxt, cell] += rows[state, cell]
                    out[default, cell] -= rows[state, cell]
        return out

    # ------------------------------------------------------------------
    # acceptance probabilities (pi-free backward pass)
    # ------------------------------------------------------------------
    def acceptance_table(self) -> list[np.ndarray]:
        """``z_t[q, c] = Pr(EVENT | S_t = q, u_t = c)`` for t = 1..end.

        Computed backward from the final layer (where acceptance is the
        0/1 accepting flag).  Entry ``t-1`` of the returned list has shape
        ``(k_t, m)`` with ``k_t`` the live state count at time t.
        """
        start, end = self.start, self.end
        m = self.n_states
        tables: list[np.ndarray | None] = [None] * end
        final = np.array(
            [1.0 if acc else 0.0 for acc in self._compiled.accepting],
            dtype=np.float64,
        )
        tables[end - 1] = np.repeat(final[:, None], m, axis=1)
        for t in range(end - 1, 0, -1):
            nxt = tables[t]  # z_{t+1}: (k_{t+1}, m)
            base = self._chain.array_at(t)
            if start <= t + 1 <= end:
                # The automaton consumes u_{t+1}: route each destination
                # cell's acceptance through the layer transition.
                layer = self._layer(t + 1)
                k_now = self._compiled.n_states_per_layer[t + 1 - start]
                z_now = np.empty((k_now, m), dtype=np.float64)
                for state in range(k_now):
                    default = layer.defaults[state]
                    routed = nxt[default].copy()
                    for cell, target in layer.transitions[state].items():
                        routed[cell] = nxt[target, cell]
                    z_now[state] = base @ routed
                tables[t - 1] = z_now
            else:
                tables[t - 1] = nxt @ base.T
        return [table for table in tables if table is not None]

    def prior_vector(self) -> np.ndarray:
        """``a[i] = Pr(EVENT | u_1 = s_i)`` (length m)."""
        tables = self.acceptance_table()
        z1 = tables[0]
        m = self.n_states
        if self.start > 1:
            return z1[0].copy()
        # start == 1: the state at t=1 already consumed u_1.
        layer = self._compiled.layers[0]
        out = np.empty(m, dtype=np.float64)
        for cell in range(m):
            state = layer.next_state(0, cell)
            out[cell] = z1[state, cell]
        return out

    def prior_probability(self, pi) -> float:
        """``Pr(EVENT)`` under initial distribution ``pi``."""
        dist = check_probability_vector(pi, "initial distribution")
        if dist.size != self.n_states:
            raise QuantificationError(
                f"pi has {dist.size} entries, map has {self.n_states} cells"
            )
        return float(dist @ self.prior_vector())

    # ------------------------------------------------------------------
    # joints (forward pass with emissions)
    # ------------------------------------------------------------------
    def _initial_front(self, pi: np.ndarray) -> np.ndarray:
        m = self.n_states
        if self.start == 1:
            layer = self._compiled.layers[0]
            k = self._compiled.n_states_per_layer[1]
            front = np.zeros((k, m), dtype=np.float64)
            for cell in range(m):
                front[layer.next_state(0, cell), cell] = pi[cell]
            return front
        return pi[None, :].copy()

    def joint_probability(self, pi, emission_columns, upto_t: int | None = None) -> float:
        """``Pr(EVENT, o_1..o_t)`` via the automaton-lifted forward pass."""
        m = self.n_states
        dist = check_probability_vector(pi, "initial distribution")
        if dist.size != m:
            raise QuantificationError(f"pi has {dist.size} entries, map has {m}")
        cols = as_float_array(emission_columns, "emission columns")
        if cols.ndim != 2 or cols.shape[1] != m:
            raise QuantificationError(
                f"emission columns must be (T', {m}), got {cols.shape}"
            )
        t_obs = cols.shape[0] if upto_t is None else int(upto_t)
        if not 1 <= t_obs <= cols.shape[0]:
            raise QuantificationError(f"upto_t={upto_t} outside [1, {cols.shape[0]}]")

        start, end = self.start, self.end
        tables = self.acceptance_table()

        front = self._initial_front(dist)
        front = front * cols[0][None, :]
        t = 1
        while t < t_obs:
            base = self._chain.array_at(t)
            front = front @ base
            t += 1
            if start <= t <= end:
                # Entering timestamp t consumes u_t (layer t - start);
                # t == 1 never reaches here (handled by the initial front).
                front = self._consume(front, t)
            front = front * cols[t - 1][None, :]

        if t_obs >= end:
            # Event fully resolved: final-layer states carry acceptance
            # (after `end` the state set is frozen at the final layer).
            accept = np.array(
                [1.0 if acc else 0.0 for acc in self._compiled.accepting]
            )
            return float(accept @ front.sum(axis=1))
        # Event not yet resolved: weight by acceptance probabilities.
        z = tables[t_obs - 1]
        if z.shape[0] != front.shape[0]:
            raise QuantificationError(
                "internal error: state-count mismatch between forward front "
                f"({front.shape[0]}) and acceptance table ({z.shape[0]}) at t={t_obs}"
            )
        return float((front * z).sum())

    def observation_probability(
        self, pi, emission_columns, upto_t: int | None = None
    ) -> float:
        """``Pr(o_1..o_t)`` (event-free forward pass)."""
        m = self.n_states
        dist = check_probability_vector(pi, "initial distribution")
        cols = as_float_array(emission_columns, "emission columns")
        t_obs = cols.shape[0] if upto_t is None else int(upto_t)
        current = dist * cols[0]
        for t in range(2, t_obs + 1):
            current = (current @ self._chain.array_at(t - 1)) * cols[t - 1]
        return float(current.sum())
