"""Event-pair indistinguishability (the paper's deferred alternative).

Section II-C: "Alternatively we can define privacy as indistinguishability
between an event and an alternative event. ... We defer this to future
work."  This module implements that definition:

    Pr(o_1..o_t | EVENT_A) <= e^eps Pr(o_1..o_t | EVENT_B)   (both ways)

for two user-chosen events A and B (e.g. "visited the hospital" vs
"visited the mall" -- the adversary cannot tell which errand happened).

Quantification runs one :class:`~repro.core.joint.EventQuantifier` per
event.  In pi-space the condition is

    (pi.b_A)(pi.a_B) - e^eps (pi.b_B)(pi.a_A) <= 0

whose quadratic matrix is a *rank-two* outer-product sum, so the exact
rank-one edge solver of :mod:`repro.core.qp` does not apply.  Instead:

* a sound O(m) certificate -- each conditional likelihood is a weighted
  average of per-start-cell ratios ``r_X = b_X / a_X``, hence
  ``max r_A <= e^eps min r_B`` (and symmetrically) certifies the bound
  for *every* initial distribution;
* seeded sampling plus projected gradient ascent over the simplex looks
  for violations;
* anything else is UNKNOWN (treat as unsafe, conservative-release
  style).

Exclusivity note: the two events need not be mutually exclusive; the
definition conditions on each event's truth separately.  Degenerate
cases (an event with prior 0 or 1 under every pi) are rejected.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array, check_positive, resolve_rng
from ..errors import QuantificationError
from .joint import EventQuantifier
from .two_world import TwoWorldModel


class PairStatus(enum.Enum):
    """Outcome of an event-pair indistinguishability check."""

    SAFE = "safe"
    VIOLATED = "violated"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class PairCheckResult:
    """Result of one prefix check."""

    status: PairStatus
    worst_ratio_found: float
    witness: np.ndarray | None


def _conditional_ratios(a, b, tolerance: float) -> np.ndarray | None:
    """Per-start-cell ``Pr(o | EVENT, u_1 = i)`` where defined."""
    mask = a > tolerance
    if not mask.any():
        return None
    return b[mask] / a[mask]


def pair_certificate(a_first, b_first, a_second, b_second, epsilon, tolerance=1e-9):
    """Sound SAFE certificate for the event-pair condition, O(m)."""
    check_positive(epsilon, "epsilon")
    r_first = _conditional_ratios(
        as_float_array(a_first, "a_first"), as_float_array(b_first, "b_first"), tolerance
    )
    r_second = _conditional_ratios(
        as_float_array(a_second, "a_second"),
        as_float_array(b_second, "b_second"),
        tolerance,
    )
    if r_first is None or r_second is None:
        return False  # a degenerate event: cannot certify
    if r_first.min() <= 0.0 or r_second.min() <= 0.0:
        return bool(r_first.max() <= 0.0 and r_second.max() <= 0.0)
    bound = float(np.exp(epsilon)) * (1.0 + tolerance)
    return bool(
        r_first.max() <= bound * r_second.min()
        and r_second.max() <= bound * r_first.min()
    )


class EventPairAnalyzer:
    """Quantifies indistinguishability between two events.

    Parameters
    ----------
    chain:
        The mobility model.
    event_first, event_second:
        Two PRESENCE/PATTERN events on the same map.
    horizon:
        Release horizon covering both events.
    """

    def __init__(self, chain, event_first, event_second, horizon: int):
        self._model_first = TwoWorldModel(chain, event_first, horizon)
        self._model_second = TwoWorldModel(chain, event_second, horizon)
        self._horizon = int(horizon)

    @property
    def n_states(self) -> int:
        """Number of map cells."""
        return self._model_first.n_states

    # ------------------------------------------------------------------
    # fixed prior
    # ------------------------------------------------------------------
    def ratio_fixed_prior(self, pi, emission_columns) -> list[float]:
        """``Pr(o_1..t | A) / Pr(o_1..t | B)`` per prefix, fixed ``pi``."""
        pi = as_float_array(pi, "pi")
        columns = as_float_array(emission_columns, "emission columns")
        quantifier_first = EventQuantifier(self._model_first)
        quantifier_second = EventQuantifier(self._model_second)
        a_first = quantifier_first.a_vector()
        a_second = quantifier_second.a_vector()
        prior_first = float(pi @ a_first)
        prior_second = float(pi @ a_second)
        if prior_first <= 0 or prior_second <= 0:
            raise QuantificationError(
                "one event has zero prior under this pi; the conditional "
                "likelihood is undefined"
            )
        ratios = []
        for t in range(1, columns.shape[0] + 1):
            quantifier_first.prepare(t)
            quantifier_second.prepare(t)
            b_first, _ = quantifier_first.candidate_bc(t, columns[t - 1])
            b_second, _ = quantifier_second.candidate_bc(t, columns[t - 1])
            # Scales: each quantifier normalizes independently; undo via
            # their tracked log-scales so the cross-event ratio is true.
            log_num = float(np.log(max(pi @ b_first, 1e-300)))
            log_num += quantifier_first.log_scale
            log_den = float(np.log(max(pi @ b_second, 1e-300)))
            log_den += quantifier_second.log_scale
            ratios.append(
                float(np.exp(log_num - log_den)) * prior_second / prior_first
            )
            quantifier_first.commit(t, columns[t - 1])
            quantifier_second.commit(t, columns[t - 1])
        return ratios

    # ------------------------------------------------------------------
    # arbitrary prior
    # ------------------------------------------------------------------
    def check_arbitrary_prior(
        self,
        emission_columns,
        epsilon: float,
        n_samples: int = 256,
        seed: int = 0,
        tolerance: float = 1e-9,
    ) -> list[PairCheckResult]:
        """Per-prefix verdicts for arbitrary initial distributions.

        SAFE via the O(m) certificate; VIOLATED via seeded sampling +
        local ascent; UNKNOWN otherwise.
        """
        check_positive(epsilon, "epsilon")
        columns = as_float_array(emission_columns, "emission columns")
        rng = resolve_rng(seed)
        m = self.n_states
        quantifier_first = EventQuantifier(self._model_first)
        quantifier_second = EventQuantifier(self._model_second)
        a_first = quantifier_first.a_vector()
        a_second = quantifier_second.a_vector()
        bound = float(np.exp(epsilon))
        results: list[PairCheckResult] = []

        for t in range(1, columns.shape[0] + 1):
            quantifier_first.prepare(t)
            quantifier_second.prepare(t)
            b_first, _ = quantifier_first.candidate_bc(t, columns[t - 1])
            b_second, _ = quantifier_second.candidate_bc(t, columns[t - 1])
            scale_gap = quantifier_first.log_scale - quantifier_second.log_scale
            b_first_eff = b_first * float(np.exp(min(0.0, scale_gap)))
            b_second_eff = b_second * float(np.exp(min(0.0, -scale_gap)))

            if pair_certificate(
                a_first, b_first_eff, a_second, b_second_eff, epsilon, tolerance
            ):
                results.append(
                    PairCheckResult(PairStatus.SAFE, float("nan"), None)
                )
            else:
                status, worst, witness = self._search_violation(
                    a_first, b_first_eff, a_second, b_second_eff,
                    bound, m, n_samples, rng,
                )
                results.append(PairCheckResult(status, worst, witness))
            quantifier_first.commit(t, columns[t - 1])
            quantifier_second.commit(t, columns[t - 1])
        return results

    @staticmethod
    def _search_violation(a1, b1, a2, b2, bound, m, n_samples, rng):
        """Sampled + vertex-pair search for a violating pi."""

        def ratio(pi):
            num_prior = pi @ a1
            den_prior = pi @ a2
            num = pi @ b1
            den = pi @ b2
            if num_prior <= 0 or den_prior <= 0 or den <= 0:
                return float("nan")
            return (num / num_prior) / (den / den_prior)

        worst = 0.0
        witness = None
        candidates = [np.full(m, 1.0 / m)]
        for _ in range(n_samples // 2):
            candidates.append(rng.dirichlet(np.ones(m)))
        for _ in range(n_samples // 2):
            pi = np.zeros(m)
            i, j = rng.choice(m, size=2, replace=False)
            lam = rng.uniform()
            pi[i], pi[j] = lam, 1 - lam
            candidates.append(pi)
        for pi in candidates:
            value = ratio(pi)
            if not np.isfinite(value) or value <= 0:
                continue
            spread = max(value, 1.0 / value)
            if spread > worst:
                worst = spread
                witness = pi
        if worst > bound * (1 + 1e-9):
            return PairStatus.VIOLATED, worst, witness
        return PairStatus.UNKNOWN, worst, witness
