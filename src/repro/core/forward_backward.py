"""Generic hidden-Markov forward-backward algorithm (Eqs. 10-12).

The paper builds its joint-probability computation on the classic
forward-backward recursions; this module provides them in plain (non-
lifted) form, used by tests as an independent oracle, by the attacker-
inference example, and as a reusable substrate.

Conventions: ``alpha_t[k] = Pr(u_t = k, o_1..o_t)`` and
``beta_t[k] = Pr(o_{t+1}..o_T | u_t = k)``; emissions are supplied as a
``(T, m)`` array of columns ``p~_{o_t}[k] = Pr(o_t | u_t = k)``.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_probability_vector
from ..errors import QuantificationError
from ..markov.transition import TimeVaryingChain, TransitionMatrix


def _chain_arrays(chain) -> TimeVaryingChain:
    if isinstance(chain, TimeVaryingChain):
        return chain
    if isinstance(chain, TransitionMatrix):
        return TimeVaryingChain.homogeneous(chain)
    return TimeVaryingChain.homogeneous(TransitionMatrix(np.asarray(chain)))


def _validated_emissions(emission_columns, m: int) -> np.ndarray:
    cols = as_float_array(emission_columns, "emission columns")
    if cols.ndim != 2 or cols.shape[1] != m:
        raise QuantificationError(
            f"emission columns must be (T, {m}), got shape {cols.shape}"
        )
    if np.any(cols < 0) or np.any(cols > 1):
        raise QuantificationError("emission probabilities must lie in [0, 1]")
    return cols


def forward_messages(chain, initial, emission_columns) -> np.ndarray:
    """All forward messages ``alpha_1..alpha_T`` as a ``(T, m)`` array.

    Eq. (10): ``alpha_t[k] = p~_{o_t}[k] * sum_i alpha_{t-1}[i] M[i, k]``.
    """
    model = _chain_arrays(chain)
    m = model.n_states
    pi = check_probability_vector(initial, "initial distribution")
    if pi.size != m:
        raise QuantificationError(f"initial has {pi.size} entries, chain has {m}")
    cols = _validated_emissions(emission_columns, m)
    horizon = cols.shape[0]
    alphas = np.empty((horizon, m), dtype=np.float64)
    alphas[0] = pi * cols[0]
    for t in range(2, horizon + 1):
        alphas[t - 1] = (alphas[t - 2] @ model.array_at(t - 1)) * cols[t - 1]
    return alphas


def backward_messages(chain, emission_columns) -> np.ndarray:
    """All backward messages ``beta_1..beta_T`` as a ``(T, m)`` array.

    Eq. (11) with ``beta_T = 1``:
    ``beta_t[k] = sum_i M[k, i] p~_{o_{t+1}}[i] beta_{t+1}[i]``.
    """
    model = _chain_arrays(chain)
    m = model.n_states
    cols = _validated_emissions(emission_columns, m)
    horizon = cols.shape[0]
    betas = np.empty((horizon, m), dtype=np.float64)
    betas[horizon - 1] = 1.0
    for t in range(horizon - 1, 0, -1):
        betas[t - 1] = model.array_at(t) @ (cols[t] * betas[t])
    return betas


def sequence_likelihood(chain, initial, emission_columns) -> float:
    """``Pr(o_1..o_T)`` under the chain and emissions."""
    alphas = forward_messages(chain, initial, emission_columns)
    return float(alphas[-1].sum())


def smoothed_posteriors(chain, initial, emission_columns) -> np.ndarray:
    """``Pr(u_t | o_1..o_T)`` for every t, as a ``(T, m)`` array.

    Eq. (12): ``alpha_t[k] beta_t[k] / sum_i alpha_t[i] beta_t[i]``.  This
    is the adversary's optimal state inference given the whole released
    sequence -- what spatiotemporal event privacy bounds indirectly.
    """
    alphas = forward_messages(chain, initial, emission_columns)
    betas = backward_messages(chain, emission_columns)
    joint = alphas * betas
    totals = joint.sum(axis=1, keepdims=True)
    if np.any(totals <= 0):
        raise QuantificationError(
            "observation sequence has zero probability under the model"
        )
    return joint / totals


def filtered_posteriors(chain, initial, emission_columns) -> np.ndarray:
    """``Pr(u_t | o_1..o_t)`` for every t (causal filtering)."""
    alphas = forward_messages(chain, initial, emission_columns)
    totals = alphas.sum(axis=1, keepdims=True)
    if np.any(totals <= 0):
        raise QuantificationError(
            "observation prefix has zero probability under the model"
        )
    return alphas / totals
