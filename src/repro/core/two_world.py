"""The two-possible-world lifted Markov chain (Section III-B).

The user's ``m``-state chain is lifted to ``2m`` states: indices
``0..m-1`` form the *false world* (EVENT is false so far) and ``m..2m-1``
the *true world*.  The lifted transition matrices (Eqs. 3-8) re-route
probability mass between the worlds so that, after the event window, the
total mass in the true world *is* ``Pr(EVENT)`` (Lemma III.1):

* PRESENCE: mass entering the region during the window is captured by the
  true world and kept there forever (Eq. 4); outside the window both
  worlds evolve independently (Eq. 5).
* PATTERN: the split happens at the window start (Eq. 6); inside the
  window, true-world mass falls back to the false world unless it keeps
  following the pattern's regions (Eq. 7).

Boundary extension (documented in DESIGN.md §5): the paper's construction
assumes ``start > 1`` so the split is performed by transition matrix
``M_{start-1}``.  When ``start == 1`` the membership of the *initial*
location decides the worlds, so the initial distribution itself is split:
``[pi * (1-s), pi * s]`` instead of ``[pi, 0]``.  Both cases are captured
by the *initial lift matrix* ``L`` (m x 2m) with ``lifted_pi = pi @ L``.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_probability_vector, check_timestamp
from ..errors import EventError
from ..events.events import PatternEvent, PresenceEvent, SpatiotemporalEvent
from ..markov.transition import TimeVaryingChain, TransitionMatrix


def _as_chain(chain) -> TimeVaryingChain:
    if isinstance(chain, TimeVaryingChain):
        return chain
    if isinstance(chain, TransitionMatrix):
        return TimeVaryingChain.homogeneous(chain)
    return TimeVaryingChain.homogeneous(TransitionMatrix(np.asarray(chain)))


class TwoWorldModel:
    """Lifted chain for one PRESENCE or PATTERN event.

    Parameters
    ----------
    chain:
        The mobility model (:class:`TransitionMatrix`, raw array, or
        :class:`TimeVaryingChain`).
    event:
        A :class:`PresenceEvent` or :class:`PatternEvent` on the same map.
    horizon:
        The release horizon ``T``; must cover the event window.
    """

    def __init__(self, chain, event: SpatiotemporalEvent, horizon: int):
        self._chain = _as_chain(chain)
        if not isinstance(event, (PresenceEvent, PatternEvent)):
            raise EventError(
                "TwoWorldModel supports PRESENCE and PATTERN events; use "
                "repro.core.AutomatonModel for arbitrary expressions"
            )
        if event.n_cells != self._chain.n_states:
            raise EventError(
                f"event is on {event.n_cells} cells, chain has "
                f"{self._chain.n_states} states"
            )
        self._event = event
        self._horizon = check_timestamp(horizon, name="horizon")
        if event.end > self._horizon:
            raise EventError(
                f"event ends at t={event.end}, beyond horizon T={self._horizon}"
            )
        self._tails: np.ndarray | None = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def chain(self) -> TimeVaryingChain:
        """The underlying mobility model."""
        return self._chain

    @property
    def event(self) -> SpatiotemporalEvent:
        """The protected event."""
        return self._event

    @property
    def n_states(self) -> int:
        """Number of map cells ``m``."""
        return self._chain.n_states

    @property
    def horizon(self) -> int:
        """Release horizon ``T``."""
        return self._horizon

    @property
    def start(self) -> int:
        """Event window start."""
        return self._event.start

    @property
    def end(self) -> int:
        """Event window end."""
        return self._event.end

    def true_selector(self) -> np.ndarray:
        """The paper's ``[0, 1]`` vector: 1 on the true world."""
        m = self.n_states
        sel = np.zeros(2 * m, dtype=np.float64)
        sel[m:] = 1.0
        return sel

    # ------------------------------------------------------------------
    # lifted matrices (Eqs. 3-8)
    # ------------------------------------------------------------------
    def _region_indicator(self, t: int) -> np.ndarray:
        return self._event.region_at(t).indicator()

    def transition_blocks(
        self, t: int
    ) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None, np.ndarray | None]:
        """The four m x m blocks ``(ff, ft, tf, tt)`` of the lifted ``M_t``.

        Block layout follows Eq. (3): ``ff`` = false world to false world,
        ``ft`` = false to true, ``tf`` = true to false, ``tt`` = true to
        true.  Structurally-zero blocks are returned as ``None`` so hot
        paths can skip the corresponding matrix products.
        """
        check_timestamp(t, name="t")
        base = self._chain.array_at(t)
        start, end = self.start, self.end

        if isinstance(self._event, PresenceEvent):
            if start - 1 <= t <= end - 1:
                # Eq. (4): transitions into the region at time t+1 move to
                # the true world; the true world absorbs.
                region = self._region_indicator(max(t + 1, start))
                masked_in = base * region[None, :]
                return base - masked_in, masked_in, None, base
            # Eq. (5): independent evolution in both worlds.
            return base, None, None, base

        if t == start - 1:
            # Eq. (6): the split into worlds, by membership at `start`.
            region = self._region_indicator(start)
            masked_in = base * region[None, :]
            return base - masked_in, masked_in, None, base
        if start <= t <= end - 1:
            # Eq. (7): true-world mass survives only if it continues into
            # the region at time t+1; otherwise it falls back.
            region = self._region_indicator(t + 1)
            masked_in = base * region[None, :]
            return base, None, base - masked_in, masked_in
        # Eq. (8)
        return base, None, None, base

    def lifted_matrix(self, t: int) -> np.ndarray:
        """The lifted ``M_t`` (2m x 2m) applied between timestamps t, t+1."""
        ff, ft, tf, tt = self.transition_blocks(t)
        m = self.n_states
        lifted = np.zeros((2 * m, 2 * m), dtype=np.float64)
        if ff is not None:
            lifted[:m, :m] = ff
        if ft is not None:
            lifted[:m, m:] = ft
        if tf is not None:
            lifted[m:, :m] = tf
        if tt is not None:
            lifted[m:, m:] = tt
        return lifted

    def propagate_front(self, front: np.ndarray, t: int) -> np.ndarray:
        """Right-multiply a ``(k, 2m)`` front matrix by the lifted ``M_t``.

        Exploits the block structure (at most three non-zero m x m blocks)
        so the cost is 2-3 m^3 products instead of a dense 2m x 2m one.
        """
        m = self.n_states
        if front.ndim != 2 or front.shape[1] != 2 * m:
            raise EventError(
                f"front must have {2 * m} columns, got shape {front.shape}"
            )
        ff, ft, tf, tt = self.transition_blocks(t)
        f0, f1 = front[:, :m], front[:, m:]
        # Write each gemm straight into the output halves: no 1MB-scale
        # zero fill, and at most one temporary per half (only when two
        # blocks feed it) instead of one per product.
        out = np.empty_like(front)
        left, right = out[:, :m], out[:, m:]
        if ff is not None:
            np.matmul(f0, ff, out=left)
            if tf is not None:
                left += f1 @ tf
        elif tf is not None:
            np.matmul(f1, tf, out=left)
        else:
            left[:] = 0.0
        if ft is not None:
            np.matmul(f0, ft, out=right)
            if tt is not None:
                right += f1 @ tt
        elif tt is not None:
            np.matmul(f1, tt, out=right)
        else:
            right[:] = 0.0
        return out

    # ------------------------------------------------------------------
    # initial lift (paper: [pi, 0]; extension for start == 1)
    # ------------------------------------------------------------------
    def initial_lift_matrix(self) -> np.ndarray:
        """``L`` (m x 2m) with ``lifted initial = pi @ L``.

        For ``start > 1`` this is ``[I, 0]`` (the paper's ``[pi, 0]``).
        For ``start == 1`` the initial location itself decides the world:
        ``L = [diag(1 - s_start), diag(s_start)]``.
        """
        m = self.n_states
        lift = np.zeros((m, 2 * m), dtype=np.float64)
        if self.start > 1:
            lift[:, :m] = np.eye(m)
        else:
            region = self._region_indicator(self.start)
            lift[:, :m] = np.diag(1.0 - region)
            lift[:, m:] = np.diag(region)
        return lift

    def lift_initial(self, pi) -> np.ndarray:
        """The lifted initial distribution (length 2m)."""
        dist = check_probability_vector(pi, "initial distribution")
        if dist.size != self.n_states:
            raise EventError(
                f"initial distribution has {dist.size} entries, map has "
                f"{self.n_states} cells"
            )
        return dist @ self.initial_lift_matrix()

    def collapse(self, lifted_vector) -> np.ndarray:
        """Collapse a lifted column vector ``v`` to pi-space.

        Returns the ``m``-vector ``L @ v`` so that
        ``lifted_pi . v == pi . collapse(v)`` -- the form Theorem IV.1's
        quadratic conditions need.
        """
        v = np.asarray(lifted_vector, dtype=np.float64).ravel()
        if v.size != 2 * self.n_states:
            raise EventError(
                f"lifted vector has {v.size} entries, expected {2 * self.n_states}"
            )
        return self.initial_lift_matrix() @ v

    # ------------------------------------------------------------------
    # prior (Lemma III.1)
    # ------------------------------------------------------------------
    def tail_vectors(self) -> np.ndarray:
        """``tail_t = prod_{i=t}^{end-1} M_i @ [0,1]^T`` for t = 1..end.

        Row index ``t-1`` holds ``tail_t`` (length 2m); ``tail_end`` is the
        bare true-world selector.  These are the suffix products Lemma
        III.2 appends to the forward state, computed once by a backward
        recurrence in O(end * m^2).
        """
        if self._tails is None:
            end = self.end
            m2 = 2 * self.n_states
            tails = np.empty((end, m2), dtype=np.float64)
            tails[end - 1] = self.true_selector()
            for t in range(end - 1, 0, -1):
                tails[t - 1] = self.lifted_matrix(t) @ tails[t]
            tails.setflags(write=False)
            self._tails = tails
        return self._tails

    def prior_vector(self) -> np.ndarray:
        """Collapsed ``a``: ``a[i] = Pr(EVENT | u_1 = s_i)`` (length m).

        Lemma III.1 in pi-free form: ``Pr(EVENT) = pi . prior_vector()``.
        """
        return self.collapse(self.tail_vectors()[0])

    def prior_probability(self, pi) -> float:
        """Lemma III.1: ``Pr(EVENT)`` under initial distribution ``pi``."""
        dist = check_probability_vector(pi, "initial distribution")
        if dist.size != self.n_states:
            raise EventError(
                f"initial distribution has {dist.size} entries, map has "
                f"{self.n_states} cells"
            )
        return float(dist @ self.prior_vector())
