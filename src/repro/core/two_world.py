"""The two-possible-world lifted Markov chain (Section III-B).

The user's ``m``-state chain is lifted to ``2m`` states: indices
``0..m-1`` form the *false world* (EVENT is false so far) and ``m..2m-1``
the *true world*.  The lifted transition matrices (Eqs. 3-8) re-route
probability mass between the worlds so that, after the event window, the
total mass in the true world *is* ``Pr(EVENT)`` (Lemma III.1):

* PRESENCE: mass entering the region during the window is captured by the
  true world and kept there forever (Eq. 4); outside the window both
  worlds evolve independently (Eq. 5).
* PATTERN: the split happens at the window start (Eq. 6); inside the
  window, true-world mass falls back to the false world unless it keeps
  following the pattern's regions (Eq. 7).

Boundary extension (documented in DESIGN.md §5): the paper's construction
assumes ``start > 1`` so the split is performed by transition matrix
``M_{start-1}``.  When ``start == 1`` the membership of the *initial*
location decides the worlds, so the initial distribution itself is split:
``[pi * (1-s), pi * s]`` instead of ``[pi, 0]``.  Both cases are captured
by the *initial lift matrix* ``L`` (m x 2m) with ``lifted_pi = pi @ L``.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from .._validation import check_probability_vector, check_timestamp
from ..errors import EventError
from ..events.events import PatternEvent, PresenceEvent, SpatiotemporalEvent
from ..markov.transition import TimeVaryingChain, TransitionMatrix

try:  # scipy ships with the library, but the sparse path degrades cleanly
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - exercised only on scipy-less hosts
    _scipy_sparse = None


def _as_chain(chain) -> TimeVaryingChain:
    if isinstance(chain, TimeVaryingChain):
        return chain
    if isinstance(chain, TransitionMatrix):
        return TimeVaryingChain.homogeneous(chain)
    return TimeVaryingChain.homogeneous(TransitionMatrix(np.asarray(chain)))


# ----------------------------------------------------------------------
# sparse front propagation: routing policy + observability
# ----------------------------------------------------------------------

#: Environment override for sparse front propagation: ``auto`` (density
#: heuristic + ``ChainSpec``/``TransitionMatrix`` hints), ``always``,
#: ``never``.  Routing is resolved once per model at construction, so
#: every propagation through one model takes the same code path -- set
#: it uniformly across a fleet (sparse and dense matmuls agree only to
#: a few ulps, and mixed routing would make replicas drift).
SPARSE_ENV = "REPRO_SPARSE_FRONT"

#: ``auto`` routes a chain sparse when its densest matrix has at most
#: this non-zero fraction...
_SPARSE_MAX_DENSITY = 1.0 / 16.0

#: ...and the map has at least this many cells.  Below it, dense gemms
#: on the whole block are faster than any CSR traversal (measured: the
#: crossover for banded chains sits between m=64 and m=144 at the
#: engine's front shapes).
_SPARSE_MIN_STATES = 128

_front_lock = threading.Lock()
_front_counts = {
    "sparse_models": 0,
    "dense_models": 0,
    "sparse_matmuls": 0,
    "dense_matmuls": 0,
    "csr_hits": 0,
    "csr_misses": 0,
}


def _count_front(**deltas: int) -> None:
    with _front_lock:
        for key, delta in deltas.items():
            _front_counts[key] += delta


def front_stats() -> dict:
    """Front-propagation observability snapshot.

    ``sparse_models`` / ``dense_models`` count :class:`TwoWorldModel`
    constructions by routing decision; ``sparse_matmuls`` /
    ``dense_matmuls`` tally individual block products; ``csr_hits`` /
    ``csr_misses`` measure the per-timestamp CSR block cache.  Feeds
    the ``solver`` section of the service ``stats`` op.
    """
    with _front_lock:
        snapshot = dict(_front_counts)
    snapshot["scipy_available"] = _scipy_sparse is not None
    snapshot["mode"] = os.environ.get(SPARSE_ENV) or "auto"
    return snapshot


def _reset_front_stats() -> None:
    """Zero the front-propagation counters (tests only)."""
    with _front_lock:
        for key in _front_counts:
            _front_counts[key] = 0


def _resolve_sparse_routing(
    chain: TimeVaryingChain, sparse: bool | None
) -> bool:
    """Decide a model's propagation backend, once, at construction.

    Precedence: ``$REPRO_SPARSE_FRONT`` (``always``/``never``), then the
    explicit ``sparse`` argument, then the chain's
    :attr:`~repro.markov.transition.TransitionMatrix.sparse_hint`, then
    the density x size crossover heuristic.  Sparse routing additionally
    requires scipy; without it every request degrades to dense.

    The decision is deliberately *per model*, not per call: batched
    propagation (``prepare_many``) stacks many fronts into one matmul
    and relies on producing bit-identical rows to solo propagation,
    which holds within either backend but not across them (dense BLAS
    and CSR traversal accumulate in different orders, ~ulps apart).
    """
    if _scipy_sparse is None:
        return False
    mode = os.environ.get(SPARSE_ENV) or "auto"
    if mode not in ("auto", "always", "never"):
        raise EventError(
            f"{SPARSE_ENV} must be 'auto', 'always' or 'never', got {mode!r}"
        )
    if mode == "never":
        return False
    if mode == "always":
        return True
    if sparse is None:
        sparse = chain.sparse_hint
    if sparse is not None:
        return bool(sparse)
    return (
        chain.n_states >= _SPARSE_MIN_STATES
        and chain.max_density <= _SPARSE_MAX_DENSITY
    )


class TwoWorldModel:
    """Lifted chain for one PRESENCE or PATTERN event.

    Parameters
    ----------
    chain:
        The mobility model (:class:`TransitionMatrix`, raw array, or
        :class:`TimeVaryingChain`).
    event:
        A :class:`PresenceEvent` or :class:`PatternEvent` on the same map.
    horizon:
        The release horizon ``T``; must cover the event window.
    sparse:
        Front-propagation routing: ``True`` forces CSR matmuls,
        ``False`` forces dense gemms, ``None`` (default) defers to the
        chain's hint and the density crossover heuristic.  Overridden
        either way by ``$REPRO_SPARSE_FRONT=always|never``.
    """

    def __init__(
        self,
        chain,
        event: SpatiotemporalEvent,
        horizon: int,
        *,
        sparse: bool | None = None,
    ):
        self._chain = _as_chain(chain)
        if not isinstance(event, (PresenceEvent, PatternEvent)):
            raise EventError(
                "TwoWorldModel supports PRESENCE and PATTERN events; use "
                "repro.core.AutomatonModel for arbitrary expressions"
            )
        if event.n_cells != self._chain.n_states:
            raise EventError(
                f"event is on {event.n_cells} cells, chain has "
                f"{self._chain.n_states} states"
            )
        self._event = event
        self._horizon = check_timestamp(horizon, name="horizon")
        if event.end > self._horizon:
            raise EventError(
                f"event ends at t={event.end}, beyond horizon T={self._horizon}"
            )
        self._tails: np.ndarray | None = None
        self._sparse = _resolve_sparse_routing(self._chain, sparse)
        # Transposed-CSR forms of the lifted blocks, keyed by timestamp;
        # populated lazily by the sparse propagation path.
        self._csr_cache: dict[int, tuple] = {}
        _count_front(
            **{("sparse_models" if self._sparse else "dense_models"): 1}
        )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def sparse_routing(self) -> bool:
        """Whether front propagation goes through CSR matmuls."""
        return self._sparse
    @property
    def chain(self) -> TimeVaryingChain:
        """The underlying mobility model."""
        return self._chain

    @property
    def event(self) -> SpatiotemporalEvent:
        """The protected event."""
        return self._event

    @property
    def n_states(self) -> int:
        """Number of map cells ``m``."""
        return self._chain.n_states

    @property
    def horizon(self) -> int:
        """Release horizon ``T``."""
        return self._horizon

    @property
    def start(self) -> int:
        """Event window start."""
        return self._event.start

    @property
    def end(self) -> int:
        """Event window end."""
        return self._event.end

    def true_selector(self) -> np.ndarray:
        """The paper's ``[0, 1]`` vector: 1 on the true world."""
        m = self.n_states
        sel = np.zeros(2 * m, dtype=np.float64)
        sel[m:] = 1.0
        return sel

    # ------------------------------------------------------------------
    # lifted matrices (Eqs. 3-8)
    # ------------------------------------------------------------------
    def _region_indicator(self, t: int) -> np.ndarray:
        return self._event.region_at(t).indicator()

    def transition_blocks(
        self, t: int
    ) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None, np.ndarray | None]:
        """The four m x m blocks ``(ff, ft, tf, tt)`` of the lifted ``M_t``.

        Block layout follows Eq. (3): ``ff`` = false world to false world,
        ``ft`` = false to true, ``tf`` = true to false, ``tt`` = true to
        true.  Structurally-zero blocks are returned as ``None`` so hot
        paths can skip the corresponding matrix products.
        """
        check_timestamp(t, name="t")
        base = self._chain.array_at(t)
        start, end = self.start, self.end

        if isinstance(self._event, PresenceEvent):
            if start - 1 <= t <= end - 1:
                # Eq. (4): transitions into the region at time t+1 move to
                # the true world; the true world absorbs.
                region = self._region_indicator(max(t + 1, start))
                masked_in = base * region[None, :]
                return base - masked_in, masked_in, None, base
            # Eq. (5): independent evolution in both worlds.
            return base, None, None, base

        if t == start - 1:
            # Eq. (6): the split into worlds, by membership at `start`.
            region = self._region_indicator(start)
            masked_in = base * region[None, :]
            return base - masked_in, masked_in, None, base
        if start <= t <= end - 1:
            # Eq. (7): true-world mass survives only if it continues into
            # the region at time t+1; otherwise it falls back.
            region = self._region_indicator(t + 1)
            masked_in = base * region[None, :]
            return base, None, base - masked_in, masked_in
        # Eq. (8)
        return base, None, None, base

    def lifted_matrix(self, t: int) -> np.ndarray:
        """The lifted ``M_t`` (2m x 2m) applied between timestamps t, t+1."""
        ff, ft, tf, tt = self.transition_blocks(t)
        m = self.n_states
        lifted = np.zeros((2 * m, 2 * m), dtype=np.float64)
        if ff is not None:
            lifted[:m, :m] = ff
        if ft is not None:
            lifted[:m, m:] = ft
        if tf is not None:
            lifted[m:, :m] = tf
        if tt is not None:
            lifted[m:, m:] = tt
        return lifted

    def _csr_blocks(self, t: int) -> tuple:
        """Transposed-CSR forms of ``transition_blocks(t)``, cached by t.

        Stored transposed because the sparse path computes each output
        half as ``(block.T @ front_half.T).T``: sparse-times-dense hits
        scipy's fast ``csr_matmat`` row loop, whereas dense-times-sparse
        goes through a far slower per-column path.  The cache holds at
        most ``horizon`` entries per model, each a few ``nnz``-sized
        arrays -- negligible next to the dense chain matrix itself.
        """
        cached = self._csr_cache.get(t)
        if cached is not None:
            _count_front(csr_hits=1)
            return cached
        _count_front(csr_misses=1)
        built = tuple(
            None
            if block is None
            else _scipy_sparse.csr_array(np.ascontiguousarray(block.T))
            for block in self.transition_blocks(t)
        )
        self._csr_cache[t] = built
        return built

    def propagate_front(self, front: np.ndarray, t: int) -> np.ndarray:
        """Right-multiply a ``(k, 2m)`` front matrix by the lifted ``M_t``.

        Exploits the block structure (at most three non-zero m x m blocks)
        so the cost is 2-3 m^3 products instead of a dense 2m x 2m one.
        Sparse-routed models (see :attr:`sparse_routing`) run the block
        products as CSR matmuls instead; the two backends agree to a few
        ulps (different accumulation orders), which is why the routing is
        fixed per model rather than chosen per call.
        """
        m = self.n_states
        if front.ndim != 2 or front.shape[1] != 2 * m:
            raise EventError(
                f"front must have {2 * m} columns, got shape {front.shape}"
            )
        if self._sparse:
            return self._propagate_front_sparse(front, t)
        ff, ft, tf, tt = self.transition_blocks(t)
        f0, f1 = front[:, :m], front[:, m:]
        # Write each gemm straight into the output halves: no 1MB-scale
        # zero fill, and at most one temporary per half (only when two
        # blocks feed it) instead of one per product.
        out = np.empty_like(front)
        left, right = out[:, :m], out[:, m:]
        gemms = 0
        if ff is not None:
            np.matmul(f0, ff, out=left)
            gemms += 1
            if tf is not None:
                left += f1 @ tf
                gemms += 1
        elif tf is not None:
            np.matmul(f1, tf, out=left)
            gemms += 1
        else:
            left[:] = 0.0
        if ft is not None:
            np.matmul(f0, ft, out=right)
            gemms += 1
            if tt is not None:
                right += f1 @ tt
                gemms += 1
        elif tt is not None:
            np.matmul(f1, tt, out=right)
            gemms += 1
        else:
            right[:] = 0.0
        _count_front(dense_matmuls=gemms)
        return out

    def _propagate_front_sparse(self, front: np.ndarray, t: int) -> np.ndarray:
        """CSR form of :meth:`propagate_front`'s block products.

        Works on transposed halves (``(m, k)``): scipy's
        sparse-times-dense kernel accumulates each output element along
        a CSR row in a fixed order independent of ``k``, so stacked
        fronts (``prepare_many``) still produce bit-identical rows to
        solo propagation -- the same row-independence the dense path's
        gemms provide.
        """
        m = self.n_states
        ffT, ftT, tfT, ttT = self._csr_blocks(t)
        f0t = np.ascontiguousarray(front[:, :m].T)
        f1t = np.ascontiguousarray(front[:, m:].T)
        out = np.empty_like(front)
        matmuls = 0
        if ffT is not None:
            leftT = ffT @ f0t
            matmuls += 1
            if tfT is not None:
                leftT += tfT @ f1t
                matmuls += 1
        elif tfT is not None:
            leftT = tfT @ f1t
            matmuls += 1
        else:
            leftT = None
        if ftT is not None:
            rightT = ftT @ f0t
            matmuls += 1
            if ttT is not None:
                rightT += ttT @ f1t
                matmuls += 1
        elif ttT is not None:
            rightT = ttT @ f1t
            matmuls += 1
        else:
            rightT = None
        if leftT is None:
            out[:, :m] = 0.0
        else:
            np.copyto(out[:, :m], leftT.T)
        if rightT is None:
            out[:, m:] = 0.0
        else:
            np.copyto(out[:, m:], rightT.T)
        _count_front(sparse_matmuls=matmuls)
        return out

    # ------------------------------------------------------------------
    # initial lift (paper: [pi, 0]; extension for start == 1)
    # ------------------------------------------------------------------
    def initial_lift_matrix(self) -> np.ndarray:
        """``L`` (m x 2m) with ``lifted initial = pi @ L``.

        For ``start > 1`` this is ``[I, 0]`` (the paper's ``[pi, 0]``).
        For ``start == 1`` the initial location itself decides the world:
        ``L = [diag(1 - s_start), diag(s_start)]``.
        """
        m = self.n_states
        lift = np.zeros((m, 2 * m), dtype=np.float64)
        if self.start > 1:
            lift[:, :m] = np.eye(m)
        else:
            region = self._region_indicator(self.start)
            lift[:, :m] = np.diag(1.0 - region)
            lift[:, m:] = np.diag(region)
        return lift

    def lift_initial(self, pi) -> np.ndarray:
        """The lifted initial distribution (length 2m)."""
        dist = check_probability_vector(pi, "initial distribution")
        if dist.size != self.n_states:
            raise EventError(
                f"initial distribution has {dist.size} entries, map has "
                f"{self.n_states} cells"
            )
        return dist @ self.initial_lift_matrix()

    def collapse(self, lifted_vector) -> np.ndarray:
        """Collapse a lifted column vector ``v`` to pi-space.

        Returns the ``m``-vector ``L @ v`` so that
        ``lifted_pi . v == pi . collapse(v)`` -- the form Theorem IV.1's
        quadratic conditions need.
        """
        v = np.asarray(lifted_vector, dtype=np.float64).ravel()
        if v.size != 2 * self.n_states:
            raise EventError(
                f"lifted vector has {v.size} entries, expected {2 * self.n_states}"
            )
        return self.initial_lift_matrix() @ v

    # ------------------------------------------------------------------
    # prior (Lemma III.1)
    # ------------------------------------------------------------------
    def tail_vectors(self) -> np.ndarray:
        """``tail_t = prod_{i=t}^{end-1} M_i @ [0,1]^T`` for t = 1..end.

        Row index ``t-1`` holds ``tail_t`` (length 2m); ``tail_end`` is the
        bare true-world selector.  These are the suffix products Lemma
        III.2 appends to the forward state, computed once by a backward
        recurrence in O(end * m^2).
        """
        if self._tails is None:
            end = self.end
            m2 = 2 * self.n_states
            tails = np.empty((end, m2), dtype=np.float64)
            tails[end - 1] = self.true_selector()
            for t in range(end - 1, 0, -1):
                tails[t - 1] = self.lifted_matrix(t) @ tails[t]
            tails.setflags(write=False)
            self._tails = tails
        return self._tails

    def prior_vector(self) -> np.ndarray:
        """Collapsed ``a``: ``a[i] = Pr(EVENT | u_1 = s_i)`` (length m).

        Lemma III.1 in pi-free form: ``Pr(EVENT) = pi . prior_vector()``.
        """
        return self.collapse(self.tail_vectors()[0])

    def prior_probability(self, pi) -> float:
        """Lemma III.1: ``Pr(EVENT)`` under initial distribution ``pi``."""
        dist = check_probability_vector(pi, "initial distribution")
        if dist.size != self.n_states:
            raise EventError(
                f"initial distribution has {dist.size} entries, map has "
                f"{self.n_states} cells"
            )
        return float(dist @ self.prior_vector())
