"""Loader/builder for the compiled solver kernel (``_kernels.c``).

The native kernel is a plain C shared library spoken to over ctypes --
deliberately *not* a CPython extension module, so it needs no Python
headers, builds with any C compiler in well under a second, and its
absence can never break an import.  Resolution order:

1. a prebuilt library shipped next to this file (``_kernels_c*.so`` /
   ``.dylib`` / ``.dll``), produced by ``python setup.py build_native``
   or any packaging step that ran it;
2. a cached build under ``$REPRO_NATIVE_CACHE`` (default
   ``~/.cache/repro-native``), keyed by a digest of the C source, the
   compiler command and the kernel ABI version -- editing the source
   invalidates the cache automatically;
3. a fresh compile with ``$CC`` (default ``cc``) into that cache.

Every step is best-effort: on any failure (no compiler, read-only
filesystem, broken toolchain) the loader records the reason and the
solver transparently uses the NumPy path.  ``REPRO_NATIVE_DISABLE=1``
short-circuits the whole machinery, which is how CI's no-compiler job
guarantees it exercises the fallback.

Bit-identity note: the compile line pins ``-ffp-contract=off`` so the
compiler cannot fuse multiply-adds; the kernel's contract with the
NumPy path is exact IEEE-754 equality, and FMA contraction is the one
optimization that would silently break it.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

import numpy as np

#: Must match ``ro_kernel_abi_version()`` in ``_kernels.c``.
KERNEL_ABI_VERSION = 1

#: Flags shared by the lazy build and ``setup.py build_native``.
#: ``-ffp-contract=off`` is load-bearing (see module docstring).
BUILD_FLAGS = (
    "-O3",
    "-fPIC",
    "-shared",
    "-ffp-contract=off",
    "-fno-math-errno",
    "-fvisibility=hidden",
)

_SOURCE = Path(__file__).with_name("_kernels.c")

_lock = threading.Lock()
_loaded = False
_lib: ctypes.CDLL | None = None
_detail: dict = {"state": "unloaded", "path": None, "error": None}

_I64 = ctypes.c_int64
_F64P = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_I64P = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_U8P = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")


def _shared_suffix() -> str:
    if sys.platform == "darwin":
        return ".dylib"
    if sys.platform in ("win32", "cygwin"):
        return ".dll"
    return ".so"


def _compiler() -> str:
    return os.environ.get("CC") or "cc"


def _source_digest() -> str:
    payload = b"|".join(
        (
            _SOURCE.read_bytes(),
            _compiler().encode(),
            " ".join(BUILD_FLAGS).encode(),
            str(KERNEL_ABI_VERSION).encode(),
        )
    )
    return hashlib.blake2b(payload, digest_size=12).hexdigest()


def _prebuilt_candidates() -> list[Path]:
    here = _SOURCE.parent
    return sorted(here.glob("_kernels_c*" + _shared_suffix()))


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-native"


def compile_kernel(output: Path) -> None:
    """Compile ``_kernels.c`` into ``output`` (raises on failure).

    Shared by the lazy loader and ``setup.py build_native`` so both
    produce byte-compatible libraries from one flag set.  The compile
    goes to a unique temporary file first and is moved into place
    atomically, so concurrent builders (shard workers starting
    together) can race without corrupting the cache.
    """
    output.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        suffix=_shared_suffix(), prefix=".build-", dir=str(output.parent)
    )
    os.close(fd)
    try:
        command = [
            _compiler(),
            *BUILD_FLAGS,
            "-o",
            tmp,
            str(_SOURCE),
            "-lm",
        ]
        proc = subprocess.run(
            command, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{' '.join(command)} failed with code {proc.returncode}: "
                f"{(proc.stderr or proc.stdout).strip()[:500]}"
            )
        os.replace(tmp, output)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.ro_kernel_abi_version.restype = _I64
    lib.ro_kernel_abi_version.argtypes = ()
    abi = int(lib.ro_kernel_abi_version())
    if abi != KERNEL_ABI_VERSION:
        raise RuntimeError(
            f"kernel ABI v{abi} does not match expected v{KERNEL_ABI_VERSION}"
        )
    lib.ro_solve_rank_one_stack.restype = ctypes.c_int
    lib.ro_solve_rank_one_stack.argtypes = (
        _F64P,  # U
        _F64P,  # V
        _F64P,  # W
        _F64P,  # ev scratch
        _I64,  # K
        _I64,  # m
        ctypes.c_double,  # tol
        _I64,  # work_limit (<0: none)
        ctypes.c_double,  # time_limit_s (<0: none)
        ctypes.c_int32,  # exhaustive
        _I64,  # block_rows
        _F64P,  # best_value out
        _I64P,  # best_vertex out
        _I64P,  # best_edge_i out
        _I64P,  # best_edge_j out
        _I64P,  # n_evals out
        _U8P,  # exhausted out
    )
    return lib


def _load_locked() -> None:
    global _loaded, _lib, _detail
    _loaded = True
    if os.environ.get("REPRO_NATIVE_DISABLE"):
        _detail = {
            "state": "disabled",
            "path": None,
            "error": "REPRO_NATIVE_DISABLE is set",
        }
        return
    errors: list[str] = []
    candidates = list(_prebuilt_candidates())
    cached: Path | None = None
    try:
        cached = _cache_dir() / f"repro_kernels_{_source_digest()}{_shared_suffix()}"
        if cached.exists():
            candidates.append(cached)
    except OSError as error:
        errors.append(f"cache: {error}")
    for path in candidates:
        try:
            _lib = _bind(ctypes.CDLL(str(path)))
            _detail = {"state": "native", "path": str(path), "error": None}
            return
        except (OSError, RuntimeError) as error:
            errors.append(f"{path.name}: {error}")
    if cached is not None:
        try:
            compile_kernel(cached)
            _lib = _bind(ctypes.CDLL(str(cached)))
            _detail = {"state": "native", "path": str(cached), "error": None}
            return
        except (OSError, RuntimeError, subprocess.SubprocessError) as error:
            errors.append(f"compile: {error}")
    _lib = None
    _detail = {
        "state": "unavailable",
        "path": None,
        "error": "; ".join(errors) or "no build target",
    }


def load_kernel() -> ctypes.CDLL | None:
    """The bound native library, or ``None`` when unavailable.

    Thread-safe and memoized; the first call may compile.  Call
    :func:`reset` (tests only) to force re-resolution after changing
    the environment.
    """
    if not _loaded:
        with _lock:
            if not _loaded:
                _load_locked()
    return _lib


def native_available() -> bool:
    """Whether the compiled kernel can be used in this process."""
    return load_kernel() is not None


def native_detail() -> dict:
    """Loader status for observability: state, library path, error."""
    load_kernel()
    return dict(_detail)


def reset() -> None:
    """Forget the memoized load result (tests / env changes only)."""
    global _loaded, _lib, _detail
    with _lock:
        _loaded = False
        _lib = None
        _detail = {"state": "unloaded", "path": None, "error": None}


def solve_rank_one_stack(
    U: np.ndarray,
    V: np.ndarray,
    W: np.ndarray,
    *,
    tolerance: float,
    work_limit: int | None,
    time_limit_s: float | None,
    exhaustive: bool,
    block_rows: int,
):
    """Run the native kernel over ``(K, m)`` stacks; arrays must be C-contiguous.

    Returns ``(best_value, best_vertex, best_edge_i, best_edge_j,
    n_evals, exhausted)`` -- the same intermediate arrays the NumPy
    kernel produces, so the two share one result-materialization path.
    Raises :class:`RuntimeError` if the kernel is unavailable or
    rejects the arguments (callers are expected to gate on
    :func:`native_available`).
    """
    lib = load_kernel()
    if lib is None:
        raise RuntimeError(f"native kernel unavailable: {_detail['error']}")
    K, m = U.shape
    best_value = np.empty(K, dtype=np.float64)
    best_vertex = np.empty(K, dtype=np.int64)
    best_edge_i = np.empty(K, dtype=np.int64)
    best_edge_j = np.empty(K, dtype=np.int64)
    n_evals = np.empty(K, dtype=np.int64)
    exhausted = np.empty(K, dtype=np.uint8)
    ev_scratch = np.empty(m, dtype=np.float64)
    rc = lib.ro_solve_rank_one_stack(
        U,
        V,
        W,
        ev_scratch,
        K,
        m,
        float(tolerance),
        -1 if work_limit is None else int(work_limit),
        -1.0 if time_limit_s is None else float(time_limit_s),
        1 if exhaustive else 0,
        int(block_rows),
        best_value,
        best_vertex,
        best_edge_i,
        best_edge_j,
        n_evals,
        exhausted,
    )
    if rc != 0:
        raise RuntimeError(f"native kernel rejected the call (rc={rc})")
    return (
        best_value,
        best_vertex,
        best_edge_i,
        best_edge_j,
        n_evals,
        exhausted.astype(bool),
    )
