"""Quadratic-program solver for the Theorem IV.1 conditions.

The paper checks Eqs. (15)/(16) with IBM CPLEX under a wall-clock
threshold and *conservative release*: a location is only released when the
conditions are proven to hold.  This module is the drop-in substitute
(DESIGN.md §4).  It exposes the same trichotomy:

* ``SAFE`` -- the maximum of the condition over the feasible set is
  certified non-positive;
* ``VIOLATED`` -- a feasible ``pi`` with positive value was found;
* ``UNKNOWN`` -- the work/time budget ran out before either certificate
  (PriSTE then treats the candidate as unreleasable, exactly like the
  paper's conservative release).

Exactness.  Every condition the theorem produces is rank-one:
``f(pi) = (pi.u)(pi.v) + pi.w``.  Over the probability simplex the global
maximum of such a function is attained on an *edge* (a pi supported on at
most two coordinates): for any fixed value ``x = pi.u``, maximizing
``f = pi.(x v + w)`` subject to ``pi.u = x, sum(pi) = 1, pi >= 0`` is a
linear program with two equality constraints, whose basic optimal
solutions have at most two non-zero entries; taking ``x`` at the optimum
shows the optimizer itself can be chosen with support <= 2.  On an edge
``pi = lam e_i + (1-lam) e_j`` the objective is a univariate quadratic in
``lam``, maximized in closed form, so enumerating the ``m`` vertices plus
the ``m(m-1)/2`` edges is an *exact* O(m^2) algorithm; on this problem
class the substitute is stronger than a generic QP solver.

Dual-backend architecture.  The enumeration has two interchangeable
implementations behind one dispatch point
(:func:`_solve_rank_one_simplex_stack`):

* the **NumPy kernel** (:func:`_solve_stack_numpy`) packs K conditions
  into ``(K, m)`` coefficient arrays and sweeps ``(K, rows, m)`` blocks
  of the upper-triangular edge set with preallocated scratch buffers --
  always available, no build step;
* the **native kernel** (``_kernels.c`` via :mod:`repro.core.native`)
  runs the same vertex scan + edge sweep as a single fused C pass per
  condition -- no scratch blocks, no masked writes -- which removes the
  per-block NumPy dispatch that dominates small-m batches.

The two are *bit-identical*: statuses, best values, best points,
evaluation counts and the exhausted flag match exactly for every input,
because the C kernel replicates the NumPy kernel's operation order
(every IEEE-754 op individually rounded, FMA contraction disabled), its
NaN/tie-breaking semantics, and its row-blocked evaluation-accounting
schedule.  Selection is ``SolverOptions.kernel`` when set, else the
``REPRO_SOLVER_KERNEL`` environment variable (``auto`` | ``native`` |
``numpy``, default ``auto``: native when loadable, NumPy otherwise).
Because the backends agree bit-for-bit, the choice is *not* part of
:meth:`SolverOptions.fingerprint` -- cached verdicts are portable across
kernels and across hosts with and without a C compiler.

Kernel structure shared by both backends:

* the ``m`` vertex values ``u_i v_i + w_i`` are scanned first in O(m),
  which alone witnesses many violations;
* each edge block only evaluates the *interior* stationary point
  (``f* = f(e_j) - a1^2 / (4 a2)`` where ``a2 < 0`` and
  ``0 < lam* < 1``), since both endpoints are vertices already covered;
* only unordered pairs ``i < j`` are enumerated -- the edge quadratic is
  symmetric under swapping endpoints, so the classic all-ordered-pairs
  sweep does every edge twice;
* a condition whose running best exceeds the tolerance stops early (a
  violation certificate needs no sharper maximum) unless limits are set
  or :attr:`SolverOptions.exhaustive` asks for the true global maximum.

The scalar :func:`maximize_rank_one_simplex` is the K=1 wrapper of the
same kernel, so looping it and calling the batch front end produce
bit-identical statuses, best values and evaluation counts -- the
property the streaming engine's batched verdict pipeline relies on.

The paper's literal box feasible set (``0 <= pi <= 1`` without the sum
constraint) is also supported, via multi-start projected gradient ascent
with an interval-arithmetic upper bound for certification; see
:mod:`repro.core.theorem` for why the simplex is the semantically
consistent default.
"""

from __future__ import annotations

import enum
import os
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive, resolve_rng
from ..errors import SolverError
from . import native as _native
from .theorem import RankOneCondition


class SolverStatus(enum.Enum):
    """Outcome of a condition check."""

    SAFE = "safe"
    VIOLATED = "violated"
    UNKNOWN = "unknown"


#: Valid values for ``SolverOptions.kernel`` / ``REPRO_SOLVER_KERNEL``.
KERNEL_CHOICES = ("auto", "native", "numpy")

#: Environment variable consulted when ``SolverOptions.kernel`` is unset.
KERNEL_ENV = "REPRO_SOLVER_KERNEL"


@dataclass(frozen=True)
class SolverOptions:
    """Configuration of the condition solver.

    Parameters
    ----------
    constraint:
        ``"simplex"`` (default; exact) or ``"box"`` (the paper's literal
        formulation; heuristic, may return UNKNOWN).
    tolerance:
        Values in ``(-tolerance, tolerance]`` count as zero -- guards
        against float noise in long matrix products.
    work_limit:
        Maximum number of vertex/edge evaluations (simplex) or gradient
        steps (box) before giving up with UNKNOWN.  ``None`` = unlimited.
    time_limit_s:
        Wall-clock threshold, the paper's conservative-release knob
        (Table III).  ``None`` = unlimited.
    exhaustive:
        When True the simplex path always enumerates every vertex and
        edge (subject to the limits), so ``best_value`` is the global
        maximum even for violated conditions.  The default False stops
        at the first violation certificate, which is all a verdict
        needs; statuses are identical either way.
    n_starts:
        Multi-start count for the box path.
    seed:
        RNG seed for the box path's random starts.
    kernel:
        Simplex-kernel backend: ``"auto"`` (native when available, else
        NumPy), ``"native"`` (compiled kernel, error if unavailable) or
        ``"numpy"``.  ``None`` (default) defers to the
        ``REPRO_SOLVER_KERNEL`` environment variable, itself defaulting
        to ``auto``.  The backends are bit-identical, so this knob
        changes speed only, never answers.
    """

    constraint: str = "simplex"
    tolerance: float = 1e-9
    work_limit: int | None = None
    time_limit_s: float | None = None
    exhaustive: bool = False
    n_starts: int = 16
    seed: int = 0
    kernel: str | None = None

    def __post_init__(self) -> None:
        if self.constraint not in ("simplex", "box"):
            raise SolverError(
                f"constraint must be 'simplex' or 'box', got {self.constraint!r}"
            )
        check_positive(self.tolerance, "tolerance")
        if self.work_limit is not None and self.work_limit < 1:
            raise SolverError(f"work_limit must be >= 1, got {self.work_limit!r}")
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise SolverError(
                f"time_limit_s must be positive, got {self.time_limit_s!r}"
            )
        if self.kernel is not None and self.kernel not in KERNEL_CHOICES:
            raise SolverError(
                f"kernel must be one of {KERNEL_CHOICES}, got {self.kernel!r}"
            )

    def fingerprint(self) -> bytes:
        """Stable byte identity of everything that can change a verdict.

        Used by :class:`repro.engine.VerdictCache` to namespace cached
        verdicts: two option sets with equal fingerprints produce the
        same SAFE/VIOLATED answers (UNKNOWN additionally depends on
        wall-clock when ``time_limit_s`` is set; see the cache docs).
        ``kernel`` is deliberately excluded: the native and NumPy
        backends are bit-identical, so the choice cannot change a
        verdict and cached entries stay valid across kernels.
        """
        return repr(
            (
                self.constraint,
                self.tolerance,
                self.work_limit,
                self.time_limit_s,
                self.exhaustive,
                self.n_starts,
                self.seed,
            )
        ).encode()


@dataclass
class SolveResult:
    """Result of maximizing one condition over the feasible set."""

    status: SolverStatus
    best_value: float
    best_point: np.ndarray | None
    n_evaluations: int
    elapsed_s: float
    exhausted: bool = field(default=True)

    @property
    def is_safe(self) -> bool:
        """Whether the condition is certified to hold."""
        return self.status is SolverStatus.SAFE


# ----------------------------------------------------------------------
# kernel selection + accounting
# ----------------------------------------------------------------------

_kernel_lock = threading.Lock()
_kernel_counts = {
    "native_calls": 0,
    "native_conditions": 0,
    "numpy_calls": 0,
    "numpy_conditions": 0,
}


def _count_kernel(kind: str, conditions: int) -> None:
    with _kernel_lock:
        _kernel_counts[f"{kind}_calls"] += 1
        _kernel_counts[f"{kind}_conditions"] += conditions


def _reset_kernel_stats() -> None:
    """Zero the kernel-use counters (tests only)."""
    with _kernel_lock:
        for key in _kernel_counts:
            _kernel_counts[key] = 0


def resolve_kernel(options: SolverOptions | None = None) -> str:
    """The backend a simplex solve would use right now: native or numpy.

    Resolution order: ``options.kernel`` when set, else
    ``$REPRO_SOLVER_KERNEL``, else ``auto``.  ``auto`` picks the native
    kernel when it loads (compiling it on first use if needed) and the
    NumPy kernel otherwise; ``native`` raises :class:`SolverError` when
    the compiled kernel cannot be loaded, rather than silently serving
    from a different backend than the operator pinned.
    """
    requested = options.kernel if options is not None else None
    if requested is None:
        requested = os.environ.get(KERNEL_ENV) or "auto"
    if requested not in KERNEL_CHOICES:
        raise SolverError(
            f"{KERNEL_ENV} must be one of {KERNEL_CHOICES}, got {requested!r}"
        )
    if requested == "numpy":
        return "numpy"
    if _native.native_available():
        return "native"
    if requested == "native":
        detail = _native.native_detail()
        raise SolverError(
            f"kernel='native' requested but the compiled kernel is "
            f"unavailable: {detail['error']}"
        )
    return "numpy"


def kernel_stats() -> dict:
    """Kernel observability snapshot: selection, loader state, use counts.

    Feeds the ``solver`` section of the service ``stats`` op and the
    ``repro_solver_kernel_info`` gauge.
    """
    detail = _native.native_detail()
    with _kernel_lock:
        counts = dict(_kernel_counts)
    try:
        default = resolve_kernel()
    except SolverError:
        default = "invalid"
    return {
        "kernel": default,
        "env": os.environ.get(KERNEL_ENV) or "auto",
        "native_state": detail["state"],
        "native_path": detail["path"],
        "native_error": detail["error"],
        **counts,
    }


# ----------------------------------------------------------------------
# exact simplex path: the stacked vertex + upper-triangle edge kernel
# ----------------------------------------------------------------------

#: Target elements per (rows x columns) edge block of one condition.
#: Small enough that the no-limits early exit fires after a fraction of
#: the triangle; large enough that per-block numpy overhead stays low.
_BLOCK_ELEMENTS = 8_192

#: Target elements per scratch buffer; bounds the conditions-per-chunk
#: so the six float + two bool buffers stay cache-friendly at any K.
_SCRATCH_ELEMENTS = 131_072

#: Conditions per kernel call when :func:`check_conditions_batch` honors
#: the sequential front end's stop-at-first-violation contract.
_SHORT_CIRCUIT_CHUNK = 16


def _triangle_block_evals(r0: int, r1: int, m: int) -> int:
    """Unordered pairs (i, j), i < j, contributed by rows r0 <= i < r1."""
    nb = r1 - r0
    return nb * (m - 1) - (r0 + r1 - 1) * nb // 2


def _edge_block_rows(m: int, work_limit: int | None) -> int:
    """Row-block size of the edge sweep -- one schedule for both kernels.

    The native kernel takes this as an argument so its per-block
    evaluation accounting (counts accrue before the limit and early-exit
    checks) lands on exactly the same boundaries as the NumPy kernel's.
    """
    bs = max(1, min(m - 1, _BLOCK_ELEMENTS // m))
    if work_limit is not None:
        bs = max(1, min(bs, work_limit // m))
    return bs


def _solve_stack_numpy(
    U: np.ndarray, V: np.ndarray, W: np.ndarray, options: SolverOptions, t0: float
):
    """NumPy backend: blocked sweep over ``(K, rows, m)`` scratch buffers.

    Returns the raw per-condition arrays ``(best_value, best_vertex,
    best_edge_i, best_edge_j, n_evals, exhausted)``; result
    materialization is shared with the native backend.
    """
    K, m = U.shape
    tol = options.tolerance
    work_limit = options.work_limit
    time_limit = options.time_limit_s
    limited = work_limit is not None or time_limit is not None
    # With limits set, keep enumerating after a violation so the work
    # accounting of the conservative-release threshold stays faithful;
    # without limits a violation certificate ends the condition's sweep
    # (unless the caller asked for the exhaustive global maximum).
    allow_exit = not limited and not options.exhaustive

    # Vertex scan: f(e_j) = u_j v_j + w_j, all K conditions in two passes.
    ev = U * V + W
    best_value = ev.max(axis=1)
    best_vertex = ev.argmax(axis=1)
    best_edge_i = np.full(K, -1, dtype=np.int64)
    best_edge_j = np.full(K, -1, dtype=np.int64)
    n_evals = np.full(K, m, dtype=np.int64)
    exhausted = np.ones(K, dtype=bool)
    done = np.zeros(K, dtype=bool)
    if allow_exit:
        done |= best_value > tol

    if m > 1 and not done.all():
        bs = _edge_block_rows(m, work_limit)
        width = m - 1
        chunk_k = max(1, min(K, _SCRATCH_ELEMENTS // (bs * width)))
        shape = (chunk_k, bs, width)
        s_du = np.empty(shape)
        s_dv = np.empty(shape)
        s_a2 = np.empty(shape)
        s_a1 = np.empty(shape)
        s_t = np.empty(shape)
        s_val = np.empty(shape)
        s_m1 = np.empty(shape, dtype=bool)
        s_m2 = np.empty(shape, dtype=bool)
        # Rows below the first of a block see columns j <= i; this mask
        # kills that lower-triangular corner (row-relative ri >= 1 is
        # invalid at column offsets jj <= ri - 1).
        corner = (
            np.tril(np.ones((bs - 1, min(bs - 1, width)), dtype=bool))
            if bs > 1
            else None
        )

        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for c0 in range(0, K, chunk_k):
                chunk = np.arange(c0, min(K, c0 + chunk_k))
                alive = chunk[~done[chunk]]
                for r0 in range(0, m - 1, bs):
                    if alive.size == 0:
                        break
                    if time_limit is not None:
                        if time.perf_counter() - t0 > time_limit:
                            exhausted[alive] = False
                            alive = alive[:0]
                            break
                    if work_limit is not None:
                        over = n_evals[alive] >= work_limit
                        if over.any():
                            exhausted[alive[over]] = False
                            alive = alive[~over]
                            if alive.size == 0:
                                break
                    r1 = min(m - 1, r0 + bs)
                    nb = r1 - r0
                    w = m - 1 - r0
                    A = alive.size
                    Ua, Va, Wa = U[alive], V[alive], W[alive]
                    ui = Ua[:, r0:r1, None]
                    vi = Va[:, r0:r1, None]
                    wi = Wa[:, r0:r1, None]
                    uj = Ua[:, None, r0 + 1 :]
                    vj = Va[:, None, r0 + 1 :]
                    wj = Wa[:, None, r0 + 1 :]
                    du = np.subtract(ui, uj, out=s_du[:A, :nb, :w])
                    dv = np.subtract(vi, vj, out=s_dv[:A, :nb, :w])
                    a2 = np.multiply(du, dv, out=s_a2[:A, :nb, :w])
                    a1 = np.multiply(vj, du, out=s_a1[:A, :nb, :w])
                    t = np.multiply(uj, dv, out=s_t[:A, :nb, :w])
                    np.add(a1, t, out=a1)
                    np.subtract(wi, wj, out=t)
                    np.add(a1, t, out=a1)
                    # Interior stationary point exists iff the quadratic
                    # is concave (a2 < 0) and 0 < lam* < 1, which without
                    # division is a1 > 0 and a1 + 2 a2 < 0.
                    mask = np.less(a2, 0.0, out=s_m1[:A, :nb, :w])
                    m2 = np.greater(a1, 0.0, out=s_m2[:A, :nb, :w])
                    np.logical_and(mask, m2, out=mask)
                    np.multiply(a2, 2.0, out=t)
                    np.add(t, a1, out=t)
                    np.less(t, 0.0, out=m2)
                    np.logical_and(mask, m2, out=mask)
                    # f(lam*) = f(e_j) - a1^2 / (4 a2)
                    val = np.multiply(a1, a1, out=s_val[:A, :nb, :w])
                    np.multiply(a2, 4.0, out=t)
                    np.divide(val, t, out=val)
                    np.subtract(ev[alive][:, None, r0 + 1 :], val, out=val)
                    np.logical_not(mask, out=mask)
                    np.copyto(val, -np.inf, where=mask)
                    if nb > 1:
                        cw = min(nb - 1, w)
                        np.copyto(
                            val[:, 1:nb, :cw], -np.inf, where=corner[: nb - 1, :cw]
                        )
                    n_evals[alive] += _triangle_block_evals(r0, r1, m)
                    block_best = val.max(axis=(1, 2))
                    improved = block_best > best_value[alive]
                    for pos in np.flatnonzero(improved):
                        k = int(alive[pos])
                        flat = int(np.argmax(val[pos]))
                        ri, jj = divmod(flat, w)
                        best_value[k] = float(block_best[pos])
                        best_edge_i[k] = r0 + ri
                        best_edge_j[k] = r0 + 1 + jj
                    if allow_exit:
                        exiting = best_value[alive] > tol
                        if exiting.any():
                            done[alive[exiting]] = True
                            alive = alive[~exiting]

    return best_value, best_vertex, best_edge_i, best_edge_j, n_evals, exhausted


def _solve_stack_native(
    U: np.ndarray, V: np.ndarray, W: np.ndarray, options: SolverOptions
):
    """Native backend: one fused C pass per condition (same schedule)."""
    m = U.shape[1]
    return _native.solve_rank_one_stack(
        np.ascontiguousarray(U, dtype=np.float64),
        np.ascontiguousarray(V, dtype=np.float64),
        np.ascontiguousarray(W, dtype=np.float64),
        tolerance=options.tolerance,
        work_limit=options.work_limit,
        time_limit_s=options.time_limit_s,
        exhaustive=options.exhaustive,
        block_rows=_edge_block_rows(m, options.work_limit),
    )


def _solve_rank_one_simplex_stack(
    U: np.ndarray, V: np.ndarray, W: np.ndarray, options: SolverOptions
) -> list[SolveResult]:
    """Exact simplex maximization of K stacked rank-one conditions.

    ``U``, ``V``, ``W`` are ``(K, m)``; returns one :class:`SolveResult`
    per row.  Every condition follows the identical vertex-scan /
    block-schedule / early-exit path a K=1 call would take, which is
    what makes the batch bit-identical to the scalar loop -- and the
    native and NumPy backends implement that path bit-identically, so
    kernel selection never changes an output.
    """
    K, m = U.shape
    t0 = time.perf_counter()
    kernel = resolve_kernel(options)
    if kernel == "native":
        arrays = _solve_stack_native(U, V, W, options)
    else:
        arrays = _solve_stack_numpy(U, V, W, options, t0)
    _count_kernel(kernel, K)
    best_value, best_vertex, best_edge_i, best_edge_j, n_evals, exhausted = arrays
    tol = options.tolerance

    elapsed = time.perf_counter() - t0
    results: list[SolveResult] = []
    for k in range(K):
        value = float(best_value[k])
        point = np.zeros(m, dtype=np.float64)
        i = int(best_edge_i[k])
        if i < 0:
            point[int(best_vertex[k])] = 1.0
        else:
            j = int(best_edge_j[k])
            du_k = U[k, i] - U[k, j]
            dv_k = V[k, i] - V[k, j]
            a2_k = du_k * dv_k
            a1_k = V[k, j] * du_k + U[k, j] * dv_k + (W[k, i] - W[k, j])
            lam = -a1_k / (2.0 * a2_k)
            point[i] = lam
            point[j] = 1.0 - lam
        if value > tol:
            status = SolverStatus.VIOLATED
        elif exhausted[k]:
            status = SolverStatus.SAFE
        else:
            status = SolverStatus.UNKNOWN
        results.append(
            SolveResult(
                status=status,
                best_value=value,
                best_point=point,
                n_evaluations=int(n_evals[k]),
                elapsed_s=elapsed,
                exhausted=bool(exhausted[k]),
            )
        )
    return results


def maximize_rank_one_simplex(
    condition: RankOneCondition, options: SolverOptions
) -> SolveResult:
    """Exact maximization of one rank-one condition over the simplex.

    The K=1 wrapper of the stacked kernel: scans the vertices, then
    enumerates the upper-triangular edge set in row blocks, respecting
    ``work_limit`` (vertex/edge evaluations) and ``time_limit_s``.  If
    limits end the enumeration early, the result is VIOLATED when a
    positive value was already found and UNKNOWN otherwise.
    """
    return _solve_rank_one_simplex_stack(
        condition.u[None, :], condition.v[None, :], condition.w[None, :], options
    )[0]


# ----------------------------------------------------------------------
# heuristic box path (paper-literal feasible set)
# ----------------------------------------------------------------------
def _box_upper_bound(condition: RankOneCondition) -> float:
    """Interval-arithmetic bound on ``(pi.u)(pi.v) + pi.w`` over the box."""
    u, v, w = condition.u, condition.v, condition.w
    u_range = (float(np.minimum(u, 0).sum()), float(np.maximum(u, 0).sum()))
    v_range = (float(np.minimum(v, 0).sum()), float(np.maximum(v, 0).sum()))
    corners = [x * y for x in u_range for y in v_range]
    return max(corners) + float(np.maximum(w, 0).sum())


def maximize_rank_one_box(
    condition: RankOneCondition, options: SolverOptions
) -> SolveResult:
    """Heuristic maximization over the box ``[0, 1]^m``.

    Projected gradient ascent from deterministic and random starts; SAFE
    only when the interval bound certifies non-positivity, VIOLATED when
    any ascent finds a positive value, otherwise UNKNOWN.  Kept for
    comparison with the paper's literal formulation.
    """
    t0 = time.perf_counter()
    tol = options.tolerance
    u, v, w = condition.u, condition.v, condition.w
    m = condition.n

    bound = _box_upper_bound(condition)
    if bound <= tol:
        return SolveResult(
            status=SolverStatus.SAFE,
            best_value=bound,
            best_point=None,
            n_evaluations=1,
            elapsed_s=time.perf_counter() - t0,
        )

    rng = resolve_rng(options.seed)

    def objective(pi: np.ndarray) -> float:
        return float((pi @ u) * (pi @ v) + pi @ w)

    def gradient(pi: np.ndarray) -> np.ndarray:
        return u * float(pi @ v) + v * float(pi @ u) + w

    starts = [
        np.zeros(m),
        np.ones(m),
        (w > 0).astype(np.float64),
        (u * v > 0).astype(np.float64),
    ]
    for _ in range(max(0, options.n_starts - len(starts))):
        starts.append(rng.uniform(size=m).round())

    best_value = -np.inf
    best_point: np.ndarray | None = None
    n_evaluations = 0
    max_steps = options.work_limit or 200
    for start in starts:
        pi = start.astype(np.float64).copy()
        step = 1.0
        value = objective(pi)
        for _ in range(max_steps):
            if options.time_limit_s is not None:
                if time.perf_counter() - t0 > options.time_limit_s:
                    break
            candidate = np.clip(pi + step * gradient(pi), 0.0, 1.0)
            candidate_value = objective(candidate)
            n_evaluations += 1
            if candidate_value > value + 1e-15:
                pi, value = candidate, candidate_value
                step *= 1.2
            else:
                step *= 0.5
                if step < 1e-12:
                    break
        if value > best_value:
            best_value = value
            best_point = pi
        if best_value > tol:
            break

    elapsed = time.perf_counter() - t0
    status = SolverStatus.VIOLATED if best_value > tol else SolverStatus.UNKNOWN
    return SolveResult(
        status=status,
        best_value=float(best_value),
        best_point=best_point,
        n_evaluations=n_evaluations,
        elapsed_s=elapsed,
        exhausted=False,
    )


# ----------------------------------------------------------------------
# front end
# ----------------------------------------------------------------------
def check_condition(
    condition: RankOneCondition, options: SolverOptions | None = None
) -> SolveResult:
    """Check one Theorem IV.1 condition; see :class:`SolverOptions`."""
    options = options or SolverOptions()
    if options.constraint == "simplex":
        return maximize_rank_one_simplex(condition, options)
    return maximize_rank_one_box(condition, options)


def check_conditions(
    conditions, options: SolverOptions | None = None
) -> tuple[SolverStatus, tuple[SolveResult, ...]]:
    """Check several conditions; combined status is the worst individual.

    VIOLATED dominates UNKNOWN dominates SAFE.  Evaluation short-circuits
    on the first violation (PriSTE halves the budget either way).  This
    is the sequential reference; :func:`check_conditions_batch` is the
    drop-in batched form with identical outputs.
    """
    options = options or SolverOptions()
    results: list[SolveResult] = []
    combined = SolverStatus.SAFE
    for condition in conditions:
        result = check_condition(condition, options)
        results.append(result)
        if result.status is SolverStatus.VIOLATED:
            combined = SolverStatus.VIOLATED
            break
        if result.status is SolverStatus.UNKNOWN:
            combined = SolverStatus.UNKNOWN
    return combined, tuple(results)


class _PackScratch:
    """Per-thread grow-only buffers for packing conditions into stacks.

    ``solve_conditions_batch`` runs on every engine step; re-allocating
    three ``(K, m)`` arrays per call (what ``np.stack`` does) is pure
    overhead for small-m sessions that pack the same shapes thousands of
    times.  The flat backing buffers only ever grow, and the views
    handed out are plain C-contiguous prefixes, so both kernels consume
    them directly.  Thread-local because the service steps sessions from
    a thread pool; the views are consumed before the call returns, so
    reuse across calls on one thread is safe.
    """

    __slots__ = ("capacity", "u", "v", "w")

    def __init__(self) -> None:
        self.capacity = 0
        self.u: np.ndarray | None = None
        self.v: np.ndarray | None = None
        self.w: np.ndarray | None = None

    def pack(
        self, conditions: list[RankOneCondition], m: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        K = len(conditions)
        need = K * m
        if need > self.capacity:
            cap = max(need, 4096)
            self.u = np.empty(cap, dtype=np.float64)
            self.v = np.empty(cap, dtype=np.float64)
            self.w = np.empty(cap, dtype=np.float64)
            self.capacity = cap
        U = self.u[:need].reshape(K, m)
        V = self.v[:need].reshape(K, m)
        W = self.w[:need].reshape(K, m)
        for k, condition in enumerate(conditions):
            U[k] = condition.u
            V[k] = condition.v
            W[k] = condition.w
        return U, V, W


_pack_local = threading.local()


def _pack_scratch() -> _PackScratch:
    scratch = getattr(_pack_local, "scratch", None)
    if scratch is None:
        scratch = _PackScratch()
        _pack_local.scratch = scratch
    return scratch


def solve_conditions_batch(
    conditions, options: SolverOptions | None = None
) -> tuple[SolveResult, ...]:
    """Solve every condition of a batch through the stacked kernel.

    No cross-condition short-circuit: all K results come back, each
    bit-identical to what :func:`check_condition` returns for it.  This
    is the primitive the engine's batched verdict pipeline funnels a
    whole calibration round's conditions (many sessions x events x two
    directions) into.

    Conditions of mixed dimension, or box-constrained options, fall back
    to a per-condition loop with unchanged semantics.
    """
    options = options or SolverOptions()
    conditions = list(conditions)
    if not conditions:
        return ()
    sizes = {condition.n for condition in conditions}
    if options.constraint != "simplex" or len(sizes) != 1:
        return tuple(check_condition(condition, options) for condition in conditions)
    U, V, W = _pack_scratch().pack(conditions, sizes.pop())
    return tuple(_solve_rank_one_simplex_stack(U, V, W, options))


def check_conditions_batch(
    conditions, options: SolverOptions | None = None
) -> tuple[SolverStatus, tuple[SolveResult, ...]]:
    """Batched drop-in for :func:`check_conditions`.

    Packs the conditions into the stacked kernel in chunks of
    ``_SHORT_CIRCUIT_CHUNK``, honouring the sequential contract: the
    returned tuple stops at (and includes) the first VIOLATED condition,
    later conditions are never reported, and every reported result is
    bit-identical to the scalar loop's.  Conditions sharing a chunk with
    the first violation may be solved speculatively; their results are
    discarded, so the only difference from the loop is wasted work, not
    output.
    """
    options = options or SolverOptions()
    conditions = list(conditions)
    results: list[SolveResult] = []
    combined = SolverStatus.SAFE
    for start in range(0, len(conditions), _SHORT_CIRCUIT_CHUNK):
        chunk = conditions[start : start + _SHORT_CIRCUIT_CHUNK]
        for result in solve_conditions_batch(chunk, options):
            results.append(result)
            if result.status is SolverStatus.VIOLATED:
                return SolverStatus.VIOLATED, tuple(results)
            if result.status is SolverStatus.UNKNOWN:
                combined = SolverStatus.UNKNOWN
    return combined, tuple(results)
