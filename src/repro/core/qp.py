"""Quadratic-program solver for the Theorem IV.1 conditions.

The paper checks Eqs. (15)/(16) with IBM CPLEX under a wall-clock
threshold and *conservative release*: a location is only released when the
conditions are proven to hold.  This module is the drop-in substitute
(DESIGN.md §4).  It exposes the same trichotomy:

* ``SAFE`` -- the maximum of the condition over the feasible set is
  certified non-positive;
* ``VIOLATED`` -- a feasible ``pi`` with positive value was found;
* ``UNKNOWN`` -- the work/time budget ran out before either certificate
  (PriSTE then treats the candidate as unreleasable, exactly like the
  paper's conservative release).

Exactness.  Every condition the theorem produces is rank-one:
``f(pi) = (pi.u)(pi.v) + pi.w``.  Over the probability simplex the global
maximum of such a function is attained on an *edge* (a pi supported on at
most two coordinates): for any fixed value ``x = pi.u``, maximizing
``f = pi.(x v + w)`` subject to ``pi.u = x, sum(pi) = 1, pi >= 0`` is a
linear program with two equality constraints, whose basic optimal
solutions have at most two non-zero entries; taking ``x`` at the optimum
shows the optimizer itself can be chosen with support <= 2.  On an edge
``pi = lam e_i + (1-lam) e_j`` the objective is a univariate quadratic in
``lam`` -- maximized in closed form.  Enumerating all m(m-1)/2 edges plus
the m vertices is therefore an *exact*, embarrassingly vectorizable
O(m^2) algorithm; on this problem class the substitute is stronger than a
generic QP solver.

The paper's literal box feasible set (``0 <= pi <= 1`` without the sum
constraint) is also supported, via multi-start projected gradient ascent
with an interval-arithmetic upper bound for certification; see
:mod:`repro.core.theorem` for why the simplex is the semantically
consistent default.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive, resolve_rng
from ..errors import SolverError
from .theorem import RankOneCondition


class SolverStatus(enum.Enum):
    """Outcome of a condition check."""

    SAFE = "safe"
    VIOLATED = "violated"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class SolverOptions:
    """Configuration of the condition solver.

    Parameters
    ----------
    constraint:
        ``"simplex"`` (default; exact) or ``"box"`` (the paper's literal
        formulation; heuristic, may return UNKNOWN).
    tolerance:
        Values in ``(-tolerance, tolerance]`` count as zero -- guards
        against float noise in long matrix products.
    work_limit:
        Maximum number of edge evaluations (simplex) or gradient steps
        (box) before giving up with UNKNOWN.  ``None`` = unlimited.
    time_limit_s:
        Wall-clock threshold, the paper's conservative-release knob
        (Table III).  ``None`` = unlimited.
    n_starts:
        Multi-start count for the box path.
    seed:
        RNG seed for the box path's random starts.
    """

    constraint: str = "simplex"
    tolerance: float = 1e-9
    work_limit: int | None = None
    time_limit_s: float | None = None
    n_starts: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.constraint not in ("simplex", "box"):
            raise SolverError(
                f"constraint must be 'simplex' or 'box', got {self.constraint!r}"
            )
        check_positive(self.tolerance, "tolerance")
        if self.work_limit is not None and self.work_limit < 1:
            raise SolverError(f"work_limit must be >= 1, got {self.work_limit!r}")
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise SolverError(
                f"time_limit_s must be positive, got {self.time_limit_s!r}"
            )

    def fingerprint(self) -> bytes:
        """Stable byte identity of everything that can change a verdict.

        Used by :class:`repro.engine.VerdictCache` to namespace cached
        verdicts: two option sets with equal fingerprints produce the
        same SAFE/VIOLATED answers (UNKNOWN additionally depends on
        wall-clock when ``time_limit_s`` is set; see the cache docs).
        """
        return repr(
            (
                self.constraint,
                self.tolerance,
                self.work_limit,
                self.time_limit_s,
                self.n_starts,
                self.seed,
            )
        ).encode()


@dataclass
class SolveResult:
    """Result of maximizing one condition over the feasible set."""

    status: SolverStatus
    best_value: float
    best_point: np.ndarray | None
    n_evaluations: int
    elapsed_s: float
    exhausted: bool = field(default=True)

    @property
    def is_safe(self) -> bool:
        """Whether the condition is certified to hold."""
        return self.status is SolverStatus.SAFE


# ----------------------------------------------------------------------
# exact simplex path
# ----------------------------------------------------------------------
def _edge_maxima_block(
    u: np.ndarray, v: np.ndarray, w: np.ndarray, rows: np.ndarray
) -> tuple[float, tuple[int, int, float]]:
    """Best edge value over pairs (i, j) for i in ``rows``, all j.

    On edge ``pi = lam e_i + (1 - lam) e_j``::

        f(lam) = A2 lam^2 + A1 lam + A0
        A2 = (u_i - u_j)(v_i - v_j)
        A1 = u_j (v_i - v_j) + v_j (u_i - u_j) + (w_i - w_j)
        A0 = u_j v_j + w_j

    Candidates: lam = 0, 1 and the stationary point when A2 < 0.
    """
    ui = u[rows][:, None]
    vi = v[rows][:, None]
    wi = w[rows][:, None]
    uj = u[None, :]
    vj = v[None, :]
    wj = w[None, :]
    du = ui - uj
    dv = vi - vj
    a2 = du * dv
    a1 = uj * dv + vj * du + (wi - wj)
    a0 = np.broadcast_to(uj * vj + wj, a2.shape)

    best = np.array(a0, dtype=np.float64)  # lam = 0  (pi = e_j)
    np.maximum(best, a2 + a1 + a0, out=best)  # lam = 1  (pi = e_i)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        lam_star = np.where(a2 < 0, -a1 / (2.0 * a2), np.nan)
    interior = (lam_star > 0.0) & (lam_star < 1.0)
    if np.any(interior):
        lam_c = np.where(interior, lam_star, 0.0)
        f_c = a2 * lam_c * lam_c + a1 * lam_c + a0
        np.maximum(best, np.where(interior, f_c, -np.inf), out=best)

    flat = int(np.argmax(best))
    r, j = divmod(flat, best.shape[1])
    i = int(rows[r])
    value = float(best[r, j])
    # Recover the maximizing lambda for the winning pair.
    candidates = [(float(a0[r, j]), 0.0), (float(a2[r, j] + a1[r, j] + a0[r, j]), 1.0)]
    if a2[r, j] < 0:
        with np.errstate(over="ignore", divide="ignore"):
            ls = float(-a1[r, j] / (2.0 * a2[r, j]))
        if 0.0 < ls < 1.0:
            candidates.append(
                (float(a2[r, j] * ls * ls + a1[r, j] * ls + a0[r, j]), ls)
            )
    _, lam = max(candidates)
    return value, (i, int(j), lam)


def maximize_rank_one_simplex(
    condition: RankOneCondition, options: SolverOptions
) -> SolveResult:
    """Exact maximization of a rank-one condition over the simplex.

    Enumerates all edges in row blocks, respecting ``work_limit`` (edge
    evaluations) and ``time_limit_s``.  If limits end the enumeration
    early, the result is VIOLATED when a positive value was already found
    and UNKNOWN otherwise.
    """
    u, v, w = condition.u, condition.v, condition.w
    m = condition.n
    t0 = time.perf_counter()
    tol = options.tolerance

    best_value = -np.inf
    best_point: np.ndarray | None = None
    n_evaluations = 0
    exhausted = True

    # Row blocks keep peak memory at block * m floats; with a work limit
    # the block shrinks so the limit is respected at row granularity.
    block = max(1, min(m, 65_536 // max(1, m)))
    if options.work_limit is not None:
        block = max(1, min(block, options.work_limit // max(1, m)))
    rows_done = 0
    while rows_done < m:
        if options.time_limit_s is not None:
            if time.perf_counter() - t0 > options.time_limit_s:
                exhausted = False
                break
        if options.work_limit is not None and n_evaluations >= options.work_limit:
            exhausted = False
            break
        rows = np.arange(rows_done, min(m, rows_done + block))
        value, (i, j, lam) = _edge_maxima_block(u, v, w, rows)
        n_evaluations += rows.size * m
        if value > best_value:
            best_value = value
            point = np.zeros(m, dtype=np.float64)
            if i == j:
                point[i] = 1.0
            else:
                point[i] = lam
                point[j] += 1.0 - lam
            best_point = point
        rows_done += rows.size
        if best_value > tol and options.work_limit is None and options.time_limit_s is None:
            # A violation certificate is enough; exhausting the rest only
            # sharpens best_value.  Keep going only when limits are set so
            # Table III's work accounting stays faithful.
            break

    elapsed = time.perf_counter() - t0
    if best_value > tol:
        status = SolverStatus.VIOLATED
    elif exhausted:
        status = SolverStatus.SAFE
    else:
        status = SolverStatus.UNKNOWN
    return SolveResult(
        status=status,
        best_value=float(best_value),
        best_point=best_point,
        n_evaluations=n_evaluations,
        elapsed_s=elapsed,
        exhausted=exhausted,
    )


# ----------------------------------------------------------------------
# heuristic box path (paper-literal feasible set)
# ----------------------------------------------------------------------
def _box_upper_bound(condition: RankOneCondition) -> float:
    """Interval-arithmetic bound on ``(pi.u)(pi.v) + pi.w`` over the box."""
    u, v, w = condition.u, condition.v, condition.w
    u_range = (float(np.minimum(u, 0).sum()), float(np.maximum(u, 0).sum()))
    v_range = (float(np.minimum(v, 0).sum()), float(np.maximum(v, 0).sum()))
    corners = [x * y for x in u_range for y in v_range]
    return max(corners) + float(np.maximum(w, 0).sum())


def maximize_rank_one_box(
    condition: RankOneCondition, options: SolverOptions
) -> SolveResult:
    """Heuristic maximization over the box ``[0, 1]^m``.

    Projected gradient ascent from deterministic and random starts; SAFE
    only when the interval bound certifies non-positivity, VIOLATED when
    any ascent finds a positive value, otherwise UNKNOWN.  Kept for
    comparison with the paper's literal formulation.
    """
    t0 = time.perf_counter()
    tol = options.tolerance
    u, v, w = condition.u, condition.v, condition.w
    m = condition.n

    bound = _box_upper_bound(condition)
    if bound <= tol:
        return SolveResult(
            status=SolverStatus.SAFE,
            best_value=bound,
            best_point=None,
            n_evaluations=1,
            elapsed_s=time.perf_counter() - t0,
        )

    rng = resolve_rng(options.seed)

    def objective(pi: np.ndarray) -> float:
        return float((pi @ u) * (pi @ v) + pi @ w)

    def gradient(pi: np.ndarray) -> np.ndarray:
        return u * float(pi @ v) + v * float(pi @ u) + w

    starts = [
        np.zeros(m),
        np.ones(m),
        (w > 0).astype(np.float64),
        (u * v > 0).astype(np.float64),
    ]
    for _ in range(max(0, options.n_starts - len(starts))):
        starts.append(rng.uniform(size=m).round())

    best_value = -np.inf
    best_point: np.ndarray | None = None
    n_evaluations = 0
    max_steps = options.work_limit or 200
    for start in starts:
        pi = start.astype(np.float64).copy()
        step = 1.0
        value = objective(pi)
        for _ in range(max_steps):
            if options.time_limit_s is not None:
                if time.perf_counter() - t0 > options.time_limit_s:
                    break
            candidate = np.clip(pi + step * gradient(pi), 0.0, 1.0)
            candidate_value = objective(candidate)
            n_evaluations += 1
            if candidate_value > value + 1e-15:
                pi, value = candidate, candidate_value
                step *= 1.2
            else:
                step *= 0.5
                if step < 1e-12:
                    break
        if value > best_value:
            best_value = value
            best_point = pi
        if best_value > tol:
            break

    elapsed = time.perf_counter() - t0
    status = SolverStatus.VIOLATED if best_value > tol else SolverStatus.UNKNOWN
    return SolveResult(
        status=status,
        best_value=float(best_value),
        best_point=best_point,
        n_evaluations=n_evaluations,
        elapsed_s=elapsed,
        exhausted=False,
    )


# ----------------------------------------------------------------------
# front end
# ----------------------------------------------------------------------
def check_condition(
    condition: RankOneCondition, options: SolverOptions | None = None
) -> SolveResult:
    """Check one Theorem IV.1 condition; see :class:`SolverOptions`."""
    options = options or SolverOptions()
    if options.constraint == "simplex":
        return maximize_rank_one_simplex(condition, options)
    return maximize_rank_one_box(condition, options)


def check_conditions(
    conditions, options: SolverOptions | None = None
) -> tuple[SolverStatus, tuple[SolveResult, ...]]:
    """Check several conditions; combined status is the worst individual.

    VIOLATED dominates UNKNOWN dominates SAFE.  Evaluation short-circuits
    on the first violation (PriSTE halves the budget either way).
    """
    options = options or SolverOptions()
    results: list[SolveResult] = []
    combined = SolverStatus.SAFE
    for condition in conditions:
        result = check_condition(condition, options)
        results.append(result)
        if result.status is SolverStatus.VIOLATED:
            combined = SolverStatus.VIOLATED
            break
        if result.status is SolverStatus.UNKNOWN:
            combined = SolverStatus.UNKNOWN
    return combined, tuple(results)
