"""Quadratic-program solver for the Theorem IV.1 conditions.

The paper checks Eqs. (15)/(16) with IBM CPLEX under a wall-clock
threshold and *conservative release*: a location is only released when the
conditions are proven to hold.  This module is the drop-in substitute
(DESIGN.md §4).  It exposes the same trichotomy:

* ``SAFE`` -- the maximum of the condition over the feasible set is
  certified non-positive;
* ``VIOLATED`` -- a feasible ``pi`` with positive value was found;
* ``UNKNOWN`` -- the work/time budget ran out before either certificate
  (PriSTE then treats the candidate as unreleasable, exactly like the
  paper's conservative release).

Exactness.  Every condition the theorem produces is rank-one:
``f(pi) = (pi.u)(pi.v) + pi.w``.  Over the probability simplex the global
maximum of such a function is attained on an *edge* (a pi supported on at
most two coordinates): for any fixed value ``x = pi.u``, maximizing
``f = pi.(x v + w)`` subject to ``pi.u = x, sum(pi) = 1, pi >= 0`` is a
linear program with two equality constraints, whose basic optimal
solutions have at most two non-zero entries; taking ``x`` at the optimum
shows the optimizer itself can be chosen with support <= 2.  On an edge
``pi = lam e_i + (1-lam) e_j`` the objective is a univariate quadratic in
``lam``, maximized in closed form, so enumerating the ``m`` vertices plus
the ``m(m-1)/2`` edges is an *exact* O(m^2) algorithm; on this problem
class the substitute is stronger than a generic QP solver.

The enumeration is organised as one *stacked kernel*
(:func:`solve_conditions_batch`) that packs K conditions into ``(K, m)``
coefficient arrays and sweeps ``(K, rows, m)`` blocks of the
upper-triangular edge set with preallocated scratch buffers:

* the ``m`` vertex values ``u_i v_i + w_i`` are scanned first in O(m),
  which alone witnesses many violations;
* each edge block only evaluates the *interior* stationary point
  (``f* = f(e_j) - a1^2 / (4 a2)`` where ``a2 < 0`` and
  ``0 < lam* < 1``), since both endpoints are vertices already covered;
* only unordered pairs ``i < j`` are enumerated -- the edge quadratic is
  symmetric under swapping endpoints, so the classic all-ordered-pairs
  sweep does every edge twice;
* a condition whose running best exceeds the tolerance stops early (a
  violation certificate needs no sharper maximum) unless limits are set
  or :attr:`SolverOptions.exhaustive` asks for the true global maximum.

The scalar :func:`maximize_rank_one_simplex` is the K=1 wrapper of the
same kernel, so looping it and calling the batch front end produce
bit-identical statuses, best values and evaluation counts -- the
property the streaming engine's batched verdict pipeline relies on.

The paper's literal box feasible set (``0 <= pi <= 1`` without the sum
constraint) is also supported, via multi-start projected gradient ascent
with an interval-arithmetic upper bound for certification; see
:mod:`repro.core.theorem` for why the simplex is the semantically
consistent default.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_positive, resolve_rng
from ..errors import SolverError
from .theorem import RankOneCondition


class SolverStatus(enum.Enum):
    """Outcome of a condition check."""

    SAFE = "safe"
    VIOLATED = "violated"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class SolverOptions:
    """Configuration of the condition solver.

    Parameters
    ----------
    constraint:
        ``"simplex"`` (default; exact) or ``"box"`` (the paper's literal
        formulation; heuristic, may return UNKNOWN).
    tolerance:
        Values in ``(-tolerance, tolerance]`` count as zero -- guards
        against float noise in long matrix products.
    work_limit:
        Maximum number of vertex/edge evaluations (simplex) or gradient
        steps (box) before giving up with UNKNOWN.  ``None`` = unlimited.
    time_limit_s:
        Wall-clock threshold, the paper's conservative-release knob
        (Table III).  ``None`` = unlimited.
    exhaustive:
        When True the simplex path always enumerates every vertex and
        edge (subject to the limits), so ``best_value`` is the global
        maximum even for violated conditions.  The default False stops
        at the first violation certificate, which is all a verdict
        needs; statuses are identical either way.
    n_starts:
        Multi-start count for the box path.
    seed:
        RNG seed for the box path's random starts.
    """

    constraint: str = "simplex"
    tolerance: float = 1e-9
    work_limit: int | None = None
    time_limit_s: float | None = None
    exhaustive: bool = False
    n_starts: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.constraint not in ("simplex", "box"):
            raise SolverError(
                f"constraint must be 'simplex' or 'box', got {self.constraint!r}"
            )
        check_positive(self.tolerance, "tolerance")
        if self.work_limit is not None and self.work_limit < 1:
            raise SolverError(f"work_limit must be >= 1, got {self.work_limit!r}")
        if self.time_limit_s is not None and self.time_limit_s <= 0:
            raise SolverError(
                f"time_limit_s must be positive, got {self.time_limit_s!r}"
            )

    def fingerprint(self) -> bytes:
        """Stable byte identity of everything that can change a verdict.

        Used by :class:`repro.engine.VerdictCache` to namespace cached
        verdicts: two option sets with equal fingerprints produce the
        same SAFE/VIOLATED answers (UNKNOWN additionally depends on
        wall-clock when ``time_limit_s`` is set; see the cache docs).
        """
        return repr(
            (
                self.constraint,
                self.tolerance,
                self.work_limit,
                self.time_limit_s,
                self.exhaustive,
                self.n_starts,
                self.seed,
            )
        ).encode()


@dataclass
class SolveResult:
    """Result of maximizing one condition over the feasible set."""

    status: SolverStatus
    best_value: float
    best_point: np.ndarray | None
    n_evaluations: int
    elapsed_s: float
    exhausted: bool = field(default=True)

    @property
    def is_safe(self) -> bool:
        """Whether the condition is certified to hold."""
        return self.status is SolverStatus.SAFE


# ----------------------------------------------------------------------
# exact simplex path: the stacked vertex + upper-triangle edge kernel
# ----------------------------------------------------------------------

#: Target elements per (rows x columns) edge block of one condition.
#: Small enough that the no-limits early exit fires after a fraction of
#: the triangle; large enough that per-block numpy overhead stays low.
_BLOCK_ELEMENTS = 8_192

#: Target elements per scratch buffer; bounds the conditions-per-chunk
#: so the six float + two bool buffers stay cache-friendly at any K.
_SCRATCH_ELEMENTS = 131_072

#: Conditions per kernel call when :func:`check_conditions_batch` honors
#: the sequential front end's stop-at-first-violation contract.
_SHORT_CIRCUIT_CHUNK = 16


def _triangle_block_evals(r0: int, r1: int, m: int) -> int:
    """Unordered pairs (i, j), i < j, contributed by rows r0 <= i < r1."""
    nb = r1 - r0
    return nb * (m - 1) - (r0 + r1 - 1) * nb // 2


def _solve_rank_one_simplex_stack(
    U: np.ndarray, V: np.ndarray, W: np.ndarray, options: SolverOptions
) -> list[SolveResult]:
    """Exact simplex maximization of K stacked rank-one conditions.

    ``U``, ``V``, ``W`` are ``(K, m)``; returns one :class:`SolveResult`
    per row.  Every condition follows the identical vertex-scan /
    block-schedule / early-exit path a K=1 call would take, which is
    what makes the batch bit-identical to the scalar loop.
    """
    K, m = U.shape
    t0 = time.perf_counter()
    tol = options.tolerance
    work_limit = options.work_limit
    time_limit = options.time_limit_s
    limited = work_limit is not None or time_limit is not None
    # With limits set, keep enumerating after a violation so the work
    # accounting of the conservative-release threshold stays faithful;
    # without limits a violation certificate ends the condition's sweep
    # (unless the caller asked for the exhaustive global maximum).
    allow_exit = not limited and not options.exhaustive

    # Vertex scan: f(e_j) = u_j v_j + w_j, all K conditions in two passes.
    ev = U * V + W
    best_value = ev.max(axis=1)
    best_vertex = ev.argmax(axis=1)
    best_edge_i = np.full(K, -1, dtype=np.int64)
    best_edge_j = np.full(K, -1, dtype=np.int64)
    n_evals = np.full(K, m, dtype=np.int64)
    exhausted = np.ones(K, dtype=bool)
    done = np.zeros(K, dtype=bool)
    if allow_exit:
        done |= best_value > tol

    if m > 1 and not done.all():
        bs = max(1, min(m - 1, _BLOCK_ELEMENTS // m))
        if work_limit is not None:
            bs = max(1, min(bs, work_limit // m))
        width = m - 1
        chunk_k = max(1, min(K, _SCRATCH_ELEMENTS // (bs * width)))
        shape = (chunk_k, bs, width)
        s_du = np.empty(shape)
        s_dv = np.empty(shape)
        s_a2 = np.empty(shape)
        s_a1 = np.empty(shape)
        s_t = np.empty(shape)
        s_val = np.empty(shape)
        s_m1 = np.empty(shape, dtype=bool)
        s_m2 = np.empty(shape, dtype=bool)
        # Rows below the first of a block see columns j <= i; this mask
        # kills that lower-triangular corner (row-relative ri >= 1 is
        # invalid at column offsets jj <= ri - 1).
        corner = (
            np.tril(np.ones((bs - 1, min(bs - 1, width)), dtype=bool))
            if bs > 1
            else None
        )

        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            for c0 in range(0, K, chunk_k):
                chunk = np.arange(c0, min(K, c0 + chunk_k))
                alive = chunk[~done[chunk]]
                for r0 in range(0, m - 1, bs):
                    if alive.size == 0:
                        break
                    if time_limit is not None:
                        if time.perf_counter() - t0 > time_limit:
                            exhausted[alive] = False
                            alive = alive[:0]
                            break
                    if work_limit is not None:
                        over = n_evals[alive] >= work_limit
                        if over.any():
                            exhausted[alive[over]] = False
                            alive = alive[~over]
                            if alive.size == 0:
                                break
                    r1 = min(m - 1, r0 + bs)
                    nb = r1 - r0
                    w = m - 1 - r0
                    A = alive.size
                    Ua, Va, Wa = U[alive], V[alive], W[alive]
                    ui = Ua[:, r0:r1, None]
                    vi = Va[:, r0:r1, None]
                    wi = Wa[:, r0:r1, None]
                    uj = Ua[:, None, r0 + 1 :]
                    vj = Va[:, None, r0 + 1 :]
                    wj = Wa[:, None, r0 + 1 :]
                    du = np.subtract(ui, uj, out=s_du[:A, :nb, :w])
                    dv = np.subtract(vi, vj, out=s_dv[:A, :nb, :w])
                    a2 = np.multiply(du, dv, out=s_a2[:A, :nb, :w])
                    a1 = np.multiply(vj, du, out=s_a1[:A, :nb, :w])
                    t = np.multiply(uj, dv, out=s_t[:A, :nb, :w])
                    np.add(a1, t, out=a1)
                    np.subtract(wi, wj, out=t)
                    np.add(a1, t, out=a1)
                    # Interior stationary point exists iff the quadratic
                    # is concave (a2 < 0) and 0 < lam* < 1, which without
                    # division is a1 > 0 and a1 + 2 a2 < 0.
                    mask = np.less(a2, 0.0, out=s_m1[:A, :nb, :w])
                    m2 = np.greater(a1, 0.0, out=s_m2[:A, :nb, :w])
                    np.logical_and(mask, m2, out=mask)
                    np.multiply(a2, 2.0, out=t)
                    np.add(t, a1, out=t)
                    np.less(t, 0.0, out=m2)
                    np.logical_and(mask, m2, out=mask)
                    # f(lam*) = f(e_j) - a1^2 / (4 a2)
                    val = np.multiply(a1, a1, out=s_val[:A, :nb, :w])
                    np.multiply(a2, 4.0, out=t)
                    np.divide(val, t, out=val)
                    np.subtract(ev[alive][:, None, r0 + 1 :], val, out=val)
                    np.logical_not(mask, out=mask)
                    np.copyto(val, -np.inf, where=mask)
                    if nb > 1:
                        cw = min(nb - 1, w)
                        np.copyto(
                            val[:, 1:nb, :cw], -np.inf, where=corner[: nb - 1, :cw]
                        )
                    n_evals[alive] += _triangle_block_evals(r0, r1, m)
                    block_best = val.max(axis=(1, 2))
                    improved = block_best > best_value[alive]
                    for pos in np.flatnonzero(improved):
                        k = int(alive[pos])
                        flat = int(np.argmax(val[pos]))
                        ri, jj = divmod(flat, w)
                        best_value[k] = float(block_best[pos])
                        best_edge_i[k] = r0 + ri
                        best_edge_j[k] = r0 + 1 + jj
                    if allow_exit:
                        exiting = best_value[alive] > tol
                        if exiting.any():
                            done[alive[exiting]] = True
                            alive = alive[~exiting]

    elapsed = time.perf_counter() - t0
    results: list[SolveResult] = []
    for k in range(K):
        value = float(best_value[k])
        point = np.zeros(m, dtype=np.float64)
        i = int(best_edge_i[k])
        if i < 0:
            point[int(best_vertex[k])] = 1.0
        else:
            j = int(best_edge_j[k])
            du_k = U[k, i] - U[k, j]
            dv_k = V[k, i] - V[k, j]
            a2_k = du_k * dv_k
            a1_k = V[k, j] * du_k + U[k, j] * dv_k + (W[k, i] - W[k, j])
            lam = -a1_k / (2.0 * a2_k)
            point[i] = lam
            point[j] = 1.0 - lam
        if value > tol:
            status = SolverStatus.VIOLATED
        elif exhausted[k]:
            status = SolverStatus.SAFE
        else:
            status = SolverStatus.UNKNOWN
        results.append(
            SolveResult(
                status=status,
                best_value=value,
                best_point=point,
                n_evaluations=int(n_evals[k]),
                elapsed_s=elapsed,
                exhausted=bool(exhausted[k]),
            )
        )
    return results


def maximize_rank_one_simplex(
    condition: RankOneCondition, options: SolverOptions
) -> SolveResult:
    """Exact maximization of one rank-one condition over the simplex.

    The K=1 wrapper of the stacked kernel: scans the vertices, then
    enumerates the upper-triangular edge set in row blocks, respecting
    ``work_limit`` (vertex/edge evaluations) and ``time_limit_s``.  If
    limits end the enumeration early, the result is VIOLATED when a
    positive value was already found and UNKNOWN otherwise.
    """
    return _solve_rank_one_simplex_stack(
        condition.u[None, :], condition.v[None, :], condition.w[None, :], options
    )[0]


# ----------------------------------------------------------------------
# heuristic box path (paper-literal feasible set)
# ----------------------------------------------------------------------
def _box_upper_bound(condition: RankOneCondition) -> float:
    """Interval-arithmetic bound on ``(pi.u)(pi.v) + pi.w`` over the box."""
    u, v, w = condition.u, condition.v, condition.w
    u_range = (float(np.minimum(u, 0).sum()), float(np.maximum(u, 0).sum()))
    v_range = (float(np.minimum(v, 0).sum()), float(np.maximum(v, 0).sum()))
    corners = [x * y for x in u_range for y in v_range]
    return max(corners) + float(np.maximum(w, 0).sum())


def maximize_rank_one_box(
    condition: RankOneCondition, options: SolverOptions
) -> SolveResult:
    """Heuristic maximization over the box ``[0, 1]^m``.

    Projected gradient ascent from deterministic and random starts; SAFE
    only when the interval bound certifies non-positivity, VIOLATED when
    any ascent finds a positive value, otherwise UNKNOWN.  Kept for
    comparison with the paper's literal formulation.
    """
    t0 = time.perf_counter()
    tol = options.tolerance
    u, v, w = condition.u, condition.v, condition.w
    m = condition.n

    bound = _box_upper_bound(condition)
    if bound <= tol:
        return SolveResult(
            status=SolverStatus.SAFE,
            best_value=bound,
            best_point=None,
            n_evaluations=1,
            elapsed_s=time.perf_counter() - t0,
        )

    rng = resolve_rng(options.seed)

    def objective(pi: np.ndarray) -> float:
        return float((pi @ u) * (pi @ v) + pi @ w)

    def gradient(pi: np.ndarray) -> np.ndarray:
        return u * float(pi @ v) + v * float(pi @ u) + w

    starts = [
        np.zeros(m),
        np.ones(m),
        (w > 0).astype(np.float64),
        (u * v > 0).astype(np.float64),
    ]
    for _ in range(max(0, options.n_starts - len(starts))):
        starts.append(rng.uniform(size=m).round())

    best_value = -np.inf
    best_point: np.ndarray | None = None
    n_evaluations = 0
    max_steps = options.work_limit or 200
    for start in starts:
        pi = start.astype(np.float64).copy()
        step = 1.0
        value = objective(pi)
        for _ in range(max_steps):
            if options.time_limit_s is not None:
                if time.perf_counter() - t0 > options.time_limit_s:
                    break
            candidate = np.clip(pi + step * gradient(pi), 0.0, 1.0)
            candidate_value = objective(candidate)
            n_evaluations += 1
            if candidate_value > value + 1e-15:
                pi, value = candidate, candidate_value
                step *= 1.2
            else:
                step *= 0.5
                if step < 1e-12:
                    break
        if value > best_value:
            best_value = value
            best_point = pi
        if best_value > tol:
            break

    elapsed = time.perf_counter() - t0
    status = SolverStatus.VIOLATED if best_value > tol else SolverStatus.UNKNOWN
    return SolveResult(
        status=status,
        best_value=float(best_value),
        best_point=best_point,
        n_evaluations=n_evaluations,
        elapsed_s=elapsed,
        exhausted=False,
    )


# ----------------------------------------------------------------------
# front end
# ----------------------------------------------------------------------
def check_condition(
    condition: RankOneCondition, options: SolverOptions | None = None
) -> SolveResult:
    """Check one Theorem IV.1 condition; see :class:`SolverOptions`."""
    options = options or SolverOptions()
    if options.constraint == "simplex":
        return maximize_rank_one_simplex(condition, options)
    return maximize_rank_one_box(condition, options)


def check_conditions(
    conditions, options: SolverOptions | None = None
) -> tuple[SolverStatus, tuple[SolveResult, ...]]:
    """Check several conditions; combined status is the worst individual.

    VIOLATED dominates UNKNOWN dominates SAFE.  Evaluation short-circuits
    on the first violation (PriSTE halves the budget either way).  This
    is the sequential reference; :func:`check_conditions_batch` is the
    drop-in batched form with identical outputs.
    """
    options = options or SolverOptions()
    results: list[SolveResult] = []
    combined = SolverStatus.SAFE
    for condition in conditions:
        result = check_condition(condition, options)
        results.append(result)
        if result.status is SolverStatus.VIOLATED:
            combined = SolverStatus.VIOLATED
            break
        if result.status is SolverStatus.UNKNOWN:
            combined = SolverStatus.UNKNOWN
    return combined, tuple(results)


def solve_conditions_batch(
    conditions, options: SolverOptions | None = None
) -> tuple[SolveResult, ...]:
    """Solve every condition of a batch through the stacked kernel.

    No cross-condition short-circuit: all K results come back, each
    bit-identical to what :func:`check_condition` returns for it.  This
    is the primitive the engine's batched verdict pipeline funnels a
    whole calibration round's conditions (many sessions x events x two
    directions) into.

    Conditions of mixed dimension, or box-constrained options, fall back
    to a per-condition loop with unchanged semantics.
    """
    options = options or SolverOptions()
    conditions = list(conditions)
    if not conditions:
        return ()
    sizes = {condition.n for condition in conditions}
    if options.constraint != "simplex" or len(sizes) != 1:
        return tuple(check_condition(condition, options) for condition in conditions)
    U = np.stack([condition.u for condition in conditions])
    V = np.stack([condition.v for condition in conditions])
    W = np.stack([condition.w for condition in conditions])
    return tuple(_solve_rank_one_simplex_stack(U, V, W, options))


def check_conditions_batch(
    conditions, options: SolverOptions | None = None
) -> tuple[SolverStatus, tuple[SolveResult, ...]]:
    """Batched drop-in for :func:`check_conditions`.

    Packs the conditions into the stacked kernel in chunks of
    ``_SHORT_CIRCUIT_CHUNK``, honouring the sequential contract: the
    returned tuple stops at (and includes) the first VIOLATED condition,
    later conditions are never reported, and every reported result is
    bit-identical to the scalar loop's.  Conditions sharing a chunk with
    the first violation may be solved speculatively; their results are
    discarded, so the only difference from the loop is wasted work, not
    output.
    """
    options = options or SolverOptions()
    conditions = list(conditions)
    results: list[SolveResult] = []
    combined = SolverStatus.SAFE
    for start in range(0, len(conditions), _SHORT_CIRCUIT_CHUNK):
        chunk = conditions[start : start + _SHORT_CIRCUIT_CHUNK]
        for result in solve_conditions_batch(chunk, options):
            results.append(result)
            if result.status is SolverStatus.VIOLATED:
                return SolverStatus.VIOLATED, tuple(results)
            if result.status is SolverStatus.UNKNOWN:
                combined = SolverStatus.UNKNOWN
    return combined, tuple(results)
