"""k-ary randomized response over grid cells.

A classical local-DP mechanism: report the true cell with probability
``e^budget / (e^budget + m - 1)``, otherwise a uniformly random other cell.
It satisfies ``budget``-local differential privacy on the cell domain
(distance-oblivious, unlike planar Laplace).  Included to demonstrate that
the PriSTE framework (Algorithm 1) is agnostic to the underlying LPPM --
any mechanism exposing an emission matrix and a budget can be calibrated.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import MechanismError
from .base import LPPM


class RandomizedResponseMechanism(LPPM):
    """k-RR on ``m`` cells with local-DP budget ``budget`` (natural log)."""

    def __init__(self, n_states: int, budget: float):
        if int(n_states) != n_states or n_states < 2:
            raise MechanismError(
                f"n_states must be an integer >= 2, got {n_states!r}"
            )
        if budget < 0:
            raise MechanismError(f"budget must be >= 0, got {budget!r}")
        self._n_states = int(n_states)
        self._budget = float(budget)

    @property
    def n_states(self) -> int:
        return self._n_states

    @property
    def budget(self) -> float:
        return self._budget

    def with_budget(self, budget: float) -> "RandomizedResponseMechanism":
        return RandomizedResponseMechanism(self._n_states, budget)

    @property
    def truth_probability(self) -> float:
        """Probability of reporting the true cell."""
        expb = math.exp(self._budget)
        return expb / (expb + self._n_states - 1)

    def emission_matrix(self) -> np.ndarray:
        m = self._n_states
        p_true = self.truth_probability
        p_other = (1.0 - p_true) / (m - 1)
        matrix = np.full((m, m), p_other, dtype=np.float64)
        np.fill_diagonal(matrix, p_true)
        return matrix
