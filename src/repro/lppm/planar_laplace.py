"""Planar Laplace mechanism (geo-indistinguishability).

Andres et al. (CCS 2013) achieve alpha-geo-indistinguishability by adding
2-D Laplace noise with density proportional to ``exp(-alpha * d)``.  Two
forms are provided:

* :class:`ContinuousPlanarLaplace` -- the exact continuous sampler (angle
  uniform, radius via the inverse CDF using the Lambert W function), for
  applications releasing raw coordinates.
* :class:`PlanarLaplaceMechanism` -- the grid-discretized emission matrix
  used throughout the paper's quantification:
  ``Pr(o = j | u = i) proportional to exp(-alpha * d(i, j))`` over cells.

The budget ``alpha`` has units 1/km (distances are km), matching the
paper's "alpha-PLM" with alpha in {0.1 ... 5}.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import lambertw

from .._validation import check_positive, resolve_rng
from ..errors import MechanismError
from ..geo.grid import GridMap
from .base import LPPM


def planar_laplace_emission_matrix(grid: GridMap, alpha: float) -> np.ndarray:
    """Discretized planar-Laplace emission matrix on ``grid``.

    ``E[i, j] = exp(-alpha d_ij) / sum_k exp(-alpha d_ik)`` with ``d`` in
    km.  Satisfies alpha-geo-indistinguishability on the discrete domain:
    ``E[i, j] <= exp(alpha d(i, i')) E[i', j]`` for all i, i', j (verified
    in :mod:`repro.lppm.geo_ind` and in tests).

    ``alpha = 0`` degenerates gracefully to the uniform mechanism, which is
    the fixed point of Algorithm 2's halving loop ("when alpha = 0, it
    releases no useful information").
    """
    if alpha < 0:
        raise MechanismError(f"alpha must be >= 0, got {alpha!r}")
    weights = np.exp(-alpha * grid.distance_matrix_km)
    return weights / weights.sum(axis=1, keepdims=True)


class PlanarLaplaceMechanism(LPPM):
    """alpha-PLM on a grid: the paper's default LPPM.

    Parameters
    ----------
    grid:
        The cell map (provides km distances).
    alpha:
        Geo-indistinguishability budget per km.  Strictly speaking alpha=0
        is the uniform limit; it is allowed so the calibration loop's
        convergence argument is realizable.
    """

    def __init__(self, grid: GridMap, alpha: float):
        if alpha < 0:
            raise MechanismError(f"alpha must be >= 0, got {alpha!r}")
        self._grid = grid
        self._alpha = float(alpha)
        self._matrix: np.ndarray | None = None

    @property
    def grid(self) -> GridMap:
        """The underlying map."""
        return self._grid

    @property
    def n_states(self) -> int:
        return self._grid.n_cells

    @property
    def budget(self) -> float:
        return self._alpha

    @property
    def alpha(self) -> float:
        """Alias for :attr:`budget` with the paper's symbol."""
        return self._alpha

    def with_budget(self, budget: float) -> "PlanarLaplaceMechanism":
        return PlanarLaplaceMechanism(self._grid, budget)

    def emission_matrix(self) -> np.ndarray:
        if self._matrix is None:
            self._matrix = planar_laplace_emission_matrix(self._grid, self._alpha)
            self._matrix.setflags(write=False)
        return self._matrix


class ContinuousPlanarLaplace:
    """Exact continuous planar Laplace sampler.

    Draws noise with density ``f(p) = alpha^2 / (2 pi) exp(-alpha |p|)``:
    the angle is uniform and the radius follows the Gamma-like CDF
    ``C(r) = 1 - (1 + alpha r) exp(-alpha r)``, inverted with the
    Lambert W function's -1 branch (Andres et al., Theorem 4.1 of the
    geo-indistinguishability paper).
    """

    def __init__(self, alpha: float):
        self._alpha = check_positive(alpha, "alpha")

    @property
    def alpha(self) -> float:
        """Noise scale (1/km)."""
        return self._alpha

    def inverse_radius_cdf(self, probability: float) -> float:
        """Radius r with ``C(r) = probability``."""
        if not 0.0 <= probability < 1.0:
            raise MechanismError(f"probability must be in [0, 1), got {probability!r}")
        if probability == 0.0:
            return 0.0
        w = lambertw((probability - 1.0) / math.e, k=-1)
        return float(-(1.0 / self._alpha) * (np.real(w) + 1.0))

    def sample_noise(self, rng=None) -> tuple[float, float]:
        """One planar noise vector (dx_km, dy_km)."""
        generator = resolve_rng(rng)
        theta = generator.uniform(0.0, 2.0 * math.pi)
        radius = self.inverse_radius_cdf(generator.uniform())
        return radius * math.cos(theta), radius * math.sin(theta)

    def perturb_point(self, x_km: float, y_km: float, rng=None) -> tuple[float, float]:
        """Perturbed planar coordinates of a point."""
        dx, dy = self.sample_noise(rng)
        return x_km + dx, y_km + dy

    def perturb_cell(self, grid: GridMap, cell: int, rng=None) -> int:
        """Perturb a cell centre and snap the result back to the grid.

        This is the "remapping" variant: sample in the continuous plane,
        then report the nearest cell.  Its emission matrix differs slightly
        from :func:`planar_laplace_emission_matrix`; the discrete matrix is
        what quantification uses, this sampler is for end-to-end demos.
        """
        cx, cy = grid.cell_center_km(cell)
        px, py = self.perturb_point(cx, cy, rng)
        return grid.nearest_cell(px, py)
