"""delta-location set privacy (Xiao & Xiong, CCS 2015) as an LPPM wrapper.

The key idea the paper summarizes in Section IV-D: "hiding the true
location in any impossible locations ... is a lost cause", so the output
domain of the emission matrix is restricted to the *delta-location set* --
the minimum set of cells whose prior probability mass is at least
``1 - delta``.  A larger delta means a weaker (but higher-utility)
guarantee.

Following the paper's case study 2, the underlying mechanism is an
alpha-PLM restricted to the set: probabilities outside the set are
truncated and each row renormalized.  A true location that falls outside
the set is mapped to its nearest in-set *surrogate* cell before
perturbation (Xiao & Xiong's surrogate trick), keeping the emission matrix
well-defined for every input.

The Bayesian posterior update of Eq. (21) closes the loop between released
outputs and the next timestamp's prior.
"""

from __future__ import annotations

import numpy as np

from .._validation import (
    check_emission_matrix,
    check_index,
    check_probability_vector,
    check_unit_interval,
)
from ..errors import MechanismError
from ..geo.grid import GridMap
from .base import LPPM
from .planar_laplace import planar_laplace_emission_matrix


def delta_location_set(prior, delta: float) -> tuple[int, ...]:
    """The minimum set of cells with prior mass >= 1 - delta.

    Cells are added in decreasing prior order until the mass threshold is
    reached; ties broken by cell index for determinism.  ``delta = 0``
    returns every cell with positive prior.
    """
    delta = check_unit_interval(delta, "delta")
    p = check_probability_vector(prior, "prior")
    order = np.lexsort((np.arange(p.size), -p))
    total = 0.0
    chosen: list[int] = []
    for idx in order:
        if p[idx] <= 0.0:
            break
        chosen.append(int(idx))
        total += float(p[idx])
        if total >= 1.0 - delta - 1e-12:
            break
    if not chosen:
        raise MechanismError("prior has no positive mass; delta-location set empty")
    return tuple(sorted(chosen))


def restrict_emission_matrix(
    emission, member_cells: tuple[int, ...], grid: GridMap
) -> np.ndarray:
    """Restrict an ``(m, m)`` emission matrix's outputs to ``member_cells``.

    Outputs outside the set get probability zero and rows renormalize.
    Rows for true locations *outside* the set are replaced by the row of
    the nearest in-set surrogate cell.
    """
    m = grid.n_cells
    matrix = check_emission_matrix(emission, m).copy()
    members = sorted(set(member_cells))
    for cell in members:
        check_index(cell, m, "member cell")
    member_mask = np.zeros(m, dtype=bool)
    member_mask[members] = True

    surrogate = np.arange(m)
    outside = np.nonzero(~member_mask)[0]
    if outside.size:
        sub = grid.distance_matrix_km[np.ix_(outside, members)]
        surrogate[outside] = np.asarray(members)[np.argmin(sub, axis=1)]

    restricted = matrix[surrogate]
    restricted[:, ~member_mask] = 0.0
    row_sums = restricted.sum(axis=1, keepdims=True)
    if np.any(row_sums <= 0):
        raise MechanismError(
            "restriction removed all probability mass from a row; the base "
            "mechanism assigns zero mass to the delta-location set"
        )
    return restricted / row_sums


def posterior_update(prior, emission, output: int) -> np.ndarray:
    """Bayes posterior over the true location given one released output.

    Implements Eq. (21):
    ``p+[i] = Pr(o | u = s_i) p-[i] / sum_j Pr(o | u = s_j) p-[j]``.
    """
    p_minus = check_probability_vector(prior, "prior")
    matrix = check_emission_matrix(emission, p_minus.size)
    out = check_index(output, matrix.shape[1], "output")
    likelihood = matrix[:, out]
    joint = likelihood * p_minus
    total = joint.sum()
    if total <= 0:
        raise MechanismError(
            f"output {out} has zero probability under the prior; cannot update"
        )
    return joint / total


class DeltaLocationSetMechanism(LPPM):
    """alpha-PLM restricted to the delta-location set of a given prior.

    The mechanism is *prior-dependent*: Algorithm 3 reconstructs it at
    every timestamp from the Markov-propagated posterior.  The ``budget``
    is the underlying PLM's alpha, which is what PriSTE halves.
    """

    def __init__(self, grid: GridMap, alpha: float, prior, delta: float):
        if alpha < 0:
            raise MechanismError(f"alpha must be >= 0, got {alpha!r}")
        self._grid = grid
        self._alpha = float(alpha)
        self._prior = check_probability_vector(prior, "prior")
        if self._prior.size != grid.n_cells:
            raise MechanismError(
                f"prior has {self._prior.size} entries, grid has {grid.n_cells} cells"
            )
        self._delta = check_unit_interval(delta, "delta")
        self._members = delta_location_set(self._prior, self._delta)
        self._matrix: np.ndarray | None = None

    @property
    def grid(self) -> GridMap:
        """The underlying map."""
        return self._grid

    @property
    def n_states(self) -> int:
        return self._grid.n_cells

    @property
    def budget(self) -> float:
        return self._alpha

    @property
    def delta(self) -> float:
        """The delta-location set parameter."""
        return self._delta

    @property
    def member_cells(self) -> tuple[int, ...]:
        """Cells of the delta-location set (the restricted output domain)."""
        return self._members

    def with_budget(self, budget: float) -> "DeltaLocationSetMechanism":
        return DeltaLocationSetMechanism(self._grid, budget, self._prior, self._delta)

    def with_prior(self, prior) -> "DeltaLocationSetMechanism":
        """Rebuild the mechanism for a new timestamp's prior."""
        return DeltaLocationSetMechanism(self._grid, self._alpha, prior, self._delta)

    def emission_matrix(self) -> np.ndarray:
        if self._matrix is None:
            base = planar_laplace_emission_matrix(self._grid, self._alpha)
            self._matrix = restrict_emission_matrix(base, self._members, self._grid)
            self._matrix.setflags(write=False)
        return self._matrix

    def posterior(self, output: int) -> np.ndarray:
        """Eq. (21) posterior for this mechanism's own prior."""
        return posterior_update(self._prior, self.emission_matrix(), output)
