"""Geo-indistinguishability verification.

alpha-geo-indistinguishability on a discrete domain requires, for every
pair of true locations ``i, i'`` and every output ``j``::

    Pr(o = j | u = i) <= exp(alpha * d(i, i')) * Pr(o = j | u = i')

These helpers check the property for a given alpha and compute the tightest
alpha a mechanism actually satisfies -- used in tests and to confirm that
Algorithm 2's final released mechanism still satisfies alpha'-geo-ind for
the calibrated alpha' (the paper's Privacy Analysis, Section IV-C).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_emission_matrix, check_non_negative
from ..errors import MechanismError


def _log_ratio_over_distance(emission: np.ndarray, distances: np.ndarray) -> float:
    """Max over (i, i', j) of ``log(E[i,j]/E[i',j]) / d(i, i')``.

    Pairs at zero distance must have identical rows; a violation there
    means no finite alpha works and ``inf`` is returned.
    """
    m = emission.shape[0]
    worst = 0.0
    with np.errstate(divide="ignore"):
        log_e = np.log(emission)
    for i in range(m):
        diff = log_e[i][None, :] - log_e  # (m, n_outputs): log E[i,j] - log E[i',j]
        # Where E[i, j] == 0 the ratio is 0 and never binds; where
        # E[i', j] == 0 but E[i, j] > 0 no finite alpha works.
        finite = np.isfinite(diff)
        impossible = (~finite) & (emission[i][None, :] > 0)
        if np.any(impossible & (distances[i][:, None] == 0)):
            return float("inf")
        for ip in range(m):
            if ip == i:
                continue
            row = diff[ip][finite[ip]]
            if np.any(impossible[ip]):
                if distances[i, ip] == 0:
                    return float("inf")
                # Need exp(alpha d) >= inf -- impossible for finite alpha.
                return float("inf")
            if row.size == 0:
                continue
            peak = float(row.max())
            if peak <= 0:
                continue
            if distances[i, ip] == 0:
                return float("inf")
            worst = max(worst, peak / float(distances[i, ip]))
    return worst


def geo_indistinguishability_level(emission_matrix, distances_km) -> float:
    """The smallest alpha for which the mechanism is alpha-geo-ind.

    Returns ``0.0`` for a constant mechanism (rows identical) and ``inf``
    if some output distinguishes two locations with certainty.
    """
    distances = np.asarray(distances_km, dtype=np.float64)
    if distances.ndim != 2 or distances.shape[0] != distances.shape[1]:
        raise MechanismError(f"distances must be square, got shape {distances.shape}")
    emission = check_emission_matrix(emission_matrix, distances.shape[0])
    return _log_ratio_over_distance(emission, distances)


def verify_geo_indistinguishability(
    emission_matrix, distances_km, alpha: float, rtol: float = 1e-9
) -> bool:
    """Whether the mechanism satisfies alpha-geo-indistinguishability."""
    alpha = check_non_negative(alpha, "alpha")
    level = geo_indistinguishability_level(emission_matrix, distances_km)
    return level <= alpha * (1.0 + rtol) + rtol
