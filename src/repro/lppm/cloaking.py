"""Spatial cloaking: report a coarse block instead of the exact cell.

The oldest LPPM family in the paper's related work (Gruteser & Grunwald's
spatiotemporal cloaking): the map is partitioned into blocks of at least
``k`` cells and the user's block is reported.  Deterministic cloaking
gives k-anonymity against location queries but -- as the PriSTE
quantifier demonstrates -- essentially *no* plausible deniability for
spatiotemporal events whose region aligns with block boundaries, which
is exactly the paper's motivation for event-level privacy.  An optional
``flip_probability`` adds randomized-response-style block noise, turning
it into a calibratable mechanism.

Outputs are block indices, so the emission matrix is rectangular
(``m x n_blocks``); the quantification engine handles non-square
emissions natively.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_unit_interval
from ..errors import MechanismError
from ..geo.grid import GridMap
from .base import LPPM


def grid_blocks(grid: GridMap, block_rows: int, block_cols: int) -> list[tuple[int, ...]]:
    """Partition a grid into rectangular blocks (last ones may be larger).

    Returns one tuple of member cells per block, covering every cell
    exactly once.
    """
    if block_rows < 1 or block_cols < 1:
        raise MechanismError("block dimensions must be >= 1")
    row_edges = list(range(0, grid.n_rows, block_rows))
    col_edges = list(range(0, grid.n_cols, block_cols))
    blocks = []
    for r0 in row_edges:
        r1 = min(grid.n_rows, r0 + block_rows) - 1
        for c0 in col_edges:
            c1 = min(grid.n_cols, c0 + block_cols) - 1
            blocks.append(grid.rectangle_cells((r0, r1), (c0, c1)))
    return blocks


class CloakingMechanism(LPPM):
    """Block-reporting mechanism with optional block-level noise.

    Parameters
    ----------
    grid:
        The map.
    blocks:
        A partition of the cells (e.g. from :func:`grid_blocks`).
    flip_probability:
        Probability of reporting a uniformly random *other* block
        instead of the true one; 0 = deterministic cloaking.
    """

    def __init__(self, grid: GridMap, blocks, flip_probability: float = 0.0):
        flat = [cell for block in blocks for cell in block]
        if sorted(flat) != list(range(grid.n_cells)):
            raise MechanismError("blocks must partition the grid's cells exactly")
        self._grid = grid
        self._blocks = [tuple(block) for block in blocks]
        self._flip = check_unit_interval(flip_probability, "flip_probability")
        if len(self._blocks) < 2 and self._flip > 0:
            raise MechanismError("block noise needs at least two blocks")
        self._block_of = np.empty(grid.n_cells, dtype=np.int64)
        for index, block in enumerate(self._blocks):
            for cell in block:
                self._block_of[cell] = index

    @classmethod
    def k_anonymous(
        cls, grid: GridMap, k: int, flip_probability: float = 0.0
    ) -> "CloakingMechanism":
        """Square-ish blocks of at least ``k`` cells each."""
        if k < 1:
            raise MechanismError(f"k must be >= 1, got {k!r}")
        side = int(np.ceil(np.sqrt(k)))
        mechanism = cls(
            grid,
            grid_blocks(grid, side, side),
            flip_probability=flip_probability,
        )
        smallest = min(len(block) for block in mechanism._blocks)
        if smallest < k:
            raise MechanismError(
                f"grid too small for k={k}: smallest block has {smallest} cells"
            )
        return mechanism

    @property
    def grid(self) -> GridMap:
        """The underlying map."""
        return self._grid

    @property
    def blocks(self) -> list[tuple[int, ...]]:
        """The cloaking partition."""
        return list(self._blocks)

    @property
    def n_states(self) -> int:
        return self._grid.n_cells

    @property
    def n_outputs(self) -> int:
        return len(self._blocks)

    @property
    def budget(self) -> float:
        """Log-ratio budget of the block-level randomized response.

        ``inf`` for deterministic cloaking (flip = 0): no deniability.
        """
        if self._flip == 0.0:
            return float("inf")
        n = len(self._blocks)
        truthful = 1.0 - self._flip
        other = self._flip / (n - 1)
        return float(np.log(truthful / other)) if truthful > other else 0.0

    def with_budget(self, budget: float) -> "CloakingMechanism":
        """Rescale block noise so the block-level log-ratio is ``budget``."""
        if budget < 0:
            raise MechanismError(f"budget must be >= 0, got {budget!r}")
        n = len(self._blocks)
        if n < 2:
            raise MechanismError("cannot rescale a single-block mechanism")
        # truthful / (flip / (n-1)) = e^budget  =>  solve for flip.
        expb = float(np.exp(budget))
        flip = (n - 1) / (expb + n - 1)
        return CloakingMechanism(self._grid, self._blocks, flip_probability=flip)

    def block_of(self, cell: int) -> int:
        """The block index containing ``cell``."""
        return int(self._block_of[int(cell)])

    def emission_matrix(self) -> np.ndarray:
        m = self._grid.n_cells
        n = len(self._blocks)
        matrix = np.zeros((m, n), dtype=np.float64)
        for cell in range(m):
            true_block = self._block_of[cell]
            if self._flip == 0.0:
                matrix[cell, true_block] = 1.0
            else:
                matrix[cell, :] = self._flip / (n - 1)
                matrix[cell, true_block] = 1.0 - self._flip
        return matrix
