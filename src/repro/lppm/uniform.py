"""Uniform mechanism: the alpha -> 0 limit of planar Laplace.

Releases a uniformly random cell regardless of the true location.  It
provides perfect location privacy (and trivially satisfies every
epsilon-spatiotemporal event privacy level), which is why Algorithm 2's
budget-halving loop is guaranteed to terminate.
"""

from __future__ import annotations

import numpy as np

from ..errors import MechanismError
from .base import LPPM


class UniformMechanism(LPPM):
    """Output uniform over all cells, independent of the input."""

    def __init__(self, n_states: int):
        if int(n_states) != n_states or n_states < 1:
            raise MechanismError(f"n_states must be a positive integer, got {n_states!r}")
        self._n_states = int(n_states)

    @property
    def n_states(self) -> int:
        return self._n_states

    @property
    def budget(self) -> float:
        """Always 0: no information about the true location is released."""
        return 0.0

    def with_budget(self, budget: float) -> "UniformMechanism":
        if budget != 0.0:
            raise MechanismError("UniformMechanism only supports budget 0")
        return self

    def emission_matrix(self) -> np.ndarray:
        return np.full(
            (self._n_states, self._n_states), 1.0 / self._n_states, dtype=np.float64
        )
