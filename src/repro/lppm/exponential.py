"""Exponential mechanism over grid cells with a custom score.

A generalization of the discrete planar Laplace: outputs are drawn with
probability proportional to ``exp(budget * score(true, output) / 2)``
for a user-supplied quality score.  With ``score = -distance_km`` this
is (up to the standard 1/2 sensitivity factor) the discrete PLM; other
scores express utility preferences such as snapping to a road network or
to points of interest.  It satisfies ``budget``-DP w.r.t. the score's
sensitivity (max variation across true locations per output).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..errors import MechanismError
from ..geo.grid import GridMap
from .base import LPPM


class ExponentialMechanism(LPPM):
    """Exponential mechanism with an ``(m, n_outputs)`` score matrix.

    Parameters
    ----------
    scores:
        ``scores[i, j]`` is the quality of releasing output ``j`` when
        the true location is cell ``i`` (higher = better).
    budget:
        Privacy budget; 0 degenerates to uniform over outputs.
    """

    def __init__(self, scores, budget: float):
        matrix = as_float_array(scores, "scores")
        if matrix.ndim != 2:
            raise MechanismError(f"scores must be 2-D, got shape {matrix.shape}")
        if budget < 0:
            raise MechanismError(f"budget must be >= 0, got {budget!r}")
        self._scores = matrix
        self._budget = float(budget)

    @classmethod
    def from_distance(cls, grid: GridMap, budget: float) -> "ExponentialMechanism":
        """Distance-scored instance: ``score = -d_km`` (PLM-like)."""
        return cls(-grid.distance_matrix_km, budget)

    @property
    def n_states(self) -> int:
        return self._scores.shape[0]

    @property
    def n_outputs(self) -> int:
        return self._scores.shape[1]

    @property
    def budget(self) -> float:
        return self._budget

    @property
    def sensitivity(self) -> float:
        """Max score variation across true locations, per output."""
        return float((self._scores.max(axis=0) - self._scores.min(axis=0)).max())

    def with_budget(self, budget: float) -> "ExponentialMechanism":
        return ExponentialMechanism(self._scores, budget)

    def emission_matrix(self) -> np.ndarray:
        logits = self._budget * self._scores / 2.0
        logits = logits - logits.max(axis=1, keepdims=True)
        weights = np.exp(logits)
        return weights / weights.sum(axis=1, keepdims=True)
