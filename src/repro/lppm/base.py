"""LPPM interface.

An LPPM is, for quantification purposes, an emission matrix
``E[i, j] = Pr(o = j | u = i)`` over the grid cells; for data release it is
also a sampler.  PriSTE's calibration loop additionally needs to *rescale
the privacy budget* of a mechanism (Algorithm 2 halves alpha until the
event-privacy conditions hold), so mechanisms expose ``with_budget``.

The *mechanism provider* protocol -- which base mechanism the release
loop starts from at each timestamp -- lives in the engine layer; see
:mod:`repro.engine.providers`.
"""

from __future__ import annotations

import abc

import numpy as np

from .._validation import check_emission_matrix, check_index, resolve_rng
from ..errors import MechanismError


class LPPM(abc.ABC):
    """Abstract location privacy preserving mechanism on ``m`` cells."""

    @property
    @abc.abstractmethod
    def n_states(self) -> int:
        """Number of input cells ``m``."""

    @property
    @abc.abstractmethod
    def budget(self) -> float:
        """The mechanism's privacy budget (alpha for PLM; see subclasses).

        PriSTE treats "smaller budget = stronger location privacy = less
        information released" uniformly across mechanisms.
        """

    @abc.abstractmethod
    def with_budget(self, budget: float) -> "LPPM":
        """A copy of this mechanism with a different budget."""

    @abc.abstractmethod
    def emission_matrix(self) -> np.ndarray:
        """``(m, n_outputs)`` row-stochastic matrix ``Pr(o | u)``."""

    # ------------------------------------------------------------------
    # derived behaviour
    # ------------------------------------------------------------------
    @property
    def n_outputs(self) -> int:
        """Size of the output alphabet (defaults to the emission width)."""
        return self.emission_matrix().shape[1]

    def perturb(self, true_cell: int, rng=None) -> int:
        """Sample a perturbed output for ``true_cell``."""
        cell = check_index(true_cell, self.n_states, "true_cell")
        matrix = self.emission_matrix()
        generator = resolve_rng(rng)
        return int(generator.choice(matrix.shape[1], p=matrix[cell]))

    def perturb_many(self, true_cells, rng=None) -> np.ndarray:
        """Vectorized sampling: one perturbed output per input cell.

        Uses inverse-CDF sampling over the emission rows, so it draws a
        different RNG stream than repeated :meth:`perturb` calls --
        intended for bulk load generation (benchmarks, simulators), not
        for reproducing a per-call sampling sequence.
        """
        cells = np.asarray(true_cells, dtype=np.int64)
        if cells.ndim != 1:
            raise MechanismError(
                f"true_cells must be 1-D, got shape {cells.shape}"
            )
        if cells.size and (cells.min() < 0 or cells.max() >= self.n_states):
            raise MechanismError(
                f"true_cells must lie in [0, {self.n_states})"
            )
        generator = resolve_rng(rng)
        cdf = np.cumsum(self.emission_matrix()[cells], axis=1)
        # Normalize so the last entry is exactly 1.0: float rounding in
        # the row sum must not let a draw overflow the CDF (argmax of an
        # all-False row would silently return output 0).
        cdf /= cdf[:, -1:]
        draws = generator.uniform(size=cells.size)
        return (draws[:, None] < cdf).argmax(axis=1)

    def emission_column(self, output: int) -> np.ndarray:
        """The paper's ``p~_{o_t}``: ``Pr(o | u = s_k)`` for each cell k.

        This is the column of the emission matrix for a fixed observation,
        the quantity that enters the forward-backward recursions.
        """
        matrix = self.emission_matrix()
        out = check_index(output, matrix.shape[1], "output")
        return matrix[:, out].copy()

    def halved(self) -> "LPPM":
        """The mechanism with half the budget (Algorithm 2, line 19)."""
        return self.with_budget(self.budget / 2.0)


def emission_column(emission_matrix, output: int, n_states: int) -> np.ndarray:
    """Standalone ``p~_{o}`` extraction from a raw emission matrix."""
    matrix = check_emission_matrix(emission_matrix, n_states)
    out = check_index(output, matrix.shape[1], "output")
    return matrix[:, out].copy()


class EmissionModel(LPPM):
    """An LPPM defined directly by a fixed emission matrix.

    Useful for tests and for wrapping externally-computed mechanisms.  Its
    ``budget`` is a nominal label: ``with_budget`` raises unless a
    ``rescale`` callback is supplied, because an arbitrary matrix has no
    canonical budget-scaling rule.
    """

    def __init__(self, matrix, budget: float = 1.0, rescale=None):
        arr = np.asarray(matrix, dtype=np.float64)
        if arr.ndim != 2:
            raise MechanismError(f"emission matrix must be 2-D, got shape {arr.shape}")
        self._matrix = check_emission_matrix(arr, arr.shape[0])
        self._budget = float(budget)
        self._rescale = rescale

    @property
    def n_states(self) -> int:
        return self._matrix.shape[0]

    @property
    def budget(self) -> float:
        return self._budget

    def with_budget(self, budget: float) -> "EmissionModel":
        if self._rescale is None:
            raise MechanismError(
                "EmissionModel has no rescale rule; construct with rescale= "
                "to allow budget changes"
            )
        return EmissionModel(self._rescale(budget), budget=budget, rescale=self._rescale)

    def emission_matrix(self) -> np.ndarray:
        return self._matrix.copy()
