"""Location privacy preserving mechanisms (LPPMs).

The paper models an LPPM as an *emission matrix* taking the true location
as input and emitting a perturbed location (Section II-A).  This package
implements:

* :class:`LPPM` -- the mechanism interface (emission matrix, sampling,
  budget rescaling for PriSTE's calibration loop),
* :class:`PlanarLaplaceMechanism` -- the continuous planar Laplace of
  Andres et al. (geo-indistinguishability) and its grid discretization,
* :class:`DeltaLocationSetMechanism` -- Xiao & Xiong's delta-location set
  restriction with Bayesian posterior update (Eq. 21),
* :class:`UniformMechanism` -- the alpha -> 0 limit (no information),
* :class:`RandomizedResponseMechanism` -- k-ary randomized response, an
  alternative LPPM demonstrating that PriSTE is mechanism-agnostic,
* geo-indistinguishability verification utilities.

Every mechanism also carries a canonical registered *name* (see
:data:`MECHANISMS` / :func:`resolve_mechanism`); declarative scenario
specs and CLIs address mechanisms through the registry, and a miss is a
typed :class:`~repro.errors.UnknownMechanismError`.
"""

from .base import LPPM, EmissionModel, emission_column
from .cloaking import CloakingMechanism, grid_blocks
from .delta_location_set import (
    DeltaLocationSetMechanism,
    delta_location_set,
    posterior_update,
)
from .exponential import ExponentialMechanism
from .geo_ind import geo_indistinguishability_level, verify_geo_indistinguishability
from .planar_laplace import (
    ContinuousPlanarLaplace,
    PlanarLaplaceMechanism,
    planar_laplace_emission_matrix,
)
from .randomized_response import RandomizedResponseMechanism
from .registry import (
    MECHANISM_ALIASES,
    MECHANISMS,
    canonical_mechanism_name,
    register_mechanism,
    resolve_mechanism,
)
from .uniform import UniformMechanism

__all__ = [
    "MECHANISMS",
    "MECHANISM_ALIASES",
    "canonical_mechanism_name",
    "register_mechanism",
    "resolve_mechanism",
    "LPPM",
    "EmissionModel",
    "emission_column",
    "PlanarLaplaceMechanism",
    "ContinuousPlanarLaplace",
    "planar_laplace_emission_matrix",
    "DeltaLocationSetMechanism",
    "delta_location_set",
    "posterior_update",
    "UniformMechanism",
    "RandomizedResponseMechanism",
    "ExponentialMechanism",
    "CloakingMechanism",
    "grid_blocks",
    "verify_geo_indistinguishability",
    "geo_indistinguishability_level",
]
