"""Name-based registry of the library's LPPM implementations.

Every mechanism class in :mod:`repro.lppm` has one canonical registered
name, so layers that must refer to mechanisms as *data* -- the
declarative :class:`~repro.scenario.ScenarioSpec`, the CLI, experiment
configs -- resolve them through :func:`resolve_mechanism` instead of
importing classes or dispatching on ad-hoc strings.  A lookup miss is a
typed :class:`~repro.errors.UnknownMechanismError` (never a silent
``getattr`` fallback), and the error lists every known name.

The registry is intentionally append-only at import time; downstream
code may add its own mechanisms with :func:`register_mechanism` before
compiling specs that name them.
"""

from __future__ import annotations

from typing import Type

from ..errors import MechanismError, UnknownMechanismError
from .base import LPPM, EmissionModel
from .cloaking import CloakingMechanism
from .delta_location_set import DeltaLocationSetMechanism
from .exponential import ExponentialMechanism
from .planar_laplace import PlanarLaplaceMechanism
from .randomized_response import RandomizedResponseMechanism
from .uniform import UniformMechanism

#: Canonical name -> mechanism class.  One entry per LPPM in this
#: package; scenario specs and CLIs address mechanisms by these names.
MECHANISMS: dict[str, Type[LPPM]] = {
    "planar_laplace": PlanarLaplaceMechanism,
    "delta_location_set": DeltaLocationSetMechanism,
    "uniform": UniformMechanism,
    "randomized_response": RandomizedResponseMechanism,
    "exponential": ExponentialMechanism,
    "cloaking": CloakingMechanism,
    "emission_model": EmissionModel,
}

#: Accepted alternate spellings -> canonical name (the CLI's historical
#: ``--mechanism`` values among them).
MECHANISM_ALIASES: dict[str, str] = {
    "geoind": "planar_laplace",
    "plm": "planar_laplace",
    "delta": "delta_location_set",
}


def canonical_mechanism_name(name: str) -> str:
    """The canonical registry name for ``name`` (resolving aliases).

    Raises :class:`UnknownMechanismError` when neither a canonical name
    nor an alias matches.
    """
    key = str(name)
    key = MECHANISM_ALIASES.get(key, key)
    if key not in MECHANISMS:
        raise UnknownMechanismError(
            f"unknown mechanism {name!r}; registered names: "
            f"{sorted(MECHANISMS)} (aliases: {sorted(MECHANISM_ALIASES)})"
        )
    return key


def resolve_mechanism(name: str) -> Type[LPPM]:
    """The mechanism class registered under ``name`` (or an alias).

    Raises :class:`UnknownMechanismError` on a miss.
    """
    return MECHANISMS[canonical_mechanism_name(name)]


def register_mechanism(name: str, cls: Type[LPPM]) -> None:
    """Register a new mechanism class under a canonical name.

    Refuses to overwrite an existing registration (shadowing a built-in
    mechanism would silently change what specs naming it compile to).
    """
    key = str(name)
    if not key:
        raise MechanismError("mechanism name must be non-empty")
    if key in MECHANISMS or key in MECHANISM_ALIASES:
        raise MechanismError(f"mechanism name {key!r} is already registered")
    if not (isinstance(cls, type) and issubclass(cls, LPPM)):
        raise MechanismError(
            f"mechanism {key!r} must be an LPPM subclass, got {cls!r}"
        )
    MECHANISMS[key] = cls
