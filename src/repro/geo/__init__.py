"""Spatial substrate: grid maps, distances and region algebra.

The paper discretizes space into ``m`` cells ``S = {s_1, ..., s_m}``; its
synthetic evaluation uses a 20x20 grid and its Geolife evaluation a
km-scale grid over Beijing.  This package provides:

* :class:`GridMap` -- the discrete map with km geometry and cached
  pairwise distances,
* :class:`Region` -- immutable sets of cells with the 0/1 indicator
  vectors ``s`` used by the two-world construction,
* distance helpers (Euclidean on the plane, haversine on the sphere).
"""

from .distance import euclidean_distance, haversine_km, pairwise_euclidean
from .grid import GridMap
from .regions import Region

__all__ = [
    "GridMap",
    "Region",
    "euclidean_distance",
    "haversine_km",
    "pairwise_euclidean",
]
