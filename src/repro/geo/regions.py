"""Region algebra over grid cells.

A region is the paper's ``s in {0,1}^{m x 1}`` indicator vector: the set of
cells whose union forms a sensitive area (Definition II.2).  Regions are
immutable, hashable and support set algebra, so PRESENCE/PATTERN events can
be composed from rectangles, disks and ad-hoc cell sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from .._validation import check_cell_sequence
from ..errors import RegionError
from .grid import GridMap


@dataclass(frozen=True)
class Region:
    """An immutable set of cells on a fixed-size map.

    Parameters
    ----------
    n_cells:
        Size ``m`` of the map the region lives on.  Regions on different
        maps cannot be combined.
    cells:
        The member cell indices (deduplicated, sorted).
    """

    n_cells: int
    cells: tuple[int, ...]

    def __post_init__(self) -> None:
        if int(self.n_cells) != self.n_cells or self.n_cells < 1:
            raise RegionError(f"n_cells must be a positive integer, got {self.n_cells!r}")
        object.__setattr__(self, "n_cells", int(self.n_cells))
        validated = check_cell_sequence(self.cells, self.n_cells, "cells")
        object.__setattr__(self, "cells", tuple(sorted(set(validated))))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_cells(cls, n_cells: int, cells: Iterable[int]) -> "Region":
        """Region from an iterable of cell indices."""
        return cls(n_cells=n_cells, cells=tuple(cells))

    @classmethod
    def from_indicator(cls, indicator) -> "Region":
        """Region from a 0/1 indicator vector (the paper's ``s``)."""
        vec = np.asarray(indicator, dtype=np.float64).ravel()
        if not np.all((vec == 0.0) | (vec == 1.0)):
            raise RegionError("indicator must contain only 0s and 1s")
        cells = tuple(int(i) for i in np.nonzero(vec)[0])
        return cls(n_cells=vec.size, cells=cells)

    @classmethod
    def from_range(cls, n_cells: int, first: int, last: int) -> "Region":
        """Region of the inclusive index range ``first..last``.

        Mirrors the paper's ``S = {1 : 10}`` notation (1-based inclusive);
        this constructor is 0-based: ``Region.from_range(m, 0, 9)``.
        """
        if first > last:
            raise RegionError(f"empty range: first={first} > last={last}")
        return cls(n_cells=n_cells, cells=tuple(range(first, last + 1)))

    @classmethod
    def rectangle(
        cls, grid: GridMap, row_range: tuple[int, int], col_range: tuple[int, int]
    ) -> "Region":
        """Axis-aligned lattice rectangle on ``grid``."""
        return cls(
            n_cells=grid.n_cells, cells=grid.rectangle_cells(row_range, col_range)
        )

    @classmethod
    def disk(cls, grid: GridMap, center_cell: int, radius_km: float) -> "Region":
        """All cells within ``radius_km`` of ``center_cell`` on ``grid``."""
        return cls(n_cells=grid.n_cells, cells=grid.cells_within_km(center_cell, radius_km))

    @classmethod
    def full(cls, n_cells: int) -> "Region":
        """The whole map."""
        return cls(n_cells=n_cells, cells=tuple(range(n_cells)))

    @classmethod
    def empty(cls, n_cells: int) -> "Region":
        """The empty region (always-false PRESENCE)."""
        return cls(n_cells=n_cells, cells=())

    # ------------------------------------------------------------------
    # set protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cells)

    def __contains__(self, cell: int) -> bool:
        return int(cell) in self._cell_set

    @property
    def _cell_set(self) -> frozenset[int]:
        return frozenset(self.cells)

    @property
    def is_empty(self) -> bool:
        """Whether the region contains no cells."""
        return not self.cells

    @property
    def width(self) -> int:
        """The paper's *event width*: the number of cells in the region."""
        return len(self.cells)

    def _check_compatible(self, other: "Region") -> None:
        if self.n_cells != other.n_cells:
            raise RegionError(
                f"regions live on different maps ({self.n_cells} vs {other.n_cells} cells)"
            )

    def union(self, other: "Region") -> "Region":
        """Cells in either region."""
        self._check_compatible(other)
        return Region(self.n_cells, tuple(self._cell_set | other._cell_set))

    def intersection(self, other: "Region") -> "Region":
        """Cells in both regions."""
        self._check_compatible(other)
        return Region(self.n_cells, tuple(self._cell_set & other._cell_set))

    def difference(self, other: "Region") -> "Region":
        """Cells in this region but not the other."""
        self._check_compatible(other)
        return Region(self.n_cells, tuple(self._cell_set - other._cell_set))

    def complement(self) -> "Region":
        """Cells not in this region."""
        members = self._cell_set
        return Region(
            self.n_cells, tuple(c for c in range(self.n_cells) if c not in members)
        )

    def __or__(self, other: "Region") -> "Region":
        return self.union(other)

    def __and__(self, other: "Region") -> "Region":
        return self.intersection(other)

    def __sub__(self, other: "Region") -> "Region":
        return self.difference(other)

    # ------------------------------------------------------------------
    # numeric views
    # ------------------------------------------------------------------
    def indicator(self) -> np.ndarray:
        """The paper's ``s`` vector: 1 at member cells, 0 elsewhere."""
        vec = np.zeros(self.n_cells, dtype=np.float64)
        if self.cells:
            vec[list(self.cells)] = 1.0
        return vec

    def mask(self) -> np.ndarray:
        """Boolean membership mask of length ``m``."""
        vec = np.zeros(self.n_cells, dtype=bool)
        if self.cells:
            vec[list(self.cells)] = True
        return vec

    def probability_mass(self, distribution) -> float:
        """Total probability a distribution assigns to this region."""
        dist = np.asarray(distribution, dtype=np.float64).ravel()
        if dist.size != self.n_cells:
            raise RegionError(
                f"distribution has {dist.size} entries, region map has {self.n_cells}"
            )
        if self.is_empty:
            return 0.0
        return float(dist[list(self.cells)].sum())
