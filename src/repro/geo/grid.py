"""Discrete grid map over the plane.

A :class:`GridMap` is the domain ``S = {s_1, ..., s_m}`` of the paper: an
``n_rows x n_cols`` lattice of square cells with a physical edge length in
kilometres.  Cells are indexed row-major from 0 (the paper's 1-based
``s_1..s_m`` maps to our 0-based ``0..m-1``).  The map owns the geometry
used by Planar Laplace mechanisms (cell-centre coordinates and the pairwise
distance matrix) and by the Euclidean-distance utility metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Sequence

import numpy as np

from .._validation import check_index, check_positive
from ..errors import GridError
from .distance import pairwise_euclidean


@dataclass(frozen=True)
class GridMap:
    """A rectangular grid of square cells with km geometry.

    Parameters
    ----------
    n_rows, n_cols:
        Lattice dimensions; ``m = n_rows * n_cols`` cells in total.
    cell_size_km:
        Edge length of each square cell, in kilometres.
    origin_km:
        Planar coordinates (x, y) of the *centre of cell 0* in kilometres.
        Defaults to (0, 0); only offsets distances to external points.
    """

    n_rows: int
    n_cols: int
    cell_size_km: float = 1.0
    origin_km: tuple[float, float] = (0.0, 0.0)
    _distance_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if int(self.n_rows) != self.n_rows or self.n_rows < 1:
            raise GridError(f"n_rows must be a positive integer, got {self.n_rows!r}")
        if int(self.n_cols) != self.n_cols or self.n_cols < 1:
            raise GridError(f"n_cols must be a positive integer, got {self.n_cols!r}")
        check_positive(self.cell_size_km, "cell_size_km")
        object.__setattr__(self, "n_rows", int(self.n_rows))
        object.__setattr__(self, "n_cols", int(self.n_cols))
        object.__setattr__(self, "cell_size_km", float(self.cell_size_km))
        object.__setattr__(
            self, "origin_km", (float(self.origin_km[0]), float(self.origin_km[1]))
        )

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        """Total number of cells ``m``."""
        return self.n_rows * self.n_cols

    def __len__(self) -> int:
        return self.n_cells

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n_cells))

    def cell_index(self, row: int, col: int) -> int:
        """Row-major cell index of lattice position ``(row, col)``."""
        r = check_index(row, self.n_rows, "row")
        c = check_index(col, self.n_cols, "col")
        return r * self.n_cols + c

    def cell_position(self, cell: int) -> tuple[int, int]:
        """Lattice position ``(row, col)`` of a cell index."""
        idx = check_index(cell, self.n_cells, "cell")
        return divmod(idx, self.n_cols)

    def contains_position(self, row: int, col: int) -> bool:
        """Whether ``(row, col)`` lies on the lattice."""
        return 0 <= row < self.n_rows and 0 <= col < self.n_cols

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def cell_center_km(self, cell: int) -> tuple[float, float]:
        """Planar (x, y) coordinates of a cell centre, in kilometres."""
        row, col = self.cell_position(cell)
        x0, y0 = self.origin_km
        return (x0 + col * self.cell_size_km, y0 + row * self.cell_size_km)

    @cached_property
    def cell_centers_km(self) -> np.ndarray:
        """``(m, 2)`` array of all cell-centre coordinates in kilometres."""
        rows, cols = np.divmod(np.arange(self.n_cells), self.n_cols)
        x0, y0 = self.origin_km
        centers = np.empty((self.n_cells, 2), dtype=np.float64)
        centers[:, 0] = x0 + cols * self.cell_size_km
        centers[:, 1] = y0 + rows * self.cell_size_km
        centers.setflags(write=False)
        return centers

    @cached_property
    def distance_matrix_km(self) -> np.ndarray:
        """``(m, m)`` Euclidean distance matrix between cell centres (km)."""
        matrix = pairwise_euclidean(self.cell_centers_km)
        matrix.setflags(write=False)
        return matrix

    def distance_km(self, cell_a: int, cell_b: int) -> float:
        """Euclidean centre-to-centre distance between two cells (km)."""
        a = check_index(cell_a, self.n_cells, "cell_a")
        b = check_index(cell_b, self.n_cells, "cell_b")
        return float(self.distance_matrix_km[a, b])

    def nearest_cell(self, x_km: float, y_km: float) -> int:
        """Cell whose centre is nearest to the planar point ``(x, y)`` km."""
        deltas = self.cell_centers_km - np.array([x_km, y_km], dtype=np.float64)
        return int(np.argmin((deltas * deltas).sum(axis=1)))

    def snap_to_grid(self, x_km: float, y_km: float) -> tuple[int, float]:
        """Nearest cell and the snapping distance in kilometres."""
        cell = self.nearest_cell(x_km, y_km)
        cx, cy = self.cell_center_km(cell)
        dist = float(np.hypot(cx - x_km, cy - y_km))
        return cell, dist

    # ------------------------------------------------------------------
    # neighbourhood structure (used by synthetic mobility models)
    # ------------------------------------------------------------------
    def neighbors(self, cell: int, diagonal: bool = True) -> tuple[int, ...]:
        """Adjacent cells (4- or 8-neighbourhood) of ``cell``."""
        row, col = self.cell_position(cell)
        offsets = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if diagonal:
            offsets += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        out = []
        for dr, dc in offsets:
            r, c = row + dr, col + dc
            if self.contains_position(r, c):
                out.append(self.cell_index(r, c))
        return tuple(sorted(out))

    def cells_within_km(self, cell: int, radius_km: float) -> tuple[int, ...]:
        """All cells whose centres lie within ``radius_km`` of ``cell``."""
        idx = check_index(cell, self.n_cells, "cell")
        radius = check_positive(radius_km, "radius_km")
        mask = self.distance_matrix_km[idx] <= radius
        return tuple(int(i) for i in np.nonzero(mask)[0])

    def rectangle_cells(
        self, row_range: tuple[int, int], col_range: tuple[int, int]
    ) -> tuple[int, ...]:
        """Cells of the closed lattice rectangle (inclusive index ranges)."""
        r0, r1 = int(row_range[0]), int(row_range[1])
        c0, c1 = int(col_range[0]), int(col_range[1])
        if not (0 <= r0 <= r1 < self.n_rows):
            raise GridError(f"row_range {row_range} invalid for {self.n_rows} rows")
        if not (0 <= c0 <= c1 < self.n_cols):
            raise GridError(f"col_range {col_range} invalid for {self.n_cols} cols")
        return tuple(
            self.cell_index(r, c)
            for r in range(r0, r1 + 1)
            for c in range(c0, c1 + 1)
        )

    # ------------------------------------------------------------------
    # error metrics
    # ------------------------------------------------------------------
    def trajectory_error_km(
        self, true_cells: Sequence[int], released_cells: Sequence[int]
    ) -> float:
        """Mean Euclidean error in km between two equal-length cell paths.

        This is the paper's utility metric: "the Euclidean distance between
        the perturbed locations and the true locations" averaged over the
        trajectory.
        """
        if len(true_cells) != len(released_cells):
            raise GridError(
                f"trajectories differ in length: {len(true_cells)} "
                f"vs {len(released_cells)}"
            )
        if not true_cells:
            raise GridError("trajectories must be non-empty")
        total = 0.0
        for u, o in zip(true_cells, released_cells):
            total += self.distance_km(u, o)
        return total / len(true_cells)
