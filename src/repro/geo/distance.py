"""Distance functions used by grids, mechanisms and utility metrics.

Planar Laplace noise and the paper's Euclidean-distance utility metric both
operate in kilometres, so every function here returns kilometres.
"""

from __future__ import annotations

import math

import numpy as np

from .._validation import as_float_array
from ..errors import ValidationError

#: Mean Earth radius in kilometres (IUGG value), used by haversine.
EARTH_RADIUS_KM = 6371.0088


def euclidean_distance(p, q) -> float:
    """Euclidean distance between two planar points (km in, km out)."""
    pa = as_float_array(p, "p")
    qa = as_float_array(q, "q")
    if pa.shape != qa.shape or pa.ndim != 1:
        raise ValidationError(
            f"points must be 1-D with matching shapes, got {pa.shape} vs {qa.shape}"
        )
    return float(np.linalg.norm(pa - qa))


def pairwise_euclidean(points) -> np.ndarray:
    """Pairwise Euclidean distance matrix for an ``(n, d)`` point array."""
    pts = as_float_array(points, "points")
    if pts.ndim != 2:
        raise ValidationError(f"points must be 2-D (n, d), got shape {pts.shape}")
    diff = pts[:, None, :] - pts[None, :, :]
    return np.sqrt((diff * diff).sum(axis=-1))


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in km between two (lat, lon) points in degrees."""
    for name, value in (("lat1", lat1), ("lat2", lat2)):
        if not -90.0 <= float(value) <= 90.0:
            raise ValidationError(f"{name} must be in [-90, 90], got {value!r}")
    for name, value in (("lon1", lon1), ("lon2", lon2)):
        if not -180.0 <= float(value) <= 180.0:
            raise ValidationError(f"{name} must be in [-180, 180], got {value!r}")
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def haversine_km_arrays(lat1, lon1, lat2, lon2) -> np.ndarray:
    """Vectorized haversine over equally-shaped coordinate arrays (degrees)."""
    lat1 = np.radians(as_float_array(lat1, "lat1"))
    lon1 = np.radians(as_float_array(lon1, "lon1"))
    lat2 = np.radians(as_float_array(lat2, "lat2"))
    lon2 = np.radians(as_float_array(lon2, "lon2"))
    dphi = lat2 - lat1
    dlam = lon2 - lon1
    a = np.sin(dphi / 2) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlam / 2) ** 2
    return 2 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(a)))
