"""Synthetic transition-matrix generators.

The paper's synthetic evaluation (Section V-A) builds a 20x20 map where
"the transition probability from one cell to another is proportional to the
two-dimensional Gaussian distribution with scale parameter sigma" -- a
smaller sigma concentrates mass on adjacent cells and therefore encodes a
more significant mobility pattern (Fig. 13 sweeps sigma over
{0.01, 0.1, 1, 10}).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive, check_unit_interval
from ..errors import MarkovError
from ..geo.grid import GridMap
from .transition import TransitionMatrix


def gaussian_kernel_transitions(
    grid: GridMap,
    sigma: float,
    distance_unit: str = "cells",
) -> TransitionMatrix:
    """Gaussian-kernel transition matrix on a grid (the paper's generator).

    ``M[i, j] proportional to exp(-d(i, j)^2 / (2 sigma^2))`` where ``d`` is
    the centre-to-centre distance.  Every row is strictly positive, so the
    chain is ergodic for any sigma.

    Parameters
    ----------
    grid:
        The map to generate transitions on.
    sigma:
        Scale parameter; smaller values produce a stronger mobility
        pattern (movement concentrated on nearby cells).
    distance_unit:
        ``"cells"`` (default) measures distance in cell widths, matching
        the paper's dimensionless sigma values; ``"km"`` uses the grid's
        physical distances.
    """
    sigma = check_positive(sigma, "sigma")
    if distance_unit not in ("cells", "km"):
        raise MarkovError(f"distance_unit must be 'cells' or 'km', got {distance_unit!r}")
    distances = grid.distance_matrix_km
    if distance_unit == "cells":
        distances = distances / grid.cell_size_km
    # Subtract the row-min (zero, on the diagonal) before exponentiating so
    # tiny sigmas do not underflow every entry of a row to zero.
    logits = -(distances**2) / (2.0 * sigma * sigma)
    logits = logits - logits.max(axis=1, keepdims=True)
    weights = np.exp(logits)
    matrix = weights / weights.sum(axis=1, keepdims=True)
    return TransitionMatrix(matrix)


def lazy_random_walk_transitions(
    grid: GridMap,
    stay_probability: float = 0.2,
    diagonal: bool = True,
) -> TransitionMatrix:
    """Lazy nearest-neighbour random walk on the grid.

    With probability ``stay_probability`` the user stays put; otherwise it
    moves uniformly to one of the adjacent cells.  Useful as a structured
    alternative to the Gaussian kernel (sparse support, strong locality).
    """
    stay = check_unit_interval(stay_probability, "stay_probability")
    m = grid.n_cells
    matrix = np.zeros((m, m), dtype=np.float64)
    for cell in range(m):
        neighbors = grid.neighbors(cell, diagonal=diagonal)
        matrix[cell, cell] += stay
        if neighbors:
            share = (1.0 - stay) / len(neighbors)
            for other in neighbors:
                matrix[cell, other] += share
        else:
            matrix[cell, cell] = 1.0
    return TransitionMatrix(matrix)


def biased_commute_transitions(
    grid: GridMap,
    anchors: tuple[int, ...],
    sigma: float = 1.0,
    anchor_pull: float = 0.6,
) -> TransitionMatrix:
    """Gaussian walk biased toward a set of anchor cells (home/work).

    Each row is a mixture: with weight ``anchor_pull`` the user moves one
    step toward the nearest anchor, and with weight ``1 - anchor_pull`` it
    performs the Gaussian-kernel move.  Produces the strongly patterned,
    commute-like chains the Geolife substitute trains on.
    """
    pull = check_unit_interval(anchor_pull, "anchor_pull")
    if not anchors:
        raise MarkovError("biased_commute_transitions needs at least one anchor")
    base = gaussian_kernel_transitions(grid, sigma).matrix
    m = grid.n_cells
    toward = np.zeros((m, m), dtype=np.float64)
    centers = grid.cell_centers_km
    anchor_centers = centers[list(anchors)]
    for cell in range(m):
        deltas = anchor_centers - centers[cell]
        nearest = int(np.argmin((deltas * deltas).sum(axis=1)))
        target = anchors[nearest]
        if target == cell:
            toward[cell, cell] = 1.0
            continue
        # Step to the neighbour that most reduces distance to the anchor.
        options = grid.neighbors(cell, diagonal=True)
        dists = [grid.distance_km(option, target) for option in options]
        toward[cell, options[int(np.argmin(dists))]] = 1.0
    return TransitionMatrix(pull * toward + (1.0 - pull) * base)
