"""Transition-matrix abstraction for user mobility.

:class:`TransitionMatrix` wraps a validated row-stochastic matrix ``M``
(``p_{t+1} = p_t M``, matching the paper's convention) with the analysis
operations the rest of the library needs: stationary distribution,
ergodicity, entropy rate and k-step transitions.  :class:`TimeVaryingChain`
generalizes to a different matrix per timestamp, which Section III notes
the method supports ("if the Markov model is time-varying ... our approach
still works").
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import networkx as nx
import numpy as np

from .._validation import (
    check_probability_vector,
    check_stochastic_matrix,
    check_timestamp,
)
from ..errors import MarkovError


@dataclass(frozen=True)
class TransitionMatrix:
    """A validated row-stochastic transition matrix.

    Parameters
    ----------
    matrix:
        ``(m, m)`` row-stochastic array; row ``i`` is the distribution of
        the next location given the current location is cell ``i``.
    sparse_hint:
        Optional routing hint for downstream lifted-chain propagation
        (:class:`repro.core.TwoWorldModel`): ``True`` asks for CSR
        matmuls, ``False`` pins dense, ``None`` (default) lets the
        density-based crossover heuristic decide.  Never affects the
        matrix's values or validation.
    """

    matrix: np.ndarray
    sparse_hint: bool | None = None

    def __post_init__(self) -> None:
        validated = check_stochastic_matrix(self.matrix, "transition matrix")
        validated.setflags(write=False)
        object.__setattr__(self, "matrix", validated)
        if self.sparse_hint is not None:
            object.__setattr__(self, "sparse_hint", bool(self.sparse_hint))

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def n_states(self) -> int:
        """Number of cells ``m``."""
        return self.matrix.shape[0]

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        if dtype is not None:
            return self.matrix.astype(dtype)
        return self.matrix

    @cached_property
    def density(self) -> float:
        """Fraction of non-zero entries, in ``[0, 1]``.

        The input to the sparse-propagation crossover heuristic: banded
        chains (lazy walks, trace-trained models on large maps) sit far
        below 1, Gaussian-kernel chains near it.
        """
        m = self.n_states
        return float(np.count_nonzero(self.matrix)) / float(m * m)

    def row(self, state: int) -> np.ndarray:
        """Next-location distribution from ``state``."""
        if not 0 <= state < self.n_states:
            raise MarkovError(f"state {state} out of range [0, {self.n_states})")
        return self.matrix[state]

    def step(self, distribution) -> np.ndarray:
        """One Markov transition: ``p M``."""
        dist = check_probability_vector(distribution, "distribution")
        if dist.size != self.n_states:
            raise MarkovError(
                f"distribution has {dist.size} entries, chain has {self.n_states} states"
            )
        return dist @ self.matrix

    def power(self, k: int) -> np.ndarray:
        """The k-step transition matrix ``M^k``."""
        if int(k) != k or k < 0:
            raise MarkovError(f"k must be a non-negative integer, got {k!r}")
        return np.linalg.matrix_power(self.matrix, int(k))

    def propagate(self, initial, steps: int) -> np.ndarray:
        """Distributions ``p_1..p_{steps}`` starting from ``p_1 = initial``.

        Returns an ``(steps, m)`` array whose row ``t-1`` is the marginal
        distribution of the location at (1-based) timestamp ``t``.
        """
        check_timestamp(steps, name="steps")
        dist = check_probability_vector(initial, "initial distribution")
        if dist.size != self.n_states:
            raise MarkovError(
                f"initial distribution has {dist.size} entries, chain has "
                f"{self.n_states} states"
            )
        out = np.empty((steps, self.n_states), dtype=np.float64)
        out[0] = dist
        for t in range(1, steps):
            out[t] = out[t - 1] @ self.matrix
        return out

    # ------------------------------------------------------------------
    # structural analysis
    # ------------------------------------------------------------------
    @cached_property
    def support_graph(self) -> nx.DiGraph:
        """Directed graph with an edge wherever ``M[i, j] > 0``."""
        graph = nx.DiGraph()
        graph.add_nodes_from(range(self.n_states))
        rows, cols = np.nonzero(self.matrix > 0)
        graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
        return graph

    @cached_property
    def is_irreducible(self) -> bool:
        """Whether the support graph is strongly connected."""
        return nx.is_strongly_connected(self.support_graph)

    @cached_property
    def is_aperiodic(self) -> bool:
        """Whether the support graph is aperiodic (gcd of cycle lengths 1)."""
        return nx.is_aperiodic(self.support_graph)

    @property
    def is_ergodic(self) -> bool:
        """Irreducible and aperiodic: a unique limiting distribution exists."""
        return self.is_irreducible and self.is_aperiodic

    @cached_property
    def stationary_distribution(self) -> np.ndarray:
        """The stationary distribution ``pi M = pi``.

        Computed as the left eigenvector for eigenvalue 1.  Raises
        :class:`MarkovError` if the chain is reducible (the stationary
        distribution would not be unique).
        """
        if not self.is_irreducible:
            raise MarkovError(
                "stationary distribution is not unique for a reducible chain"
            )
        eigenvalues, eigenvectors = np.linalg.eig(self.matrix.T)
        idx = int(np.argmin(np.abs(eigenvalues - 1.0)))
        vec = np.real(eigenvectors[:, idx])
        vec = np.abs(vec)
        return vec / vec.sum()

    def entropy_rate(self) -> float:
        """Entropy rate in bits: ``-sum_i pi_i sum_j M_ij log2 M_ij``.

        A low entropy rate corresponds to the paper's "significant mobility
        pattern" regime (small sigma in the synthetic generator).
        """
        pi = self.stationary_distribution
        with np.errstate(divide="ignore", invalid="ignore"):
            logs = np.where(self.matrix > 0, np.log2(self.matrix), 0.0)
        per_state = -(self.matrix * logs).sum(axis=1)
        return float(pi @ per_state)

    def pattern_strength(self) -> float:
        """Heuristic in [0, 1]: 1 = deterministic movement, 0 = uniform.

        Defined as ``1 - H_rate / log2(m)``; used by experiment reports to
        describe how "significant" a mobility pattern is (Fig. 13).
        """
        max_entropy = np.log2(self.n_states) if self.n_states > 1 else 1.0
        return float(np.clip(1.0 - self.entropy_rate() / max_entropy, 0.0, 1.0))

    def mixing_time_bound(self, tolerance: float = 1e-2, max_steps: int = 10_000) -> int:
        """Empirical steps until total-variation from stationarity < tolerance.

        Starts from the worst single-state distribution.  Raises
        :class:`MarkovError` if the bound is not reached in ``max_steps``.
        """
        pi = self.stationary_distribution
        current = np.eye(self.n_states)
        for step in range(1, max_steps + 1):
            current = current @ self.matrix
            tv = 0.5 * np.abs(current - pi).sum(axis=1).max()
            if tv < tolerance:
                return step
        raise MarkovError(f"chain did not mix within {max_steps} steps")


class TimeVaryingChain:
    """A sequence of per-timestamp transition matrices.

    ``matrix_at(t)`` returns the matrix governing the transition from
    timestamp ``t`` to ``t + 1`` (1-based, matching ``M_t`` in the paper).
    A time-homogeneous chain is the special case of a single repeated
    matrix, constructed with :meth:`homogeneous`.
    """

    def __init__(self, matrices: Sequence[TransitionMatrix | np.ndarray]):
        if not matrices:
            raise MarkovError("TimeVaryingChain needs at least one matrix")
        converted = []
        for entry in matrices:
            if not isinstance(entry, TransitionMatrix):
                entry = TransitionMatrix(np.asarray(entry))
            converted.append(entry)
        sizes = {tm.n_states for tm in converted}
        if len(sizes) != 1:
            raise MarkovError(f"matrices disagree on state count: {sorted(sizes)}")
        self._matrices = tuple(converted)
        self._homogeneous = len(self._matrices) == 1

    @classmethod
    def homogeneous(cls, matrix: TransitionMatrix | np.ndarray) -> "TimeVaryingChain":
        """Chain that applies the same matrix at every timestamp."""
        return cls([matrix])

    @property
    def n_states(self) -> int:
        """Number of cells ``m``."""
        return self._matrices[0].n_states

    @property
    def is_homogeneous(self) -> bool:
        """Whether a single matrix is used at every timestamp."""
        return self._homogeneous

    @property
    def max_density(self) -> float:
        """The densest per-timestamp matrix's non-zero fraction.

        Conservative aggregate for the sparse-propagation crossover: a
        chain only counts as sparse when *every* timestamp's matrix is.
        """
        return max(tm.density for tm in self._matrices)

    @property
    def sparse_hint(self) -> bool | None:
        """Combined routing hint of the per-timestamp matrices.

        ``False`` wins over ``True`` (one dense-pinned matrix pins the
        whole chain); all-``None`` stays ``None``.
        """
        hints = [tm.sparse_hint for tm in self._matrices]
        if any(hint is False for hint in hints):
            return False
        if any(hint is True for hint in hints):
            return True
        return None

    def matrix_at(self, t: int) -> TransitionMatrix:
        """Transition matrix ``M_t`` applied between timestamps t and t+1."""
        check_timestamp(t, name="t")
        if self._homogeneous:
            return self._matrices[0]
        if t > len(self._matrices):
            raise MarkovError(
                f"chain defines matrices for t in [1, {len(self._matrices)}], got {t}"
            )
        return self._matrices[t - 1]

    def array_at(self, t: int) -> np.ndarray:
        """Raw ``(m, m)`` array of ``M_t``."""
        return self.matrix_at(t).matrix

    def propagate(self, initial, steps: int) -> np.ndarray:
        """Marginals ``p_1..p_steps`` from ``p_1 = initial``."""
        check_timestamp(steps, name="steps")
        dist = check_probability_vector(initial, "initial distribution")
        if dist.size != self.n_states:
            raise MarkovError(
                f"initial distribution has {dist.size} entries, chain has "
                f"{self.n_states} states"
            )
        out = np.empty((steps, self.n_states), dtype=np.float64)
        out[0] = dist
        for t in range(1, steps):
            out[t] = out[t - 1] @ self.array_at(t)
        return out
