"""Mobility substrate: Markov chains over grid cells.

The paper models temporal correlation between a user's consecutive
locations with a first-order time-homogeneous Markov chain
(``p_{t+1} = p_t M``).  This package provides the chain abstraction, the
paper's synthetic Gaussian-kernel transition generator (pattern strength
``sigma``), maximum-likelihood training from trajectories (the paper trains
on Geolife with the R ``markovchain`` package) and trajectory simulation.
"""

from .highorder import HighOrderChain
from .simulate import sample_initial_state, sample_trajectories, sample_trajectory
from .synthetic import gaussian_kernel_transitions, lazy_random_walk_transitions
from .training import fit_initial_distribution, fit_transition_matrix
from .transition import TransitionMatrix, TimeVaryingChain

__all__ = [
    "TransitionMatrix",
    "TimeVaryingChain",
    "HighOrderChain",
    "gaussian_kernel_transitions",
    "lazy_random_walk_transitions",
    "fit_transition_matrix",
    "fit_initial_distribution",
    "sample_trajectory",
    "sample_trajectories",
    "sample_initial_state",
]
