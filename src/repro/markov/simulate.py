"""Sampling trajectories from Markov mobility models.

The paper "produced trajectories with 50 timestamps using such transition
matrix to simulate movement of a user" -- these helpers do exactly that,
for both homogeneous and time-varying chains, with explicit RNG control.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_probability_vector, check_timestamp, resolve_rng
from ..errors import MarkovError
from .transition import TimeVaryingChain, TransitionMatrix


def sample_initial_state(initial, rng=None) -> int:
    """Draw a starting cell from an initial distribution."""
    dist = check_probability_vector(initial, "initial distribution")
    generator = resolve_rng(rng)
    return int(generator.choice(dist.size, p=dist))


def sample_trajectory(
    chain: TransitionMatrix | TimeVaryingChain,
    length: int,
    initial=None,
    start_state: int | None = None,
    rng=None,
) -> list[int]:
    """Sample one trajectory of ``length`` cells from a chain.

    Exactly one of ``initial`` (a distribution) or ``start_state`` (a fixed
    cell) selects the first location.

    Parameters
    ----------
    chain:
        The mobility model; a bare :class:`TransitionMatrix` is treated as
        time-homogeneous.
    length:
        Number of timestamps ``T`` (>= 1).
    initial:
        Distribution over the first location.
    start_state:
        Deterministic first location (mutually exclusive with ``initial``).
    rng:
        Seed, generator or ``None``.
    """
    check_timestamp(length, name="length")
    if isinstance(chain, TransitionMatrix):
        chain = TimeVaryingChain.homogeneous(chain)
    generator = resolve_rng(rng)

    if (initial is None) == (start_state is None):
        raise MarkovError("provide exactly one of 'initial' or 'start_state'")
    if start_state is not None:
        if not 0 <= int(start_state) < chain.n_states:
            raise MarkovError(
                f"start_state {start_state} out of range [0, {chain.n_states})"
            )
        current = int(start_state)
    else:
        current = sample_initial_state(initial, generator)

    trajectory = [current]
    for t in range(1, length):
        row = chain.array_at(t)[current]
        current = int(generator.choice(chain.n_states, p=row))
        trajectory.append(current)
    return trajectory


def sample_trajectories(
    chain: TransitionMatrix | TimeVaryingChain,
    n_trajectories: int,
    length: int,
    initial=None,
    start_state: int | None = None,
    rng=None,
) -> list[list[int]]:
    """Sample ``n_trajectories`` independent trajectories."""
    if int(n_trajectories) != n_trajectories or n_trajectories < 1:
        raise MarkovError(
            f"n_trajectories must be a positive integer, got {n_trajectories!r}"
        )
    generator = resolve_rng(rng)
    return [
        sample_trajectory(
            chain, length, initial=initial, start_state=start_state, rng=generator
        )
        for _ in range(int(n_trajectories))
    ]
