"""High-order Markov mobility models via state augmentation.

The paper's footnote 2: "If the Markov model is high-ordered, i.e., the
transition matrix has a larger state domain, our approach still works by
applying the new matrix."  This module makes that concrete: an order-k
chain over ``m`` cells becomes a first-order chain over the ``m^k``
composite states ``(u_{t-k+1}, ..., u_t)``, and any PRESENCE/PATTERN
event lifts to the composite domain by reading the *last* coordinate.
The lifted objects plug directly into :class:`repro.core.TwoWorldModel`
and PriSTE.

Composite states are encoded base-``m``: the most recent location is the
least-significant digit, so ``composite % m`` recovers ``u_t``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .._validation import check_probability_vector, check_non_negative
from ..errors import MarkovError
from ..events.events import PatternEvent, PresenceEvent, SpatiotemporalEvent
from ..geo.regions import Region
from .transition import TransitionMatrix


class HighOrderChain:
    """An order-``k`` Markov chain lifted to first order.

    Parameters
    ----------
    matrix:
        First-order transition matrix over the ``m^k`` composite states;
        build with :meth:`fit` or :meth:`from_conditional`.
    n_cells:
        Base domain size ``m``.
    order:
        The model order ``k`` (>= 1; 1 reduces to a plain chain).
    """

    def __init__(self, matrix: TransitionMatrix, n_cells: int, order: int):
        if order < 1:
            raise MarkovError(f"order must be >= 1, got {order!r}")
        if int(n_cells) != n_cells or n_cells < 1:
            raise MarkovError(f"n_cells must be a positive integer, got {n_cells!r}")
        expected = int(n_cells) ** int(order)
        if matrix.n_states != expected:
            raise MarkovError(
                f"composite matrix has {matrix.n_states} states, expected "
                f"{n_cells}^{order} = {expected}"
            )
        self._matrix = matrix
        self._m = int(n_cells)
        self._order = int(order)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        trajectories: Iterable[Sequence[int]],
        n_cells: int,
        order: int,
        smoothing: float = 0.0,
    ) -> "HighOrderChain":
        """Maximum-likelihood order-``k`` fit from cell trajectories.

        Counts transitions between consecutive k-grams.  ``smoothing``
        adds a pseudo-count to every *consistent* composite transition
        (the target k-gram must extend the source's suffix); composite
        pairs that are structurally impossible stay at probability zero.
        Rows never observed fall back to "stay at the last cell".
        """
        smoothing = check_non_negative(smoothing, "smoothing")
        m = int(n_cells)
        k = int(order)
        size = m**k
        counts = np.zeros((size, size), dtype=np.float64)
        for trajectory in trajectories:
            cells = [int(c) for c in trajectory]
            for cell in cells:
                if not 0 <= cell < m:
                    raise MarkovError(f"cell {cell} out of range [0, {m})")
            for i in range(len(cells) - k):
                src = cls._encode_static(cells[i : i + k], m)
                dst = cls._encode_static(cells[i + 1 : i + k + 1], m)
                counts[src, dst] += 1.0
        matrix = np.zeros_like(counts)
        for src in range(size):
            successors = cls._successors_static(src, m, k)
            row = counts[src, successors] + smoothing
            total = row.sum()
            if total > 0:
                matrix[src, successors] = row / total
            else:
                # Unseen history: self-loop on the last cell.
                last = src % m
                stay = cls._shift_static(src, last, m, k)
                matrix[src, stay] = 1.0
        return cls(TransitionMatrix(matrix), n_cells=m, order=k)

    # ------------------------------------------------------------------
    # encoding helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _encode_static(cells: Sequence[int], m: int) -> int:
        code = 0
        for cell in cells:
            code = code * m + int(cell)
        return code

    @staticmethod
    def _shift_static(composite: int, new_cell: int, m: int, k: int) -> int:
        return (composite * m + int(new_cell)) % (m**k)

    @staticmethod
    def _successors_static(composite: int, m: int, k: int) -> np.ndarray:
        base = (composite * m) % (m**k)
        return base + np.arange(m)

    def encode(self, cells: Sequence[int]) -> int:
        """Composite index of a k-gram (most recent cell last)."""
        cells = [int(c) for c in cells]
        if len(cells) != self._order:
            raise MarkovError(
                f"need exactly {self._order} cells to encode, got {len(cells)}"
            )
        for cell in cells:
            if not 0 <= cell < self._m:
                raise MarkovError(f"cell {cell} out of range [0, {self._m})")
        return self._encode_static(cells, self._m)

    def decode(self, composite: int) -> tuple[int, ...]:
        """The k-gram of a composite index."""
        if not 0 <= int(composite) < self.n_composite_states:
            raise MarkovError(f"composite {composite} out of range")
        digits = []
        value = int(composite)
        for _ in range(self._order):
            digits.append(value % self._m)
            value //= self._m
        return tuple(reversed(digits))

    def last_cell(self, composite: int) -> int:
        """The current location encoded in a composite state."""
        return int(composite) % self._m

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """The model order k."""
        return self._order

    @property
    def n_cells(self) -> int:
        """The base domain size m."""
        return self._m

    @property
    def n_composite_states(self) -> int:
        """``m^k``."""
        return self._m**self._order

    @property
    def matrix(self) -> TransitionMatrix:
        """The first-order composite transition matrix."""
        return self._matrix

    # ------------------------------------------------------------------
    # lifting events and distributions
    # ------------------------------------------------------------------
    def lift_region(self, region: Region) -> Region:
        """Composite region: states whose *current* cell is in ``region``."""
        if region.n_cells != self._m:
            raise MarkovError(
                f"region lives on {region.n_cells} cells, chain has {self._m}"
            )
        members = set(region.cells)
        cells = [
            composite
            for composite in range(self.n_composite_states)
            if composite % self._m in members
        ]
        return Region.from_cells(self.n_composite_states, cells)

    def lift_event(self, event: SpatiotemporalEvent) -> SpatiotemporalEvent:
        """PRESENCE/PATTERN on cells -> same event on composite states.

        Timestamps are unchanged: composite timestamp t carries the
        history *ending* at location u_t, so "in region at t" means "the
        composite state's last coordinate is in the region at t".
        """
        if isinstance(event, PresenceEvent):
            return PresenceEvent(
                self.lift_region(event.region), start=event.start, end=event.end
            )
        if isinstance(event, PatternEvent):
            return PatternEvent(
                [self.lift_region(region) for region in event.regions],
                start=event.start,
            )
        raise MarkovError(
            f"cannot lift event type {type(event).__name__}; lift its regions "
            "manually via lift_region"
        )

    def lift_initial(self, pi, history=None) -> np.ndarray:
        """Initial distribution over composite states.

        ``pi`` is the distribution of the *current* cell.  With no
        ``history``, the previous k-1 coordinates are set equal to the
        current cell (the user has been dwelling); with ``history`` (a
        tuple of k-1 cells) the distribution is placed on those exact
        prefixes.
        """
        pi = check_probability_vector(pi, "pi")
        if pi.size != self._m:
            raise MarkovError(f"pi has {pi.size} entries, chain has {self._m} cells")
        lifted = np.zeros(self.n_composite_states, dtype=np.float64)
        if history is not None:
            prefix = [int(c) for c in history]
            if len(prefix) != self._order - 1:
                raise MarkovError(
                    f"history must have {self._order - 1} cells, got {len(prefix)}"
                )
            for cell in range(self._m):
                lifted[self.encode(prefix + [cell])] += pi[cell]
        else:
            for cell in range(self._m):
                lifted[self.encode([cell] * self._order)] += pi[cell]
        return lifted

    def lift_emission_matrix(self, emission) -> np.ndarray:
        """Cell-level emission matrix -> composite-level (rows repeat).

        ``Pr(o | composite)`` depends only on the current cell, so row
        ``s`` of the lifted matrix is row ``last_cell(s)`` of the input.
        """
        matrix = np.asarray(emission, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != self._m:
            raise MarkovError(
                f"emission must have {self._m} rows, got shape {matrix.shape}"
            )
        rows = np.arange(self.n_composite_states) % self._m
        return matrix[rows]

    def lift_trajectory(self, cells: Sequence[int]) -> list[int]:
        """Cell trajectory -> composite trajectory (dwell-padded start)."""
        cells = [int(c) for c in cells]
        if not cells:
            raise MarkovError("trajectory must be non-empty")
        padded = [cells[0]] * (self._order - 1) + cells
        return [
            self.encode(padded[i : i + self._order])
            for i in range(len(cells))
        ]
