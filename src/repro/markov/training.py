"""Fitting Markov models from discrete trajectories.

The paper trains the transition matrix on the user's entire Geolife
trajectory ("e.g. with R package 'markovchain'"), i.e. maximum-likelihood
estimation from transition counts.  We add Dirichlet (additive) smoothing
so that chains trained on short traces remain usable: an unsmoothed MLE row
with no observations would be undefined.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .._validation import check_non_negative
from ..errors import MarkovError
from .transition import TransitionMatrix


def count_transitions(
    trajectories: Iterable[Sequence[int]], n_states: int
) -> np.ndarray:
    """Transition count matrix from one or more trajectories.

    Parameters
    ----------
    trajectories:
        Iterable of cell-index sequences (each of length >= 2 to contribute).
    n_states:
        Number of cells ``m``.
    """
    if int(n_states) != n_states or n_states < 1:
        raise MarkovError(f"n_states must be a positive integer, got {n_states!r}")
    counts = np.zeros((n_states, n_states), dtype=np.float64)
    saw_any = False
    for trajectory in trajectories:
        cells = list(trajectory)
        for cell in cells:
            if not 0 <= int(cell) < n_states:
                raise MarkovError(f"cell {cell} out of range [0, {n_states})")
        for src, dst in zip(cells[:-1], cells[1:]):
            counts[int(src), int(dst)] += 1.0
            saw_any = True
    if not saw_any:
        raise MarkovError("no transitions observed: every trajectory has length < 2")
    return counts


def fit_transition_matrix(
    trajectories: Iterable[Sequence[int]],
    n_states: int,
    smoothing: float = 0.0,
) -> TransitionMatrix:
    """Maximum-likelihood transition matrix with optional smoothing.

    Parameters
    ----------
    trajectories:
        Iterable of cell-index sequences.
    n_states:
        Number of cells ``m``.
    smoothing:
        Dirichlet pseudo-count added to every (i, j) pair.  ``0`` gives the
        plain MLE; rows with no outgoing observations then fall back to a
        self-loop so the matrix stays stochastic (a row that was never left
        carries no evidence about where the user goes next).
    """
    smoothing = check_non_negative(smoothing, "smoothing")
    counts = count_transitions(trajectories, n_states) + smoothing
    row_sums = counts.sum(axis=1)
    matrix = np.zeros_like(counts)
    for state in range(n_states):
        if row_sums[state] > 0:
            matrix[state] = counts[state] / row_sums[state]
        else:
            matrix[state, state] = 1.0
    return TransitionMatrix(matrix)


def fit_initial_distribution(
    trajectories: Iterable[Sequence[int]],
    n_states: int,
    smoothing: float = 0.0,
) -> np.ndarray:
    """Empirical distribution of trajectory starting cells.

    With ``smoothing > 0`` every cell receives a pseudo-count, which keeps
    the prior strictly positive -- useful because a zero prior on the event
    region makes Definition II.4's ratio degenerate.
    """
    smoothing = check_non_negative(smoothing, "smoothing")
    counts = np.full(n_states, smoothing, dtype=np.float64)
    saw_any = False
    for trajectory in trajectories:
        cells = list(trajectory)
        if not cells:
            continue
        first = int(cells[0])
        if not 0 <= first < n_states:
            raise MarkovError(f"cell {first} out of range [0, {n_states})")
        counts[first] += 1.0
        saw_any = True
    if not saw_any and smoothing == 0.0:
        raise MarkovError("no non-empty trajectories and no smoothing")
    return counts / counts.sum()


def log_likelihood(
    trajectory: Sequence[int],
    chain: TransitionMatrix,
    initial=None,
) -> float:
    """Log-likelihood of a trajectory under a chain (natural log).

    Returns ``-inf`` if the trajectory uses a zero-probability transition.
    ``initial`` defaults to ignoring the first-state probability (pure
    transition likelihood), matching how goodness-of-fit is usually
    compared across chains trained on the same data.
    """
    cells = [int(c) for c in trajectory]
    if len(cells) < 2:
        raise MarkovError("trajectory must have at least 2 points")
    total = 0.0
    if initial is not None:
        p0 = float(np.asarray(initial, dtype=np.float64)[cells[0]])
        total += np.log(p0) if p0 > 0 else -np.inf
    for src, dst in zip(cells[:-1], cells[1:]):
        p = float(chain.matrix[src, dst])
        if p <= 0.0:
            return float("-inf")
        total += float(np.log(p))
    return total
