"""Event-loop lag probe: how late the server's loop runs scheduled work.

Sleeps ``interval_s`` on the loop and measures how much later than
requested it actually woke -- the excess is scheduling lag, the single
best proxy for "the event loop is starved" (by slow callbacks, GIL
pressure from worker threads, or plain CPU saturation).  This used to
live inside ``bench_service_load`` only; now any serving process can
run one and export current/max lag as gauges.
"""

from __future__ import annotations

import asyncio
import time

__all__ = ["EventLoopLagProbe"]


class EventLoopLagProbe:
    """Periodic lag sampler for the running asyncio event loop."""

    def __init__(self, interval_s: float = 0.05):
        self.interval_s = float(interval_s)
        self.current_s = 0.0
        self.max_s = 0.0
        self.samples = 0
        self._task: asyncio.Task | None = None

    async def _run(self) -> None:
        while True:
            before = time.perf_counter()
            await asyncio.sleep(self.interval_s)
            lag = max(0.0, (time.perf_counter() - before) - self.interval_s)
            self.current_s = lag
            if lag > self.max_s:
                self.max_s = lag
            self.samples += 1

    def start(self) -> None:
        """Begin sampling on the current running loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Cancel the sampler task."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    def snapshot(self) -> dict:
        """Current/max lag in milliseconds plus sample count."""
        return {
            "current_ms": round(self.current_s * 1e3, 4),
            "max_ms": round(self.max_s * 1e3, 4),
            "samples": self.samples,
        }
