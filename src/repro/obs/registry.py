"""Metric primitives: counter/gauge/histogram families in one registry.

The serving layer used to keep its counters in ad-hoc ``Counter``
blobs; every new signal meant a new field, a new snapshot key and a new
merge rule.  This module is the one vocabulary instead: a
:class:`MetricsRegistry` owns named *families* (a family = one metric
name + a fixed label set), each family owns its labelled series, and
everything renders to Prometheus text exposition format in one pass --
the ``/metrics`` endpoint, the ``stats`` op and the per-shard dumps all
read the same state.

Thread-safety: one re-entrant lock per registry, shared by its
families.  Writers (worker-pool threads, the event loop, heartbeat
threads) take it per update; readers take it per snapshot, so a
rendered exposition or a snapshot dict is internally consistent --
a histogram's ``count`` always equals the sum of its buckets.

Registration is the duplicate-name self-check: registering the same
family name twice (or two kinds under one name) raises
:class:`ValueError` at wiring time, so a metric-name collision is a
crash in CI, never two families silently interleaving in the
exposition.

Stdlib only; no dependency on the engine or the service layer (both
import *this* module, including from shard worker processes).
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Iterable

__all__ = [
    "LatencyHistogram",
    "CounterFamily",
    "GaugeFamily",
    "HistogramFamily",
    "MetricsRegistry",
]

#: Histogram range: 10 microseconds .. ~17 minutes, 16 buckets/decade.
_FLOOR_S = 1e-5
_BUCKETS_PER_DECADE = 16
_N_BUCKETS = 8 * _BUCKETS_PER_DECADE

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class LatencyHistogram:
    """Fixed-bucket log-scale latency histogram (seconds).

    Constant memory regardless of traffic; percentile reads resolve to
    a bucket's upper bound -- at 16 buckets per decade a <= ~15%
    overestimate, never an *under*-estimate.  Not thread-safe on its
    own; :class:`HistogramFamily` and
    :class:`~repro.service.metrics.ServiceMetrics` serialize access
    (standalone use in benchmarks is single-threaded).
    """

    def __init__(self):
        self._counts = [0] * _N_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    @staticmethod
    def _bucket(seconds: float) -> int:
        if seconds <= _FLOOR_S:
            return 0
        index = int(math.log10(seconds / _FLOOR_S) * _BUCKETS_PER_DECADE)
        return min(index, _N_BUCKETS - 1)

    @staticmethod
    def _upper_bound(index: int) -> float:
        return _FLOOR_S * 10.0 ** ((index + 1) / _BUCKETS_PER_DECADE)

    def record(self, seconds: float) -> None:
        """Add one observation."""
        seconds = float(seconds)
        self._counts[self._bucket(seconds)] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observations (seconds)."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Latency (seconds) at quantile ``q`` in [0, 1] (0.0 when empty).

        Returns the upper bound of the bucket holding the q-th
        observation, clamped to the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self._count:
            return 0.0
        rank = max(1, math.ceil(q * self._count))
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= rank:
                if index == _N_BUCKETS - 1:
                    return self._max  # overflow bucket: no finite bound
                return min(self._upper_bound(index), self._max)
        return self._max

    def snapshot(self) -> dict:
        """Summary dict in milliseconds (the wire/report unit)."""
        return {
            "count": self._count,
            "mean_ms": round(self.mean * 1e3, 4),
            "p50_ms": round(self.quantile(0.50) * 1e3, 4),
            "p95_ms": round(self.quantile(0.95) * 1e3, 4),
            "p99_ms": round(self.quantile(0.99) * 1e3, 4),
            "max_ms": round(self._max * 1e3, 4),
        }

    def state(self) -> dict:
        """Raw mergeable state (bucket counts, not percentiles).

        Unlike :meth:`snapshot`, this form can be summed across
        processes without losing distribution shape -- shard workers
        ship it over the RPC channel and the server merges via
        :meth:`merge_state`.
        """
        return {
            "counts": list(self._counts),
            "count": self._count,
            "sum": self._sum,
            "max": self._max,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one."""
        counts = state["counts"]
        if len(counts) != _N_BUCKETS:
            raise ValueError(
                f"histogram state has {len(counts)} buckets, expected {_N_BUCKETS}"
            )
        for index, count in enumerate(counts):
            self._counts[index] += int(count)
        self._count += int(state["count"])
        self._sum += float(state["sum"])
        self._max = max(self._max, float(state["max"]))

    # -- exposition ----------------------------------------------------
    def exposition_lines(self, name: str, label_text: str = "") -> list[str]:
        """Prometheus ``_bucket``/``_sum``/``_count`` lines.

        The final (overflow) bucket has no honest finite bound, so it
        folds into ``+Inf`` only -- a 10^9 s observation never claims to
        sit under the last finite ``le``.
        """
        lines = []
        cumulative = 0
        joiner = "," if label_text else ""
        for index in range(_N_BUCKETS - 1):
            cumulative += self._counts[index]
            bound = _format_value(self._upper_bound(index))
            lines.append(
                f'{name}_bucket{{{label_text}{joiner}le="{bound}"}} {cumulative}'
            )
        lines.append(f'{name}_bucket{{{label_text}{joiner}le="+Inf"}} {self._count}')
        suffix = f"{{{label_text}}}" if label_text else ""
        lines.append(f"{name}_sum{suffix} {_format_value(self._sum)}")
        lines.append(f"{name}_count{suffix} {self._count}")
        return lines


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class _Family:
    """One metric name + fixed label names; owns its labelled series."""

    kind = "untyped"

    def __init__(
        self, lock: threading.RLock, name: str, help: str, labelnames: tuple
    ):
        self._lock = lock
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: dict[tuple, object] = {}

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _label_text(self, key: tuple) -> str:
        return ",".join(
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        )

    def series(self) -> list[tuple[dict, object]]:
        """Every labelled series as ``(labels_dict, value)`` pairs."""
        with self._lock:
            return [
                (dict(zip(self.labelnames, key)), self._value_of(value))
                for key, value in sorted(self._series.items())
            ]

    def _value_of(self, stored):
        return stored

    def as_dict(self) -> dict:
        """``{label-value-tuple-joined: value}`` for single-label families.

        Convenience for snapshot payloads: a family with exactly one
        label collapses to ``{label_value: value}``; an unlabelled one
        to ``{"": value}``.
        """
        with self._lock:
            return {
                "|".join(key): self._value_of(value)
                for key, value in self._series.items()
            }

    def exposition_lines(self) -> list[str]:
        raise NotImplementedError


class CounterFamily(_Family):
    """Monotonic counters (one per label combination)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels) -> None:
        """Add ``amount`` (must be >= 0) to the labelled series.

        Integer amounts keep the series an ``int`` -- counter snapshots
        stay JSON-clean (``2``, not ``2.0``).
        """
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels) -> float:
        """Current value of one labelled series (0 when never written)."""
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0)

    def total(self) -> float:
        """Sum over every labelled series."""
        with self._lock:
            return sum(self._series.values())

    def exposition_lines(self) -> list[str]:
        with self._lock:
            items = sorted(self._series.items())
        lines = []
        for key, value in items:
            label_text = self._label_text(key)
            suffix = f"{{{label_text}}}" if label_text else ""
            lines.append(f"{self.name}{suffix} {_format_value(value)}")
        if not lines and not self.labelnames:
            lines.append(f"{self.name} 0")
        return lines


class GaugeFamily(_Family):
    """Point-in-time values; settable, or backed by a callback.

    A callback gauge (``fn=...``) is sampled at read time (exposition
    or :meth:`value`), so live quantities like queue depth never go
    stale between scrapes.  Callback gauges are unlabelled.
    """

    kind = "gauge"

    def __init__(
        self,
        lock: threading.RLock,
        name: str,
        help: str,
        labelnames: tuple,
        fn: Callable[[], float] | None = None,
    ):
        super().__init__(lock, name, help, labelnames)
        if fn is not None and labelnames:
            raise ValueError(
                f"callback gauge {name!r} cannot take labels {labelnames}"
            )
        self._fn = fn

    def set(self, value: float, **labels) -> None:
        """Set the labelled series to ``value``."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        """Subtract ``amount`` from the labelled series."""
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        """Current value (callback gauges sample their function)."""
        if self._fn is not None:
            return float(self._fn())
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)

    def remove(self, **labels) -> None:
        """Drop one labelled series (a departed worker, say)."""
        key = self._key(labels)
        with self._lock:
            self._series.pop(key, None)

    def exposition_lines(self) -> list[str]:
        if self._fn is not None:
            try:
                sampled = float(self._fn())
            except Exception:  # noqa: BLE001 - a probe must never kill a scrape
                return []
            return [f"{self.name} {_format_value(sampled)}"]
        with self._lock:
            items = sorted(self._series.items())
        lines = []
        for key, value in items:
            label_text = self._label_text(key)
            suffix = f"{{{label_text}}}" if label_text else ""
            lines.append(f"{self.name}{suffix} {_format_value(value)}")
        if not lines and not self.labelnames:
            lines.append(f"{self.name} 0")
        return lines


class HistogramFamily(_Family):
    """Log-bucket latency histograms, one per label combination."""

    kind = "histogram"

    def observe(self, seconds: float, **labels) -> None:
        """Record one observation into the labelled series."""
        key = self._key(labels)
        with self._lock:
            histogram = self._series.get(key)
            if histogram is None:
                histogram = self._series[key] = LatencyHistogram()
            histogram.record(seconds)

    def get(self, **labels) -> LatencyHistogram:
        """The labelled series' histogram (created on first access)."""
        key = self._key(labels)
        with self._lock:
            histogram = self._series.get(key)
            if histogram is None:
                histogram = self._series[key] = LatencyHistogram()
            return histogram

    def snapshot(self, **labels) -> dict:
        """The labelled series' summary dict (consistent under the lock)."""
        key = self._key(labels)
        with self._lock:
            histogram = self._series.get(key)
            return histogram.snapshot() if histogram else LatencyHistogram().snapshot()

    def snapshots(self) -> dict:
        """Every series' summary, keyed by joined label values."""
        with self._lock:
            return {
                "|".join(key): histogram.snapshot()
                for key, histogram in self._series.items()
            }

    def merge_state(self, state: dict, **labels) -> None:
        """Fold a :meth:`LatencyHistogram.state` into the labelled series."""
        key = self._key(labels)
        with self._lock:
            histogram = self._series.get(key)
            if histogram is None:
                histogram = self._series[key] = LatencyHistogram()
            histogram.merge_state(state)

    def _value_of(self, stored):
        return stored.snapshot()

    def exposition_lines(self) -> list[str]:
        with self._lock:
            items = [
                (key, histogram) for key, histogram in sorted(self._series.items())
            ]
            lines: list[str] = []
            for key, histogram in items:
                lines.extend(
                    histogram.exposition_lines(self.name, self._label_text(key))
                )
        if not lines and not self.labelnames:
            lines = LatencyHistogram().exposition_lines(self.name)
        return lines


class MetricsRegistry:
    """Named metric families rendering to Prometheus text exposition.

    One registry per process role: the server owns one (its ``/metrics``
    endpoint), each :class:`~repro.service.metrics.ServiceMetrics` owns
    a private one for the counters it has always carried.  Families are
    created through :meth:`counter`/:meth:`gauge`/:meth:`histogram`;
    duplicate names raise immediately (see :meth:`self_check`).
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    @property
    def lock(self) -> threading.RLock:
        """The registry-wide lock (re-entrant; shared by every family).

        Hold it to read *several* families as one consistent cut --
        family methods re-acquire it recursively, so snapshot code can
        simply wrap its reads.
        """
        return self._lock

    def _register(self, family: _Family) -> _Family:
        if not _NAME_RE.match(family.name):
            raise ValueError(f"invalid metric name {family.name!r}")
        for label in family.labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(
                    f"invalid label name {label!r} on metric {family.name!r}"
                )
        with self._lock:
            if family.name in self._families:
                raise ValueError(
                    f"metric {family.name!r} is already registered as a "
                    f"{self._families[family.name].kind}"
                )
            self._families[family.name] = family
        return family

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> CounterFamily:
        """Register and return a counter family."""
        return self._register(CounterFamily(self._lock, name, help, tuple(labelnames)))

    def gauge(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        fn: Callable[[], float] | None = None,
    ) -> GaugeFamily:
        """Register and return a gauge family (``fn`` = callback gauge)."""
        return self._register(
            GaugeFamily(self._lock, name, help, tuple(labelnames), fn=fn)
        )

    def histogram(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> HistogramFamily:
        """Register and return a histogram family."""
        return self._register(
            HistogramFamily(self._lock, name, help, tuple(labelnames))
        )

    def get(self, name: str) -> _Family | None:
        """The named family, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def names(self) -> list[str]:
        """Registered family names, sorted."""
        with self._lock:
            return sorted(self._families)

    def self_check(self) -> list[str]:
        """Re-verify the no-duplicate invariant; returns the names.

        Registration already rejects duplicates, so this can only fail
        if internal state was corrupted -- CI calls it as a cheap
        tripwire after wiring every subsystem.
        """
        with self._lock:
            names = [family.name for family in self._families.values()]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate metric families: {sorted(names)}")
        seen: set[str] = set()
        for name in names:
            for other in seen:
                if name == other:
                    raise ValueError(f"duplicate metric family {name!r}")
            seen.add(name)
        return sorted(names)

    def render(self, extra: str = "") -> str:
        """The full Prometheus text exposition (version 0.0.4).

        ``extra`` is appended verbatim -- the server uses it for
        families it derives on the fly (per-shard dumps fetched by RPC
        at scrape time).
        """
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        chunks: list[str] = []
        for family in families:
            # Headers render even for series-less families (a labelled
            # counter before its first increment): scrapers and CI can
            # assert a family exists before traffic arrives.
            if family.help:
                chunks.append(f"# HELP {family.name} {family.help}")
            chunks.append(f"# TYPE {family.name} {family.kind}")
            chunks.extend(family.exposition_lines())
        if extra:
            chunks.append(extra.rstrip("\n"))
        return "\n".join(chunks) + "\n"
