"""Request tracing: trace/span ids, timed spans, bounded span buffers.

A *trace* is one request's journey through the serving stack; a *span*
is one timed segment of it (``request``, ``queue_wait``, ``batch_wait``,
``solve``, ``rpc``, ``serialize``).  Ids are opaque hex strings minted
from ``os.urandom`` -- no coordination, no global counter, safe across
processes.

The :class:`Tracer` keeps finished spans in a fixed-size ring buffer
(:class:`collections.deque` with ``maxlen``) plus a separate slow-span
ring for spans above a configurable threshold, so memory is bounded no
matter the traffic.  A tracer constructed with ``enabled=False`` (or the
shared :data:`NULL_TRACER`) makes every call a no-op that returns a
preallocated null span -- the zero-cost-when-disabled path the serve
benchmarks assert on.

Cross-thread propagation: ``asyncio``'s ``run_in_executor`` does not
carry contextvars into pool threads, and the ``ExecutionBackend``
interface should not grow a ``trace`` argument on every method.  So the
active trace rides in a module-level ``threading.local`` instead:
the server's worker-thread closure calls :func:`activate` before
touching the backend, the backend's RPC clients read :func:`current`
when encoding a call, and the worker process re-activates the
propagated ids around execution.  Strictly per-thread, explicitly
scoped, nothing leaks between requests.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

__all__ = [
    "new_trace_id",
    "new_span_id",
    "Span",
    "Tracer",
    "NULL_TRACER",
    "activate",
    "deactivate",
    "current",
]


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id."""
    return os.urandom(8).hex()


def new_span_id() -> str:
    """A fresh 8-hex-char span id."""
    return os.urandom(4).hex()


class Span:
    """One timed segment of a trace; finished via ``end()`` or ``with``."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "start_unix_s",
        "_start_perf",
        "duration_s",
        "_tracer",
    )

    def __init__(self, tracer, name, trace_id, parent_id, attrs):
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_unix_s = time.time()
        self._start_perf = time.perf_counter()
        self.duration_s = None
        self._tracer = tracer

    def end(self, duration_s: float | None = None) -> float:
        """Finish the span; returns its duration in seconds.

        ``duration_s`` overrides the measured wall time -- used when the
        segment was timed externally (queue wait measured between two
        perf-counter stamps, say) and the span merely records it.
        """
        if self.duration_s is not None:
            return self.duration_s
        if duration_s is None:
            duration_s = time.perf_counter() - self._start_perf
        self.duration_s = duration_s
        self._tracer._finish(self)
        return duration_s

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs = dict(self.attrs, error=exc_type.__name__)
        self.end()

    def as_dict(self) -> dict:
        """JSON-safe form, durations in milliseconds."""
        out = {
            "trace": self.trace_id,
            "span": self.span_id,
            "name": self.name,
            "start_unix_s": round(self.start_unix_s, 6),
            "ms": round((self.duration_s or 0.0) * 1e3, 4),
        }
        if self.parent_id:
            out["parent"] = self.parent_id
        if self.attrs:
            out.update(self.attrs)
        return out


class _NullSpan:
    """Inert span: every operation is a no-op; shared singleton."""

    __slots__ = ()
    name = ""
    trace_id = ""
    span_id = ""
    parent_id = ""
    duration_s = 0.0

    def end(self, duration_s=None):
        return 0.0

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return None

    def as_dict(self):
        return {}


_NULL_SPAN = _NullSpan()


class Tracer:
    """Bounded span collector; one per process role (server, worker).

    ``capacity`` bounds the recent-span ring, ``slow_capacity`` the
    slow-span ring (spans whose duration >= ``slow_threshold_s``).
    Disabled tracers (``enabled=False``) skip all bookkeeping and hand
    out a shared null span -- call sites need no branches.
    """

    def __init__(
        self,
        capacity: int = 512,
        slow_threshold_s: float = 1.0,
        slow_capacity: int = 64,
        enabled: bool = True,
    ):
        self.enabled = bool(enabled)
        self.slow_threshold_s = float(slow_threshold_s)
        self._spans: deque = deque(maxlen=int(capacity))
        self._slow: deque = deque(maxlen=int(slow_capacity))
        self._count = 0
        self._slow_count = 0
        self._lock = threading.Lock()

    def span(self, name: str, trace_id: str | None = None, parent_id: str = "", **attrs):
        """Start a span (mints a trace id when none is given)."""
        if not self.enabled:
            return _NULL_SPAN
        if trace_id is None:
            trace_id = new_trace_id()
        return Span(self, name, trace_id, parent_id, attrs)

    def record(
        self,
        name: str,
        trace_id: str,
        duration_s: float,
        parent_id: str = "",
        start_unix_s: float | None = None,
        **attrs,
    ) -> None:
        """Record an externally-timed segment as a finished span."""
        if not self.enabled:
            return
        span = Span(self, name, trace_id, parent_id, attrs)
        if start_unix_s is not None:
            span.start_unix_s = start_unix_s
        span.duration_s = float(duration_s)
        self._finish(span)

    def _finish(self, span: Span) -> None:
        entry = span.as_dict()
        with self._lock:
            self._count += 1
            self._spans.append(entry)
            if span.duration_s >= self.slow_threshold_s:
                self._slow_count += 1
                self._slow.append(entry)

    @property
    def count(self) -> int:
        """Total spans recorded since start (not bounded by the ring)."""
        with self._lock:
            return self._count

    @property
    def slow_count(self) -> int:
        """Total spans at or above the slow threshold since start."""
        with self._lock:
            return self._slow_count

    def recent(self, limit: int | None = None) -> list[dict]:
        """Newest-last recent spans (up to ``limit``)."""
        with self._lock:
            spans = list(self._spans)
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return spans

    def slow(self, limit: int | None = None) -> list[dict]:
        """Newest-last slow spans (up to ``limit``)."""
        with self._lock:
            spans = list(self._slow)
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return spans

    def trace(self, trace_id: str) -> list[dict]:
        """Every buffered span for one trace id, oldest first."""
        with self._lock:
            return [span for span in self._spans if span["trace"] == trace_id]

    def stats(self) -> dict:
        """Span-buffer summary for the ``stats`` op."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "count": self._count,
                "buffered": len(self._spans),
                "slow_count": self._slow_count,
                "slow_threshold_ms": round(self.slow_threshold_s * 1e3, 3),
            }

    def clear(self) -> None:
        """Drop buffered spans (totals keep counting)."""
        with self._lock:
            self._spans.clear()
            self._slow.clear()


#: Shared disabled tracer: hand this to components when tracing is off.
NULL_TRACER = Tracer(capacity=1, slow_capacity=1, enabled=False)


# -- cross-thread propagation ------------------------------------------
_ACTIVE = threading.local()


def activate(tracer: Tracer, trace_id: str, parent_id: str = "") -> tuple | None:
    """Install the active trace for this thread; returns the prior one.

    Pass the return value to :func:`deactivate` (try/finally) so nested
    activations restore correctly and nothing leaks across pool-thread
    reuse.
    """
    previous = getattr(_ACTIVE, "ctx", None)
    _ACTIVE.ctx = (tracer, trace_id, parent_id)
    return previous


def deactivate(previous: tuple | None) -> None:
    """Restore the prior active trace (or clear it)."""
    if previous is None:
        _ACTIVE.ctx = None
    else:
        _ACTIVE.ctx = previous


def current() -> tuple | None:
    """This thread's ``(tracer, trace_id, parent_id)``, or ``None``."""
    return getattr(_ACTIVE, "ctx", None)
