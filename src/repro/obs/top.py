"""``repro top`` and ``repro stats``: terminal views over the stats op.

Both commands speak the ordinary service protocol through
:class:`~repro.service.client.ServiceClient` -- no privileged channel,
so they work against any running ``repro serve`` regardless of backend.
``repro stats`` is one ``stats`` request pretty-printed; ``repro top``
polls it and renders a live one-screen summary (sessions, steps/s
derived from successive snapshots, latency percentiles, per-shard or
per-worker health), refreshing in place.
"""

from __future__ import annotations

import json
import sys
import time

__all__ = ["fetch_stats", "run_stats", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def fetch_stats(host: str, port: int, spans: int = 0, timeout: float = 30.0) -> dict:
    """One ``stats`` round trip (``spans`` > 0 asks for recent spans)."""
    from ..service.client import ServiceClient
    from ..service.protocol import Request

    with ServiceClient(host, port, timeout=timeout) as client:
        extra = {"spans": int(spans)} if spans else {}
        return client.request(Request(op="stats", extra=extra))


def run_stats(host: str, port: int, spans: int = 0, stream=None) -> int:
    """The ``repro stats`` body: fetch once, pretty-print as JSON."""
    stream = stream if stream is not None else sys.stdout
    stats = fetch_stats(host, port, spans=spans)
    print(json.dumps(stats, indent=2, sort_keys=True), file=stream, flush=True)
    return 0


def _rate(now: dict, before: dict | None, key: str, elapsed_s: float) -> float:
    if before is None or elapsed_s <= 0:
        return 0.0
    return max(0.0, (now.get(key, 0) - before.get(key, 0)) / elapsed_s)


def _health_rows(stats: dict) -> list[str]:
    shards = stats.get("shards")
    if not shards:
        return ["  backend: in-process (no shard workers)"]
    lines = [
        f"  shards: {shards.get('alive', 0)}/{shards.get('count', 0)} alive"
    ]
    for row in shards.get("per_shard", []):
        label = row.get("worker") or f"shard {row.get('shard')}"
        if row.get("alive"):
            health = row.get("health") or {}
            rpc = (health.get("rpc_latency") or {})
            detail = (
                f"up    sessions={row.get('sessions', 0):<5} "
                f"inflight={health.get('inflight', 0):<3} "
                f"rpc_p99={rpc.get('p99_ms', 0.0):>8.2f}ms "
                f"hb_age={health.get('heartbeat_age_s', 0.0):>5.1f}s"
            )
            if row.get("draining"):
                detail += " DRAINING"
        else:
            detail = f"DOWN  lost_sessions={row.get('lost_sessions', 0)}"
        lines.append(f"    {label:<24} {detail}")
    return lines


def render_screen(
    stats: dict, before: dict | None, elapsed_s: float, address: str
) -> str:
    """One ``repro top`` frame as text (pure; tested without a TTY)."""
    sessions = stats.get("sessions", {})
    latency = stats.get("step_latency", {})
    requests = stats.get("requests", {})
    prior_requests = (before or {}).get("requests", {})
    steps_rate = _rate(requests, prior_requests, "step", elapsed_s)
    opens_rate = _rate(requests, prior_requests, "open", elapsed_s)
    errors = stats.get("errors", {})
    failures = stats.get("failures", {})
    server = stats.get("server", {})
    loop = stats.get("event_loop") or {}
    spans = stats.get("tracing") or {}
    lines = [
        f"repro top — {address}   "
        f"{'DRAINING' if server.get('draining') else 'serving'}   "
        f"connections={server.get('connections', 0)} "
        f"workers={server.get('workers', 0)} shards={server.get('shards', 0)}",
        "",
        f"  sessions  open={sessions.get('open', 0):<6} "
        f"resident={sessions.get('resident', 0):<6} "
        f"stored={sessions.get('stored', 0):<6} "
        f"evicted={sessions.get('evicted', 0):<6} "
        f"restored={sessions.get('restored', 0)}",
        f"  traffic   steps/s={steps_rate:>8.1f}  opens/s={opens_rate:>6.1f}  "
        f"errors={sum(errors.values())}  "
        f"lost={failures.get('sessions_lost', 0)} "
        f"worker_down={failures.get('worker_down', 0)} "
        f"shard_down={failures.get('shard_down', 0)}",
        f"  latency   p50={latency.get('p50_ms', 0.0):>8.2f}ms  "
        f"p95={latency.get('p95_ms', 0.0):>8.2f}ms  "
        f"p99={latency.get('p99_ms', 0.0):>8.2f}ms  "
        f"max={latency.get('max_ms', 0.0):>8.2f}ms  "
        f"(n={latency.get('count', 0)})",
    ]
    if loop:
        lines.append(
            f"  loop lag  now={loop.get('current_ms', 0.0):>6.2f}ms  "
            f"max={loop.get('max_ms', 0.0):>6.2f}ms"
        )
    if spans:
        lines.append(
            f"  tracing   spans={spans.get('count', 0)}  "
            f"slow={spans.get('slow_count', 0)} "
            f"(>{spans.get('slow_threshold_ms', 0.0):.0f}ms)"
        )
    lines.append("")
    lines.extend(_health_rows(stats))
    return "\n".join(lines) + "\n"


def run_top(
    host: str,
    port: int,
    interval_s: float = 2.0,
    iterations: int | None = None,
    stream=None,
) -> int:
    """The ``repro top`` body: poll ``stats`` and redraw until Ctrl+C."""
    from ..service.client import ServiceClient
    from ..service.protocol import Request

    stream = stream if stream is not None else sys.stdout
    address = f"{host}:{port}"
    before: dict | None = None
    before_t = time.perf_counter()
    done = 0
    try:
        with ServiceClient(host, port, timeout=max(30.0, interval_s * 2)) as client:
            while iterations is None or done < iterations:
                stats = client.request(Request(op="stats"))
                now_t = time.perf_counter()
                frame = render_screen(stats, before, now_t - before_t, address)
                clear = _CLEAR if stream.isatty() else ""
                print(clear + frame, file=stream, flush=True, end="")
                before, before_t = stats, now_t
                done += 1
                if iterations is None or done < iterations:
                    time.sleep(interval_s)
    except KeyboardInterrupt:
        pass
    return 0
