"""Minimal asyncio HTTP/1.1 listener for metrics exposition and probes.

Serves exactly three read-only paths:

- ``/metrics`` -- Prometheus text exposition (version 0.0.4).  The
  render callback may do real work (per-shard stats RPCs), so it runs
  in the loop's default thread-pool executor, never on the loop.
- ``/healthz`` -- liveness: 200 as long as the process serves sockets.
- ``/readyz``  -- readiness: 200/503 from a callback that must consult
  only *local* state (handle ``alive`` flags, heartbeat ages) -- a
  readiness probe that does RPCs would turn a slow worker into a
  cascading outage.

Stdlib only, GET only, one response per connection (``Connection:
close``) -- deliberately not a web framework.  Binding port 0 picks a
free port; the bound port is in ``.port`` after ``start()`` so smoke
tests and the serve announce line can report it.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

__all__ = ["ObsHttpServer"]

_MAX_REQUEST_BYTES = 8192
_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ObsHttpServer:
    """The ``/metrics`` + ``/healthz`` + ``/readyz`` listener."""

    def __init__(
        self,
        host: str,
        port: int,
        render_metrics: Callable[[], Awaitable[str] | str] | None = None,
        readiness: Callable[[], tuple[bool, str]] | None = None,
    ):
        self.host = host
        self.port = port
        self._render_metrics = render_metrics
        self._readiness = readiness
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and begin serving; updates ``.port`` when it was 0."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request_line = await asyncio.wait_for(
                    reader.readline(), timeout=10.0
                )
            except (asyncio.TimeoutError, ConnectionError):
                return
            if not request_line or len(request_line) > _MAX_REQUEST_BYTES:
                return
            parts = request_line.decode("latin-1", "replace").split()
            if len(parts) < 2:
                await self._respond(writer, 400, "bad request\n")
                return
            method, path = parts[0], parts[1].split("?", 1)[0]
            # Drain headers; bodies are not accepted on any path.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if not line or line in (b"\r\n", b"\n"):
                    break
            if method not in ("GET", "HEAD"):
                await self._respond(writer, 405, "method not allowed\n")
                return
            if path == "/healthz":
                await self._respond(writer, 200, "ok\n")
            elif path == "/readyz":
                ready, detail = (True, "ok")
                if self._readiness is not None:
                    try:
                        ready, detail = self._readiness()
                    except Exception as exc:  # noqa: BLE001
                        ready, detail = False, f"readiness check failed: {exc}"
                await self._respond(
                    writer, 200 if ready else 503, f"{detail}\n"
                )
            elif path == "/metrics":
                if self._render_metrics is None:
                    await self._respond(writer, 404, "metrics disabled\n")
                    return
                try:
                    body = self._render_metrics()
                    if asyncio.iscoroutine(body):
                        body = await body
                except Exception as exc:  # noqa: BLE001 - scrape must not kill serving
                    await self._respond(writer, 500, f"render failed: {exc}\n")
                    return
                await self._respond(
                    writer, 200, body, content_type=_PROM_CONTENT_TYPE
                )
            else:
                await self._respond(writer, 404, "not found\n")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        reason = {
            200: "OK",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "Unknown")
        payload = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()
