"""Observability for the serving stack: tracing, metrics, exposition.

The serving path spans four layers -- asyncio server, thread-pool
executor / step batcher, shard-process pool, multi-host cluster -- and
before this package the only window into it was one counter blob behind
the ``stats`` op.  This package is the telemetry layer all of them now
share, stdlib-only and import-light (nothing here imports the engine or
the service, so shard workers and cluster workers use it too without
cycles).

Architecture::

    request (JSONL/TCP)                         repro serve --metrics-port
      -> server.py  mints trace_id ──────────┐    -> obs.http  GET /metrics
           │  span: request, serialize       │         │  /healthz /readyz
           ▼                                 │         ▼
         executor.py / StepBatcher           │    obs.registry.render()
           │  span: queue_wait, batch_wait   │      counters/gauges/
           ▼                                 │      histograms, one lock,
         ExecutionBackend                    │      Prometheus text 0.0.4
           │  ShardPool / ClusterBackend     │
           │  span: rpc (trace rides the     │    stats op («spans»: N)
           │  typed codec's optional         │      -> obs.trace ring
           │  "trace" frame field)           │         buffers (recent,
           ▼                                 │         slow) + totals
         worker process                      │
              span: solver (worker-local ────┘    repro top / repro stats
              tracer, propagated ids)               -> obs.top over the
                                                       ordinary client

    obs.registry  metric families (counter/gauge/histogram) in one
                  MetricsRegistry; duplicate names raise at wiring
                  time; renders Prometheus text exposition.  Also home
                  of LatencyHistogram (log-bucket, mergeable across
                  processes), re-exported by repro.service.metrics.
    obs.trace     trace/span ids, bounded span ring buffers, slow-span
                  log, and the thread-local active-trace context that
                  carries a request's identity across executor threads
                  and into RPC encoders without widening any backend
                  signature.
    obs.probe     event-loop scheduling-lag sampler (current/max gauges).
    obs.http      the stdlib asyncio listener behind --metrics-port:
                  /metrics, /healthz, /readyz (readiness from local
                  worker-health state only -- never RPCs).
    obs.top       `repro top` live terminal view and `repro stats`
                  one-shot dump, both over the normal service client.

Cost model: tracing is a few microseconds per request (id mint + ring
append) and is on by default; constructing a disabled tracer
(``ServerConfig(trace=False)`` / :data:`~repro.obs.trace.NULL_TRACER`)
turns every call site into a no-op returning a shared null span, and
the exposition listener simply does not start without
``--metrics-port`` -- the configuration the perf smoke holds to within
noise of the pre-instrumentation baseline.
"""

from .http import ObsHttpServer
from .probe import EventLoopLagProbe
from .registry import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    LatencyHistogram,
    MetricsRegistry,
)
from .trace import NULL_TRACER, Span, Tracer, new_span_id, new_trace_id
from .top import fetch_stats, run_stats, run_top

__all__ = [
    "CounterFamily",
    "EventLoopLagProbe",
    "GaugeFamily",
    "HistogramFamily",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "ObsHttpServer",
    "Span",
    "Tracer",
    "fetch_stats",
    "new_span_id",
    "new_trace_id",
    "run_stats",
    "run_top",
]
