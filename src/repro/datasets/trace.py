"""GPS trace containers.

A trace is a time-ordered sequence of (latitude, longitude, seconds)
samples, mirroring Geolife's "series of tuples containing latitude,
longitude and timestamp".  Traces support resampling to a fixed interval,
which is how irregular GPS logs become the fixed-timestep trajectories the
Markov model needs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import DatasetError
from ..geo.distance import haversine_km


@dataclass(frozen=True, order=True)
class GPSPoint:
    """One GPS sample: position in degrees, time in seconds from epoch."""

    time_s: float
    latitude: float
    longitude: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude <= 90.0:
            raise DatasetError(f"latitude {self.latitude!r} out of [-90, 90]")
        if not -180.0 <= self.longitude <= 180.0:
            raise DatasetError(f"longitude {self.longitude!r} out of [-180, 180]")

    def distance_km(self, other: "GPSPoint") -> float:
        """Great-circle distance to another point."""
        return haversine_km(self.latitude, self.longitude, other.latitude, other.longitude)


class GPSTrace:
    """A time-sorted sequence of GPS points for a single user."""

    def __init__(self, points: Sequence[GPSPoint], user_id: str = "user"):
        if not points:
            raise DatasetError("a trace needs at least one point")
        self._points = tuple(sorted(points))
        times = [p.time_s for p in self._points]
        if len(set(times)) != len(times):
            raise DatasetError("trace contains duplicate timestamps")
        self.user_id = str(user_id)

    # ------------------------------------------------------------------
    # sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[GPSPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> GPSPoint:
        return self._points[index]

    @property
    def points(self) -> tuple[GPSPoint, ...]:
        """All points, time-ordered."""
        return self._points

    @property
    def duration_s(self) -> float:
        """Elapsed seconds between first and last sample."""
        return self._points[-1].time_s - self._points[0].time_s

    def total_distance_km(self) -> float:
        """Sum of great-circle leg lengths."""
        return sum(
            a.distance_km(b) for a, b in zip(self._points[:-1], self._points[1:])
        )

    def bounding_box(self) -> tuple[float, float, float, float]:
        """(min_lat, min_lon, max_lat, max_lon) of the trace."""
        lats = [p.latitude for p in self._points]
        lons = [p.longitude for p in self._points]
        return (min(lats), min(lons), max(lats), max(lons))

    # ------------------------------------------------------------------
    # resampling
    # ------------------------------------------------------------------
    def point_at(self, time_s: float) -> GPSPoint:
        """Linearly interpolated position at an absolute time.

        Clamps to the endpoints outside the trace's span.
        """
        times = [p.time_s for p in self._points]
        if time_s <= times[0]:
            return self._points[0]
        if time_s >= times[-1]:
            return self._points[-1]
        hi = bisect.bisect_right(times, time_s)
        lo = hi - 1
        a, b = self._points[lo], self._points[hi]
        span = b.time_s - a.time_s
        w = (time_s - a.time_s) / span if span > 0 else 0.0
        return GPSPoint(
            time_s=time_s,
            latitude=a.latitude + w * (b.latitude - a.latitude),
            longitude=a.longitude + w * (b.longitude - a.longitude),
        )

    def resample(self, interval_s: float) -> "GPSTrace":
        """Fixed-interval resampling by linear interpolation.

        Produces one point every ``interval_s`` seconds from the first
        sample to (at least) the last.  This is the standard preprocessing
        step turning raw GPS logs into the per-timestamp locations
        ``u_1..u_T`` of the paper's model.
        """
        if interval_s <= 0:
            raise DatasetError(f"interval_s must be positive, got {interval_s!r}")
        start = self._points[0].time_s
        end = self._points[-1].time_s
        n_samples = max(2, int((end - start) / interval_s) + 1)
        sampled = [self.point_at(start + k * interval_s) for k in range(n_samples)]
        # Interpolation preserves strictly increasing times by construction,
        # except for degenerate single-point traces which clamp; dedupe those.
        unique: list[GPSPoint] = []
        seen: set[float] = set()
        for point in sampled:
            if point.time_s not in seen:
                seen.add(point.time_s)
                unique.append(point)
        return GPSTrace(unique, user_id=self.user_id)
