"""Geolife dataset: loader for the real data, simulator as substitute.

The paper trains its Markov model on the Geolife GPS dataset (Zheng et
al., 182 users around Beijing).  Two paths are provided:

* :func:`load_geolife_directory` parses the dataset's PLT files if a copy
  is present on disk.
* :class:`GeolifeSimulator` generates *Geolife-like* traces when the real
  data is unavailable (the case in this offline reproduction -- see
  DESIGN.md §4).  Users commute between home/work/errand anchor points on
  a city-scale box around Beijing, with speed-limited movement, dwell
  times and GPS jitter.  What the downstream pipeline consumes is only the
  trained transition matrix; anchored commuting reproduces the property
  that drives the paper's results -- strongly patterned, sparse transition
  structure on a km grid.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

import numpy as np

from .._validation import resolve_rng
from ..errors import DatasetError
from ..geo.distance import EARTH_RADIUS_KM
from .trace import GPSPoint, GPSTrace

#: Approximate centre of the Geolife collection area (Beijing).
BEIJING_LAT = 39.9042
BEIJING_LON = 116.4074

#: PLT timestamps are days since this epoch (Excel/Lotus convention);
#: we only need differences so the absolute origin is irrelevant.
_SECONDS_PER_DAY = 86_400.0


def load_plt_file(path: str, user_id: str = "user") -> GPSTrace:
    """Parse one Geolife PLT file into a trace.

    PLT format: six header lines, then CSV rows
    ``lat,lon,0,altitude,days,date,time``.
    """
    points = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for line in lines[6:]:
        parts = line.strip().split(",")
        if len(parts) < 5:
            continue
        try:
            lat = float(parts[0])
            lon = float(parts[1])
            days = float(parts[4])
        except ValueError:
            continue
        points.append(GPSPoint(time_s=days * _SECONDS_PER_DAY, latitude=lat, longitude=lon))
    if not points:
        raise DatasetError(f"no GPS points parsed from {path!r}")
    # Geolife occasionally repeats a timestamp; keep the first occurrence.
    unique: dict[float, GPSPoint] = {}
    for point in points:
        unique.setdefault(point.time_s, point)
    return GPSTrace(sorted(unique.values()), user_id=user_id)


def load_geolife_directory(root: str, max_users: int | None = None) -> list[GPSTrace]:
    """Load Geolife traces from ``root/Data/<user>/Trajectory/*.plt``.

    Returns one concatenated trace per user (the paper uses "the user's
    entire trajectory" to train the transition matrix).
    """
    data_dir = os.path.join(root, "Data")
    if not os.path.isdir(data_dir):
        raise DatasetError(f"{data_dir!r} does not exist; is {root!r} a Geolife root?")
    traces = []
    users = sorted(os.listdir(data_dir))
    if max_users is not None:
        users = users[:max_users]
    for user in users:
        traj_dir = os.path.join(data_dir, user, "Trajectory")
        if not os.path.isdir(traj_dir):
            continue
        points: list[GPSPoint] = []
        for name in sorted(os.listdir(traj_dir)):
            if not name.endswith(".plt"):
                continue
            try:
                trace = load_plt_file(os.path.join(traj_dir, name), user_id=user)
            except DatasetError:
                continue
            points.extend(trace.points)
        if points:
            unique: dict[float, GPSPoint] = {}
            for point in points:
                unique.setdefault(point.time_s, point)
            traces.append(GPSTrace(sorted(unique.values()), user_id=user))
    if not traces:
        raise DatasetError(f"no usable traces under {root!r}")
    return traces


@dataclass(frozen=True)
class _Anchor:
    """A recurring destination with a dwell time."""

    latitude: float
    longitude: float
    dwell_steps: int


class GeolifeSimulator:
    """Synthetic Geolife-like trace generator (documented substitute).

    Each simulated user owns a small set of anchors -- home, work and a
    few errand locations -- placed within ``extent_km`` of the Beijing
    centre.  A day consists of dwelling at an anchor, then travelling to
    the next anchor along the straight line at a bounded speed, with
    Gaussian GPS jitter on every emitted sample.  Sampling is one point
    per ``interval_s`` seconds, already regular, so downstream
    discretization needs no resampling.

    Parameters
    ----------
    extent_km:
        Radius of the simulated city area.
    interval_s:
        Sampling interval of the emitted traces (Geolife's dense logs are
        typically resampled to minutes for mobility modelling).
    speed_kmh:
        Travel speed between anchors.
    jitter_km:
        Standard deviation of per-sample GPS noise.
    """

    def __init__(
        self,
        extent_km: float = 10.0,
        interval_s: float = 300.0,
        speed_kmh: float = 25.0,
        jitter_km: float = 0.05,
    ):
        if extent_km <= 0 or interval_s <= 0 or speed_kmh <= 0 or jitter_km < 0:
            raise DatasetError("simulator parameters must be positive (jitter >= 0)")
        self.extent_km = float(extent_km)
        self.interval_s = float(interval_s)
        self.speed_kmh = float(speed_kmh)
        self.jitter_km = float(jitter_km)

    # ------------------------------------------------------------------
    # coordinate helpers
    # ------------------------------------------------------------------
    def _offset_to_latlon(self, x_km: float, y_km: float) -> tuple[float, float]:
        """Planar km offsets from the Beijing centre to (lat, lon)."""
        lat = BEIJING_LAT + math.degrees(y_km / EARTH_RADIUS_KM)
        lon = BEIJING_LON + math.degrees(
            x_km / (EARTH_RADIUS_KM * math.cos(math.radians(BEIJING_LAT)))
        )
        return lat, lon

    def _random_anchor(self, rng: np.random.Generator, dwell_steps: int) -> _Anchor:
        radius = self.extent_km * math.sqrt(rng.uniform())
        angle = rng.uniform(0.0, 2.0 * math.pi)
        lat, lon = self._offset_to_latlon(radius * math.cos(angle), radius * math.sin(angle))
        return _Anchor(latitude=lat, longitude=lon, dwell_steps=dwell_steps)

    # ------------------------------------------------------------------
    # generation
    # ------------------------------------------------------------------
    def simulate_user(
        self,
        n_days: int = 5,
        n_errands: int = 2,
        user_id: str = "sim-user",
        rng=None,
    ) -> GPSTrace:
        """Simulate one user's multi-day trace.

        The daily routine is home -> work -> (occasional errand) -> home,
        the canonical "regularly commuting between Address 1 and Address 2
        every morning and afternoon" secret from the paper's introduction.
        """
        if n_days < 1:
            raise DatasetError(f"n_days must be >= 1, got {n_days!r}")
        generator = resolve_rng(rng)
        steps_per_hour = max(1, int(round(3600.0 / self.interval_s)))
        home = self._random_anchor(generator, dwell_steps=10 * steps_per_hour)
        work = self._random_anchor(generator, dwell_steps=8 * steps_per_hour)
        errands = [
            self._random_anchor(generator, dwell_steps=1 * steps_per_hour)
            for _ in range(max(0, int(n_errands)))
        ]

        points: list[GPSPoint] = []
        time_s = 0.0

        def emit(lat: float, lon: float) -> None:
            nonlocal time_s
            jitter_lat = generator.normal(0.0, self.jitter_km) / 111.0
            jitter_lon = generator.normal(0.0, self.jitter_km) / (
                111.0 * math.cos(math.radians(BEIJING_LAT))
            )
            points.append(
                GPSPoint(
                    time_s=time_s,
                    latitude=max(-90.0, min(90.0, lat + jitter_lat)),
                    longitude=max(-180.0, min(180.0, lon + jitter_lon)),
                )
            )
            time_s += self.interval_s

        def travel(src: _Anchor, dst: _Anchor) -> None:
            dist_km = haversine(src, dst)
            km_per_step = self.speed_kmh * self.interval_s / 3600.0
            n_steps = max(1, int(math.ceil(dist_km / km_per_step)))
            for k in range(1, n_steps + 1):
                w = k / n_steps
                emit(
                    src.latitude + w * (dst.latitude - src.latitude),
                    src.longitude + w * (dst.longitude - src.longitude),
                )

        def haversine(a: _Anchor, b: _Anchor) -> float:
            return GPSPoint(0.0, a.latitude, a.longitude).distance_km(
                GPSPoint(1.0, b.latitude, b.longitude)
            )

        def dwell(anchor: _Anchor) -> None:
            for _ in range(anchor.dwell_steps):
                emit(anchor.latitude, anchor.longitude)

        for _ in range(int(n_days)):
            dwell(home)
            travel(home, work)
            dwell(work)
            if errands and generator.uniform() < 0.5:
                errand = errands[int(generator.integers(len(errands)))]
                travel(work, errand)
                dwell(errand)
                travel(errand, home)
            else:
                travel(work, home)
        return GPSTrace(points, user_id=user_id)

    def simulate_users(self, n_users: int, n_days: int = 5, rng=None) -> list[GPSTrace]:
        """Simulate several independent users."""
        if n_users < 1:
            raise DatasetError(f"n_users must be >= 1, got {n_users!r}")
        generator = resolve_rng(rng)
        return [
            self.simulate_user(n_days=n_days, user_id=f"sim-user-{k:03d}", rng=generator)
            for k in range(int(n_users))
        ]
