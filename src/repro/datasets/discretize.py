"""Discretizing GPS traces onto grid maps.

The quantification pipeline consumes *cell trajectories*; these helpers
build a km-scale grid covering a set of traces (local equirectangular
projection around the traces' centroid) and map each GPS point to its cell.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import DatasetError
from ..geo.distance import EARTH_RADIUS_KM
from ..geo.grid import GridMap
from .trace import GPSTrace


def _project_km(
    latitude: float, longitude: float, ref_lat: float, ref_lon: float
) -> tuple[float, float]:
    """Local equirectangular projection to planar km around a reference.

    Accurate to well under a cell width for city-scale extents, which is
    all the grid discretization needs.
    """
    x = math.radians(longitude - ref_lon) * EARTH_RADIUS_KM * math.cos(
        math.radians(ref_lat)
    )
    y = math.radians(latitude - ref_lat) * EARTH_RADIUS_KM
    return x, y


def grid_for_traces(
    traces: Sequence[GPSTrace],
    cell_size_km: float = 1.0,
    max_cells: int = 10_000,
) -> tuple[GridMap, tuple[float, float]]:
    """Build a grid covering every trace; returns (grid, (ref_lat, ref_lon)).

    The reference point anchors the projection used by
    :func:`discretize_trace`; pass both results together.
    """
    if not traces:
        raise DatasetError("grid_for_traces needs at least one trace")
    if cell_size_km <= 0:
        raise DatasetError(f"cell_size_km must be positive, got {cell_size_km!r}")

    boxes = [trace.bounding_box() for trace in traces]
    min_lat = min(b[0] for b in boxes)
    min_lon = min(b[1] for b in boxes)
    max_lat = max(b[2] for b in boxes)
    max_lon = max(b[3] for b in boxes)
    ref_lat = (min_lat + max_lat) / 2.0
    ref_lon = (min_lon + max_lon) / 2.0

    x_min, y_min = _project_km(min_lat, min_lon, ref_lat, ref_lon)
    x_max, y_max = _project_km(max_lat, max_lon, ref_lat, ref_lon)
    n_cols = max(1, int(math.ceil((x_max - x_min) / cell_size_km)) + 1)
    n_rows = max(1, int(math.ceil((y_max - y_min) / cell_size_km)) + 1)
    if n_rows * n_cols > max_cells:
        raise DatasetError(
            f"grid would have {n_rows * n_cols} cells (> max_cells={max_cells}); "
            "increase cell_size_km"
        )
    grid = GridMap(
        n_rows=n_rows,
        n_cols=n_cols,
        cell_size_km=cell_size_km,
        origin_km=(x_min, y_min),
    )
    return grid, (ref_lat, ref_lon)


def discretize_trace(
    trace: GPSTrace,
    grid: GridMap,
    reference: tuple[float, float],
    interval_s: float | None = None,
) -> list[int]:
    """Map a trace to a cell trajectory on ``grid``.

    Parameters
    ----------
    trace:
        The GPS trace.
    grid:
        Grid built by :func:`grid_for_traces` (or compatible).
    reference:
        The (lat, lon) projection anchor returned by
        :func:`grid_for_traces`.
    interval_s:
        If given, the trace is resampled to this fixed interval first so
        the output has one cell per model timestamp.
    """
    ref_lat, ref_lon = reference
    if interval_s is not None:
        trace = trace.resample(interval_s)
    cells = []
    for point in trace:
        x, y = _project_km(point.latitude, point.longitude, ref_lat, ref_lon)
        cells.append(grid.nearest_cell(x, y))
    return cells
