"""Data substrate: GPS traces, the Geolife substitute and discretization.

The paper evaluates on the Geolife dataset (182 users, Beijing, lat/lon
GPS tuples).  That dataset is not shipped here, so this package provides:

* :class:`GPSTrace` / :class:`GPSPoint` -- raw trace containers,
* :class:`GeolifeSimulator` -- a documented substitute generating
  commute-anchored synthetic traces around Beijing (see DESIGN.md §4),
* :func:`load_geolife_directory` -- a loader for the real dataset's PLT
  format, used automatically when the data is available,
* grid discretization turning traces into cell trajectories for training.
"""

from .discretize import discretize_trace, grid_for_traces
from .geolife import GeolifeSimulator, load_geolife_directory, load_plt_file
from .trace import GPSPoint, GPSTrace

__all__ = [
    "GPSPoint",
    "GPSTrace",
    "GeolifeSimulator",
    "load_geolife_directory",
    "load_plt_file",
    "discretize_trace",
    "grid_for_traces",
]
