"""Scenario admission: allowlist plus a validated-spec LRU.

The serving layer accepts scenario definitions from the network (the
``open`` op's inline ``scenario`` object), so two concerns live here:

* **Admission policy** -- an optional allowlist of spec digests.  A
  server started with ``repro serve --scenario FILE`` admits exactly the
  preloaded specs (any byte-identical re-submission matches by digest);
  ``allow_any=True`` (``--allow-any-scenario``) opens the gate to
  arbitrary well-formed specs.
* **Validated-spec LRU** -- parsing and validating a spec payload is
  pure overhead when the same scenario is opened thousands of times, so
  admitted specs are cached keyed by the *raw payload's* canonical JSON.
  The cache only memoizes validation; model interning (the expensive
  part) happens per-digest inside :class:`~repro.engine.SessionManager`.

Thread-safe: admission may run on the event loop or worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable

from ..errors import ScenarioError
from .spec import ScenarioSpec, spec_digest


class ScenarioRegistry:
    """Admission gate for inline scenario specs.

    Parameters
    ----------
    scenarios:
        Specs preloaded at startup; their digests form the allowlist.
    allow_any:
        When True the allowlist is bypassed and any well-formed spec is
        admitted (subject to the LRU bound on cached validations).
    max_cached:
        Validated-spec LRU capacity (evicted specs are simply
        re-validated on their next submission).
    """

    def __init__(
        self,
        scenarios: Iterable[ScenarioSpec] = (),
        allow_any: bool = False,
        max_cached: int = 64,
    ):
        if max_cached < 1:
            raise ScenarioError(f"max_cached must be >= 1, got {max_cached!r}")
        self._allow_any = bool(allow_any)
        self._allowlist: dict[str, ScenarioSpec] = {}
        self._cache: OrderedDict[str, ScenarioSpec] = OrderedDict()
        self._max_cached = int(max_cached)
        self._lock = threading.Lock()
        for spec in scenarios:
            self.preload(spec)

    def preload(self, spec: ScenarioSpec) -> str:
        """Add a spec to the allowlist; returns its digest."""
        if not isinstance(spec, ScenarioSpec):
            spec = ScenarioSpec.from_json(spec)
        digest = spec.digest()
        with self._lock:
            self._allowlist[digest] = spec
        return digest

    @property
    def allow_any(self) -> bool:
        """Whether arbitrary well-formed specs are admitted."""
        return self._allow_any

    def allowlisted(self) -> list[str]:
        """Digests currently on the allowlist."""
        with self._lock:
            return list(self._allowlist)

    def cached_count(self) -> int:
        """Number of validated specs in the LRU."""
        with self._lock:
            return len(self._cache)

    def admit(self, payload) -> ScenarioSpec:
        """Validate one inline scenario payload and enforce the policy.

        ``payload`` is the raw JSON object off the wire (or an already
        constructed :class:`ScenarioSpec`).  Returns the validated spec;
        raises :class:`~repro.errors.ScenarioError` for malformed specs
        and for digests outside the allowlist.
        """
        if isinstance(payload, ScenarioSpec):
            spec = payload
            key = spec_digest(spec.to_json())
        else:
            try:
                key = spec_digest(payload)
            except (TypeError, ValueError) as error:
                raise ScenarioError(
                    f"scenario payload is not JSON-serializable: {error}"
                ) from None
            with self._lock:
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    return cached
            spec = ScenarioSpec.from_json(payload)
        digest = spec.digest()
        with self._lock:
            if not self._allow_any and digest not in self._allowlist:
                raise ScenarioError(
                    f"scenario {digest} is not on this server's allowlist; "
                    "preload it with --scenario FILE or start the server "
                    "with --allow-any-scenario"
                )
            self._cache[key] = spec
            self._cache.move_to_end(key)
            while len(self._cache) > self._max_cached:
                self._cache.popitem(last=False)
        return spec
