"""The declarative scenario specification and its deterministic compiler.

See :mod:`repro.scenario` for the architecture overview.  This module
defines the frozen spec dataclasses (:class:`GridSpec`,
:class:`ChainSpec`, :class:`EventSpec`, :class:`MechanismSpec`,
:class:`CalibrationSpec`, :class:`ScenarioSpec`), their JSON round-trip,
the stable :meth:`ScenarioSpec.digest`, and
:meth:`ScenarioSpec.compile`, which materializes the spec into the
engine-native :class:`~repro.engine.EngineConfig`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields

import numpy as np

from ..engine.calibration import (
    BinarySearchCalibration,
    BudgetHalving,
    LinearDecay,
)
from ..engine.config import EngineConfig, SessionBuilder
from ..errors import ReproError, ScenarioError
from ..events.compiler import compile_event
from ..events.events import PatternEvent, PresenceEvent, SpatiotemporalEvent
from ..geo.grid import GridMap
from ..geo.regions import Region
from ..lppm.base import LPPM
from ..lppm.cloaking import grid_blocks
from ..lppm.registry import canonical_mechanism_name, resolve_mechanism
from ..markov.synthetic import (
    gaussian_kernel_transitions,
    lazy_random_walk_transitions,
)
from ..markov.training import fit_initial_distribution, fit_transition_matrix
from ..markov.transition import TransitionMatrix

#: Bytes of blake2b digest; 16 bytes = 32 hex chars, ample for identity.
_DIGEST_SIZE = 16


def _require(data: dict, key: str, context: str):
    try:
        return data[key]
    except (KeyError, TypeError):
        raise ScenarioError(f"{context} is missing required field {key!r}") from None


def _canonical_json(payload: dict) -> str:
    """The one serialization digests are computed over.

    ``sort_keys`` + compact separators make the byte stream independent
    of dict insertion order; ``repr``-faithful float formatting is
    guaranteed by :func:`json.dumps` itself, so equal spec values hash
    identically in every process and on every platform.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def spec_digest(payload: dict) -> str:
    """Stable hex digest of a spec's canonical JSON form.

    blake2b, never ``hash()``: the digest keys model interning across
    processes, shard workers and restarts, so ``PYTHONHASHSEED`` must
    not enter.
    """
    return hashlib.blake2b(
        _canonical_json(payload).encode(), digest_size=_DIGEST_SIZE
    ).hexdigest()


# ----------------------------------------------------------------------
# layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GridSpec:
    """The map: a rectangular lattice of square cells."""

    rows: int
    cols: int
    cell_size_km: float = 1.0

    def __post_init__(self) -> None:
        if int(self.rows) != self.rows or self.rows < 1:
            raise ScenarioError(f"grid rows must be a positive integer, got {self.rows!r}")
        if int(self.cols) != self.cols or self.cols < 1:
            raise ScenarioError(f"grid cols must be a positive integer, got {self.cols!r}")
        if not self.cell_size_km > 0:
            raise ScenarioError(
                f"grid cell_size_km must be positive, got {self.cell_size_km!r}"
            )
        object.__setattr__(self, "rows", int(self.rows))
        object.__setattr__(self, "cols", int(self.cols))
        object.__setattr__(self, "cell_size_km", float(self.cell_size_km))

    def build(self) -> GridMap:
        """The concrete :class:`~repro.geo.grid.GridMap`."""
        return GridMap(self.rows, self.cols, cell_size_km=self.cell_size_km)

    def to_json(self) -> dict:
        return {"rows": self.rows, "cols": self.cols, "cell_size_km": self.cell_size_km}

    @classmethod
    def from_json(cls, data: dict) -> "GridSpec":
        return cls(
            rows=_require(data, "rows", "grid spec"),
            cols=_require(data, "cols", "grid spec"),
            cell_size_km=data.get("cell_size_km", 1.0),
        )


# ----------------------------------------------------------------------
# mobility model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChainSpec:
    """The Markov mobility model source.

    Kinds
    -----
    ``gaussian``
        The paper's synthetic generator: transition probability
        proportional to a 2-D Gaussian kernel with scale ``sigma``.
    ``lazy_walk``
        Lazy nearest-neighbour random walk (``stay_probability``,
        ``diagonal``).
    ``trace``
        Trained from discrete cell trajectories with Dirichlet
        ``smoothing`` (the Geolife path, made portable data).
    ``matrix``
        An explicit row-stochastic matrix.

    The optional ``sparse`` hint (any kind) pins the engine's front
    propagation to CSR matmuls (``True``) or dense gemms (``False``);
    ``None`` leaves the decision to the density crossover heuristic.
    It is omitted from the JSON form when unset, so pre-existing spec
    digests are unchanged.
    """

    kind: str
    sigma: float | None = None
    distance_unit: str = "cells"
    stay_probability: float | None = None
    diagonal: bool = True
    trajectories: tuple[tuple[int, ...], ...] | None = None
    smoothing: float = 0.05
    matrix: tuple[tuple[float, ...], ...] | None = None
    sparse: bool | None = None

    def __post_init__(self) -> None:
        if self.sparse is not None:
            object.__setattr__(self, "sparse", bool(self.sparse))
        if self.kind not in ("gaussian", "lazy_walk", "trace", "matrix"):
            raise ScenarioError(
                f"chain kind must be one of 'gaussian', 'lazy_walk', 'trace', "
                f"'matrix'; got {self.kind!r}"
            )
        if self.kind == "gaussian":
            if self.sigma is None or not self.sigma > 0:
                raise ScenarioError(
                    f"gaussian chain needs a positive sigma, got {self.sigma!r}"
                )
            object.__setattr__(self, "sigma", float(self.sigma))
        if self.kind == "lazy_walk":
            stay = 0.2 if self.stay_probability is None else self.stay_probability
            if not 0.0 <= stay <= 1.0:
                raise ScenarioError(
                    f"stay_probability must lie in [0, 1], got {stay!r}"
                )
            object.__setattr__(self, "stay_probability", float(stay))
        if self.kind == "trace":
            if not self.trajectories:
                raise ScenarioError("trace chain needs at least one trajectory")
            object.__setattr__(
                self,
                "trajectories",
                tuple(tuple(int(c) for c in t) for t in self.trajectories),
            )
            object.__setattr__(self, "smoothing", float(self.smoothing))
        if self.kind == "matrix":
            if self.matrix is None:
                raise ScenarioError("matrix chain needs an explicit matrix")
            object.__setattr__(
                self,
                "matrix",
                tuple(tuple(float(v) for v in row) for row in self.matrix),
            )

    # -- constructors ----------------------------------------------------
    @classmethod
    def gaussian(
        cls,
        sigma: float,
        distance_unit: str = "cells",
        sparse: bool | None = None,
    ) -> "ChainSpec":
        return cls(
            kind="gaussian", sigma=sigma, distance_unit=distance_unit, sparse=sparse
        )

    @classmethod
    def lazy_walk(
        cls,
        stay_probability: float = 0.2,
        diagonal: bool = True,
        sparse: bool | None = None,
    ) -> "ChainSpec":
        return cls(
            kind="lazy_walk",
            stay_probability=stay_probability,
            diagonal=diagonal,
            sparse=sparse,
        )

    @classmethod
    def from_traces(
        cls, trajectories, smoothing: float = 0.05, sparse: bool | None = None
    ) -> "ChainSpec":
        return cls(
            kind="trace",
            trajectories=tuple(map(tuple, trajectories)),
            smoothing=smoothing,
            sparse=sparse,
        )

    @classmethod
    def explicit(cls, matrix, sparse: bool | None = None) -> "ChainSpec":
        return cls(
            kind="matrix",
            matrix=tuple(map(tuple, np.asarray(matrix).tolist())),
            sparse=sparse,
        )

    # -- compilation -----------------------------------------------------
    def build(self, grid: GridMap) -> TransitionMatrix:
        """The concrete chain on ``grid`` (deterministic)."""
        if self.kind == "gaussian":
            built = gaussian_kernel_transitions(
                grid, self.sigma, distance_unit=self.distance_unit
            )
        elif self.kind == "lazy_walk":
            built = lazy_random_walk_transitions(
                grid, stay_probability=self.stay_probability, diagonal=self.diagonal
            )
        elif self.kind == "trace":
            for trajectory in self.trajectories:
                for cell in trajectory:
                    if not 0 <= cell < grid.n_cells:
                        raise ScenarioError(
                            f"trace cell {cell} outside the {grid.n_cells}-cell grid"
                        )
            built = fit_transition_matrix(
                [list(t) for t in self.trajectories],
                grid.n_cells,
                smoothing=self.smoothing,
            )
        else:
            matrix = np.asarray(self.matrix, dtype=np.float64)
            if matrix.shape != (grid.n_cells, grid.n_cells):
                raise ScenarioError(
                    f"chain matrix has shape {matrix.shape}, grid has "
                    f"{grid.n_cells} cells"
                )
            built = TransitionMatrix(matrix)
        if self.sparse is not None and built.sparse_hint != self.sparse:
            # Carry the routing hint on the matrix itself so it reaches
            # TwoWorldModel through the engine config untouched.
            built = TransitionMatrix(built.matrix, sparse_hint=self.sparse)
        return built

    def to_json(self) -> dict:
        payload: dict = {"kind": self.kind}
        if self.kind == "gaussian":
            payload.update(sigma=self.sigma, distance_unit=self.distance_unit)
        elif self.kind == "lazy_walk":
            payload.update(
                stay_probability=self.stay_probability, diagonal=self.diagonal
            )
        elif self.kind == "trace":
            payload.update(
                trajectories=[list(t) for t in self.trajectories],
                smoothing=self.smoothing,
            )
        else:
            payload.update(matrix=[list(row) for row in self.matrix])
        if self.sparse is not None:
            # Only serialized when set: unset hints must not perturb the
            # digests of specs that predate sparse routing.
            payload["sparse"] = self.sparse
        return payload

    @classmethod
    def from_json(cls, data: dict) -> "ChainSpec":
        kind = _require(data, "kind", "chain spec")
        sparse = data.get("sparse")
        if sparse is not None:
            sparse = bool(sparse)
        if kind == "gaussian":
            return cls.gaussian(
                _require(data, "sigma", "gaussian chain spec"),
                distance_unit=data.get("distance_unit", "cells"),
                sparse=sparse,
            )
        if kind == "lazy_walk":
            return cls.lazy_walk(
                stay_probability=data.get("stay_probability", 0.2),
                diagonal=bool(data.get("diagonal", True)),
                sparse=sparse,
            )
        if kind == "trace":
            return cls.from_traces(
                _require(data, "trajectories", "trace chain spec"),
                smoothing=data.get("smoothing", 0.05),
                sparse=sparse,
            )
        if kind == "matrix":
            return cls.explicit(
                _require(data, "matrix", "matrix chain spec"), sparse=sparse
            )
        raise ScenarioError(f"unknown chain kind {kind!r}")


# ----------------------------------------------------------------------
# protected events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EventSpec:
    """One protected spatiotemporal event (PRESENCE or PATTERN).

    Both kinds round-trip through JSON and build the engine-native
    event objects; every built event is additionally compiled through
    the generic events compiler (:func:`repro.events.compiler.compile_event`)
    at spec-compile time, so malformed or pathologically entangled
    definitions are rejected with a typed error before any model is
    constructed.
    """

    kind: str
    cells: tuple[int, ...] | None = None  # presence: the sensitive region
    window: tuple[int, int] | None = None  # presence: inclusive (start, end)
    regions: tuple[tuple[int, ...], ...] | None = None  # pattern: per-step regions
    start: int | None = None  # pattern: first timestamp

    def __post_init__(self) -> None:
        if self.kind == "presence":
            if not self.cells:
                raise ScenarioError("presence event needs a non-empty 'cells' list")
            if self.window is None or len(tuple(self.window)) != 2:
                raise ScenarioError(
                    "presence event needs a 2-element 'window' [start, end]"
                )
            object.__setattr__(self, "cells", tuple(int(c) for c in self.cells))
            object.__setattr__(
                self, "window", (int(self.window[0]), int(self.window[1]))
            )
        elif self.kind == "pattern":
            if not self.regions:
                raise ScenarioError("pattern event needs a non-empty 'regions' list")
            if self.start is None:
                raise ScenarioError("pattern event needs a 'start' timestamp")
            object.__setattr__(
                self,
                "regions",
                tuple(tuple(int(c) for c in region) for region in self.regions),
            )
            object.__setattr__(self, "start", int(self.start))
        else:
            raise ScenarioError(
                f"event kind must be 'presence' or 'pattern', got {self.kind!r}"
            )

    @classmethod
    def presence(cls, cells, start: int, end: int) -> "EventSpec":
        return cls(kind="presence", cells=tuple(cells), window=(start, end))

    @classmethod
    def presence_range(cls, first: int, last: int, start: int, end: int) -> "EventSpec":
        return cls.presence(range(int(first), int(last) + 1), start, end)

    @classmethod
    def pattern(cls, regions, start: int) -> "EventSpec":
        return cls(kind="pattern", regions=tuple(map(tuple, regions)), start=start)

    def build(self, n_cells: int) -> SpatiotemporalEvent:
        """The engine-native event on an ``n_cells`` map."""
        try:
            if self.kind == "presence":
                region = Region.from_cells(n_cells, self.cells)
                return PresenceEvent(region, start=self.window[0], end=self.window[1])
            regions = [
                Region.from_cells(n_cells, region) for region in self.regions
            ]
            return PatternEvent(regions, start=self.start)
        except ReproError as error:
            raise ScenarioError(f"invalid {self.kind} event: {error}") from error

    def to_json(self) -> dict:
        if self.kind == "presence":
            return {
                "kind": "presence",
                "cells": list(self.cells),
                "window": list(self.window),
            }
        return {
            "kind": "pattern",
            "regions": [list(region) for region in self.regions],
            "start": self.start,
        }

    @classmethod
    def from_json(cls, data: dict) -> "EventSpec":
        kind = _require(data, "kind", "event spec")
        if kind == "presence":
            return cls(
                kind="presence",
                cells=tuple(_require(data, "cells", "presence event spec")),
                window=tuple(_require(data, "window", "presence event spec")),
            )
        if kind == "pattern":
            return cls(
                kind="pattern",
                regions=tuple(map(tuple, _require(data, "regions", "pattern event spec"))),
                start=_require(data, "start", "pattern event spec"),
            )
        raise ScenarioError(f"unknown event kind {kind!r}")


# ----------------------------------------------------------------------
# mechanism
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MechanismSpec:
    """An LPPM by registry name plus its construction parameters.

    ``name`` resolves through :mod:`repro.lppm.registry` (aliases
    accepted, typed :class:`~repro.errors.UnknownMechanismError` on a
    miss) and is canonicalized at construction so two spellings of the
    same mechanism share one digest.
    """

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", canonical_mechanism_name(self.name))
        try:
            # Normalize to plain JSON types so construction-time values
            # (tuples, numpy scalars) and a JSON round-trip compare and
            # digest identically.
            normalized = json.loads(_canonical_json(self.params))
        except (TypeError, ValueError) as error:
            raise ScenarioError(
                f"mechanism params must be JSON-serializable: {error}"
            ) from None
        if not isinstance(normalized, dict):
            raise ScenarioError(
                f"mechanism params must be an object, got {type(self.params).__name__}"
            )
        object.__setattr__(self, "params", normalized)

    def build(self, grid: GridMap, initial: np.ndarray) -> LPPM:
        """Construct the named mechanism for ``grid``.

        ``delta_location_set`` is handled by the caller (it is a
        stateful provider, not a static mechanism); see
        :meth:`ScenarioSpec.compile`.
        """
        cls = resolve_mechanism(self.name)
        params = self.params
        try:
            if self.name == "planar_laplace":
                return cls(grid, float(params["alpha"]))
            if self.name == "uniform":
                return cls(grid.n_cells)
            if self.name == "randomized_response":
                return cls(grid.n_cells, float(params["budget"]))
            if self.name == "exponential":
                if "scores" in params:
                    return cls(np.asarray(params["scores"], dtype=np.float64),
                               float(params["budget"]))
                return cls.from_distance(grid, float(params["budget"]))
            if self.name == "cloaking":
                blocks = grid_blocks(
                    grid,
                    int(params.get("block_rows", 2)),
                    int(params.get("block_cols", 2)),
                )
                return cls(
                    grid, blocks,
                    flip_probability=float(params.get("flip_probability", 0.0)),
                )
            if self.name == "emission_model":
                return cls(
                    np.asarray(params["matrix"], dtype=np.float64),
                    budget=float(params.get("budget", 1.0)),
                )
        except KeyError as error:
            raise ScenarioError(
                f"mechanism {self.name!r} spec is missing parameter {error}"
            ) from None
        raise ScenarioError(
            f"mechanism {self.name!r} has no declarative constructor; build "
            "the LPPM directly and use SessionBuilder.with_mechanism"
        )

    def to_json(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_json(cls, data: dict) -> "MechanismSpec":
        return cls(
            name=_require(data, "name", "mechanism spec"),
            params=dict(data.get("params", {})),
        )


# ----------------------------------------------------------------------
# calibration
# ----------------------------------------------------------------------
_CALIBRATIONS: dict[str, tuple] = {
    # name -> (strategy class, accepted keyword parameters)
    "halving": (BudgetHalving, ("decay",)),
    "linear": (LinearDecay, ("step_fraction",)),
    "binary-search": (BinarySearchCalibration, ("max_probes", "rel_tol")),
}


@dataclass(frozen=True)
class CalibrationSpec:
    """A budget schedule by name plus its parameters."""

    name: str = "halving"
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.name not in _CALIBRATIONS:
            raise ScenarioError(
                f"unknown calibration {self.name!r}; known names: "
                f"{sorted(_CALIBRATIONS)}"
            )
        _, accepted = _CALIBRATIONS[self.name]
        unknown = set(self.params) - set(accepted)
        if unknown:
            raise ScenarioError(
                f"calibration {self.name!r} does not accept {sorted(unknown)}; "
                f"accepted parameters: {list(accepted)}"
            )
        object.__setattr__(
            self, "params", {key: float(self.params[key]) for key in self.params}
        )

    def build(self):
        cls, _ = _CALIBRATIONS[self.name]
        params = dict(self.params)
        if self.name == "binary-search" and "max_probes" in params:
            params["max_probes"] = int(params["max_probes"])
        return cls(**params)

    def to_json(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_json(cls, data: dict) -> "CalibrationSpec":
        return cls(
            name=data.get("name", "halving"), params=dict(data.get("params", {}))
        )


# ----------------------------------------------------------------------
# the scenario
# ----------------------------------------------------------------------
class CompiledScenario:
    """A :class:`ScenarioSpec` materialized into engine-native objects.

    Carries the concrete grid, chain, initial distribution, events and
    the :class:`~repro.engine.EngineConfig`, plus the spec and its
    digest.  Compilation is deterministic: the same spec always
    produces numerically identical models, in any process.
    """

    def __init__(self, spec, digest, grid, chain, initial, events, engine_config):
        self.spec: ScenarioSpec = spec
        self.digest: str = digest
        self.grid: GridMap = grid
        self.chain: TransitionMatrix = chain
        self.initial: np.ndarray = initial
        self.events: tuple[SpatiotemporalEvent, ...] = events
        self.engine_config: EngineConfig = engine_config


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable release setting.

    The unit of multi-tenancy: a spec compiles deterministically into an
    :class:`~repro.engine.EngineConfig`, and its :meth:`digest` keys
    model interning everywhere (manager cores, shard workers, the
    service's per-scenario counters).

    Fields
    ------
    grid, chain, events, mechanism, calibration:
        See the component spec classes.
    epsilon, horizon:
        The privacy level and release horizon ``T``.
    prior_mode / prior:
        ``"worst_case"`` (Theorem IV.1, the engine default) or
        ``"fixed"``; a fixed prior is either the literal string
        ``"initial"`` (the compiled initial distribution) or an explicit
        probability vector.
    initial:
        The initial location distribution: ``"uniform"``, ``"fit"``
        (trace chains only: fitted from the trajectories) or an explicit
        probability vector.
    max_calibrations:
        Calibration rounds before the uniform fallback.
    """

    grid: GridSpec
    chain: ChainSpec
    events: tuple[EventSpec, ...]
    mechanism: MechanismSpec
    epsilon: float
    horizon: int
    calibration: CalibrationSpec = field(default_factory=CalibrationSpec)
    prior_mode: str = "worst_case"
    prior: object = "initial"
    initial: object = "uniform"
    max_calibrations: int = 60

    def __post_init__(self) -> None:
        if not self.events:
            raise ScenarioError("scenario needs at least one event")
        object.__setattr__(self, "events", tuple(self.events))
        if not self.epsilon > 0:
            raise ScenarioError(f"epsilon must be positive, got {self.epsilon!r}")
        object.__setattr__(self, "epsilon", float(self.epsilon))
        if int(self.horizon) != self.horizon or self.horizon < 1:
            raise ScenarioError(
                f"horizon must be a positive integer, got {self.horizon!r}"
            )
        object.__setattr__(self, "horizon", int(self.horizon))
        if self.prior_mode not in ("worst_case", "fixed"):
            raise ScenarioError(
                f"prior_mode must be 'worst_case' or 'fixed', got {self.prior_mode!r}"
            )
        object.__setattr__(self, "prior", self._normalize_dist(self.prior, ("initial",)))
        object.__setattr__(
            self, "initial", self._normalize_dist(self.initial, ("uniform", "fit"))
        )
        if self.initial == "fit" and self.chain.kind != "trace":
            raise ScenarioError("initial='fit' requires a trace chain")
        if int(self.max_calibrations) < 1:
            raise ScenarioError(
                f"max_calibrations must be >= 1, got {self.max_calibrations!r}"
            )
        object.__setattr__(self, "max_calibrations", int(self.max_calibrations))

    @staticmethod
    def _normalize_dist(value, keywords: tuple[str, ...]):
        if isinstance(value, str):
            if value not in keywords:
                raise ScenarioError(
                    f"distribution keyword must be one of {keywords}, got {value!r}"
                )
            return value
        try:
            return tuple(float(v) for v in value)
        except (TypeError, ValueError):
            raise ScenarioError(
                f"distribution must be {keywords} or a number list, got {value!r}"
            ) from None

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Plain-dict form; ``from_json`` is its exact inverse."""
        return {
            "grid": self.grid.to_json(),
            "chain": self.chain.to_json(),
            "events": [event.to_json() for event in self.events],
            "mechanism": self.mechanism.to_json(),
            "epsilon": self.epsilon,
            "horizon": self.horizon,
            "calibration": self.calibration.to_json(),
            "prior_mode": self.prior_mode,
            "prior": list(self.prior) if isinstance(self.prior, tuple) else self.prior,
            "initial": (
                list(self.initial) if isinstance(self.initial, tuple) else self.initial
            ),
            "max_calibrations": self.max_calibrations,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_json` (typed errors on malformed input)."""
        if not isinstance(data, dict):
            raise ScenarioError(
                f"scenario spec must be a JSON object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ScenarioError(
                f"scenario spec has unknown fields {sorted(unknown)}; "
                f"known fields: {sorted(known)}"
            )
        prior = data.get("prior", "initial")
        initial = data.get("initial", "uniform")
        return cls(
            grid=GridSpec.from_json(_require(data, "grid", "scenario spec")),
            chain=ChainSpec.from_json(_require(data, "chain", "scenario spec")),
            events=tuple(
                EventSpec.from_json(e)
                for e in _require(data, "events", "scenario spec")
            ),
            mechanism=MechanismSpec.from_json(
                _require(data, "mechanism", "scenario spec")
            ),
            epsilon=_require(data, "epsilon", "scenario spec"),
            horizon=_require(data, "horizon", "scenario spec"),
            calibration=CalibrationSpec.from_json(data.get("calibration", {})),
            prior_mode=data.get("prior_mode", "worst_case"),
            prior=tuple(prior) if isinstance(prior, list) else prior,
            initial=tuple(initial) if isinstance(initial, list) else initial,
            max_calibrations=data.get("max_calibrations", 60),
        )

    @classmethod
    def from_file(cls, path: str) -> "ScenarioSpec":
        """Load a spec from a JSON file (the ``--scenario FILE`` format)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise ScenarioError(f"cannot read scenario file {path!r}: {error}") from None
        except ValueError as error:
            raise ScenarioError(
                f"scenario file {path!r} is not valid JSON: {error}"
            ) from None
        return cls.from_json(data)

    def digest(self) -> str:
        """Stable identity of this spec (hex, process-independent).

        Everything model construction depends on enters the digest via
        the canonical JSON form, so equal digests imply bit-identical
        compiled models -- the invariant spec-keyed interning rides on.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = spec_digest(self.to_json())
            object.__setattr__(self, "_digest", cached)
        return cached

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    def initial_distribution(self, grid: GridMap) -> np.ndarray:
        """The compiled initial location distribution."""
        if self.initial == "uniform":
            return np.full(grid.n_cells, 1.0 / grid.n_cells)
        if self.initial == "fit":
            return fit_initial_distribution(
                [list(t) for t in self.chain.trajectories],
                grid.n_cells,
                smoothing=self.chain.smoothing,
            )
        vector = np.asarray(self.initial, dtype=np.float64)
        if vector.size != grid.n_cells:
            raise ScenarioError(
                f"initial distribution has {vector.size} entries, grid has "
                f"{grid.n_cells} cells"
            )
        return vector

    def compile(self) -> CompiledScenario:
        """Materialize the spec into engine-native objects.

        Deterministic and side-effect free; raises
        :class:`~repro.errors.ScenarioError` (or the underlying typed
        library error) when any component cannot be built.
        """
        grid = self.grid.build()
        chain = self.chain.build(grid)
        initial = self.initial_distribution(grid)
        events = tuple(event.build(grid.n_cells) for event in self.events)
        for event in events:
            # Well-formedness through the generic events compiler: the
            # automaton build rejects degenerate or pathologically
            # entangled definitions before any O(m^2) model exists.
            try:
                compile_event(event.to_expression())
            except ReproError as error:
                raise ScenarioError(f"event does not compile: {error}") from error
        builder = (
            SessionBuilder()
            .with_grid(grid)
            .with_chain(chain)
            .protecting(*events)
            .with_epsilon(self.epsilon)
            .with_horizon(self.horizon)
            .with_calibration(self.calibration.build())
            .with_max_calibrations(self.max_calibrations)
        )
        if self.prior_mode == "fixed":
            if self.prior == "initial":
                prior = initial
            else:
                prior = np.asarray(self.prior, dtype=np.float64)
                if prior.size != grid.n_cells:
                    raise ScenarioError(
                        f"fixed prior has {prior.size} entries, grid has "
                        f"{grid.n_cells} cells"
                    )
            builder.with_fixed_prior(prior)
        if self.mechanism.name == "delta_location_set":
            params = self.mechanism.params
            try:
                builder.with_delta_location_set(
                    float(params["alpha"]), float(params["delta"]), initial
                )
            except KeyError as error:
                raise ScenarioError(
                    f"mechanism 'delta_location_set' spec is missing parameter {error}"
                ) from None
        else:
            builder.with_mechanism(self.mechanism.build(grid, initial))
        try:
            config = builder.build_config()
        except ReproError as error:
            raise ScenarioError(f"scenario does not compile: {error}") from error
        return CompiledScenario(
            spec=self,
            digest=self.digest(),
            grid=grid,
            chain=chain,
            initial=initial,
            events=events,
            engine_config=config,
        )
