"""Declarative scenarios: release settings as first-class, portable data.

Architecture
------------
Before this package, a "scenario" was a Python call-site: the synthetic
and Geolife builders in :mod:`repro.experiments.scenarios`, the CLI's
flag parsing, and every benchmark assembled grids, chains, events and
mechanisms imperatively, and a server stamped its whole fleet from the
one configuration fixed at startup.  This package turns that setting
into *data*:

* :class:`ScenarioSpec` -- a frozen, JSON-round-trippable description of
  one complete release setting: grid layout (:class:`GridSpec`), Markov
  model source (:class:`ChainSpec`: Gaussian-kernel synthetic, lazy
  walk, trained-from-trace, or an explicit matrix), protected events
  (:class:`EventSpec`, validated through the generic events compiler),
  mechanism by LPPM-registry name (:class:`MechanismSpec`), calibration
  schedule (:class:`CalibrationSpec`), epsilon, horizon, prior and
  initial distribution.
* :meth:`ScenarioSpec.compile` -- deterministic materialization into an
  engine-native :class:`~repro.engine.EngineConfig` (plus the concrete
  grid/chain/initial/events as :class:`CompiledScenario`).  The same
  spec compiles to numerically identical models in any process.
* :meth:`ScenarioSpec.digest` -- a stable blake2b identity of the
  canonical JSON form.  The digest is the interning key everywhere:
  :class:`~repro.engine.SessionManager` shares two-world models, the
  mechanism ladder and the verdict cache between sessions whose specs
  digest equal (the pre-existing single-config sharing is the degenerate
  one-digest case); shard workers re-materialize models from the spec
  carried in a checkpoint; the service reports per-digest counters.
* :class:`ScenarioRegistry` -- the serving layer's admission gate:
  digest allowlist plus a validated-spec LRU for inline ``open``
  scenarios.

Layering: this package depends only on the model layers (geo, markov,
events, lppm) and on :mod:`repro.engine.config`; the engine's manager
and the service import it lazily, so ``repro.engine`` never requires
``repro.scenario`` at import time.

Example
-------
::

    spec = ScenarioSpec(
        grid=GridSpec(rows=10, cols=10),
        chain=ChainSpec.gaussian(sigma=1.0),
        events=(EventSpec.presence_range(0, 9, start=4, end=8),),
        mechanism=MechanismSpec("planar_laplace", {"alpha": 0.5}),
        epsilon=0.5,
        horizon=50,
        prior_mode="fixed",
    )
    manager = SessionManager(spec)
    manager.open("alice", rng=1)                      # the spec's scenario
    manager.open("bob", rng=2, scenario=other_spec)   # a different tenant
"""

from .registry import ScenarioRegistry
from .spec import (
    CalibrationSpec,
    ChainSpec,
    CompiledScenario,
    EventSpec,
    GridSpec,
    MechanismSpec,
    ScenarioSpec,
    spec_digest,
)

__all__ = [
    "CalibrationSpec",
    "ChainSpec",
    "CompiledScenario",
    "EventSpec",
    "GridSpec",
    "MechanismSpec",
    "ScenarioRegistry",
    "ScenarioSpec",
    "spec_digest",
]
