"""Versioned, typed RPC codec shared by shard pipes and TCP workers.

The shard RPC used to ship pickle frames between parent and worker.
That was acceptable over a private ``multiprocessing.Pipe`` (both ends
are the same trusted program), but it cannot cross a network: a TCP
worker that unpickled received bytes would execute attacker-controlled
code.  This module replaces pickle on *both* transports with a typed
JSON codec so no RPC path ever deserializes network bytes into
arbitrary objects:

* **Messages** are ``{"v": 1, "kind": "call" | "ok" | "err", "id": ...}``
  envelopes; ``call`` carries ``op``/``args``, ``ok`` a ``result``,
  ``err`` a typed error.  The version field makes mixed-version fleets
  fail loudly (:class:`~repro.errors.ProtocolError`), never silently
  misparse.
* **Values** are JSON scalars/lists/dicts plus a closed set of tagged
  engine types -- :class:`~repro.engine.ReleaseRecord`,
  :class:`~repro.engine.SessionState`, :class:`~repro.engine.ReleaseLog`
  and :class:`~repro.engine.CacheStats` -- round-tripped through their
  existing exact ``to_json``/``from_json`` forms (no float rounding, so
  bit-identity of restored streams is preserved).  Tuples decode as
  lists; callers already unpack by position.
* **Errors** travel as ``{code, message}`` using the service protocol's
  closed error vocabulary (:data:`repro.service.protocol.ERROR_CODES`),
  plus an allowlisted builtin exception name so a worker factory that
  raised e.g. ``ValueError`` still surfaces as ``ValueError`` at the
  caller.  Only names in :data:`BUILTIN_ERRORS` are ever instantiated;
  an unknown name falls back to the coded :mod:`repro.errors` type.

Decoding is pure data transformation: the only objects ever constructed
from received bytes are the engine's value types above and exceptions
from two closed allowlists.
"""

from __future__ import annotations

import json

import numpy as np

from ..engine.cache import CacheStats
from ..engine.records import ReleaseLog, ReleaseRecord
from ..engine.session import SessionState
from ..errors import ProtocolError

__all__ = [
    "BUILTIN_ERRORS",
    "WIRE_VERSION",
    "decode_message",
    "decode_value",
    "encode_call",
    "encode_error",
    "encode_ok",
    "encode_value",
]

#: RPC wire-format version; bumped on any incompatible codec change.
WIRE_VERSION = 1

#: Tag key marking a typed value inside otherwise-plain JSON.
_TAG = "__repro__"

#: Builtin exceptions allowed to rebuild by name on the receiving side.
#: A closed allowlist: anything else arrives as its coded
#: :mod:`repro.errors` type (usually ``internal`` -> ``ReproError``).
BUILTIN_ERRORS: dict[str, type[BaseException]] = {
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "IndexError": IndexError,
    "RuntimeError": RuntimeError,
    "OSError": OSError,
    "ZeroDivisionError": ZeroDivisionError,
}


def _json_default(value):
    """Last-resort JSON conversions (numpy scalars inside state dicts)."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise ProtocolError(
        f"value of type {type(value).__name__} cannot travel the RPC codec"
    )


# ----------------------------------------------------------------------
# values
# ----------------------------------------------------------------------
def encode_value(value):
    """Lower a supported value into plain JSON-serializable data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        encoded = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise ProtocolError(
                    f"RPC dict keys must be strings, got {type(key).__name__}"
                )
            encoded[key] = encode_value(item)
        if _TAG in encoded:  # user data shadowing the tag: escape it
            return {_TAG: "dict", "data": encoded}
        return encoded
    if isinstance(value, ReleaseRecord):
        return {_TAG: "record", "data": value.to_json()}
    if isinstance(value, SessionState):
        return {_TAG: "state", "data": value.to_json()}
    if isinstance(value, ReleaseLog):
        return {
            _TAG: "log",
            "records": [record.to_json() for record in value.records],
            "emissions": (
                None
                if value.emission_matrices is None
                else [matrix.tolist() for matrix in value.emission_matrices]
            ),
        }
    if isinstance(value, CacheStats):
        return {
            _TAG: "cache_stats",
            "data": {
                "hits": value.hits,
                "misses": value.misses,
                "evictions": value.evictions,
                "size": value.size,
                "maxsize": value.maxsize,
            },
        }
    if isinstance(value, BaseException):
        return {_TAG: "error", **_encode_error(value)}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    # Scenario specs lower to their JSON dict form; managers accept
    # dicts everywhere a spec is accepted.  Duck-typed (and lazily
    # imported) so this module never forces the scenario package in.
    to_json = getattr(value, "to_json", None)
    if callable(to_json):
        return encode_value(to_json())
    raise ProtocolError(
        f"value of type {type(value).__name__} cannot travel the RPC codec"
    )


def decode_value(value):
    """Inverse of :func:`encode_value` (tuples come back as lists)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    if isinstance(value, dict):
        tag = value.get(_TAG)
        if tag is None:
            return {key: decode_value(item) for key, item in value.items()}
        if tag == "dict":
            return {
                key: decode_value(item) for key, item in value["data"].items()
            }
        if tag == "record":
            return ReleaseRecord.from_json(value["data"])
        if tag == "state":
            return SessionState.from_json(value["data"])
        if tag == "log":
            return ReleaseLog(
                records=[ReleaseRecord.from_json(r) for r in value["records"]],
                emission_matrices=(
                    None
                    if value["emissions"] is None
                    else [
                        np.asarray(m, dtype=np.float64)
                        for m in value["emissions"]
                    ]
                ),
            )
        if tag == "cache_stats":
            data = value["data"]
            return CacheStats(
                hits=int(data["hits"]),
                misses=int(data["misses"]),
                evictions=int(data["evictions"]),
                size=int(data["size"]),
                maxsize=int(data["maxsize"]),
            )
        if tag == "error":
            return _decode_error(value)
        raise ProtocolError(f"unknown RPC value tag {tag!r}")
    raise ProtocolError(
        f"decoded frame contains unsupported type {type(value).__name__}"
    )


def _encode_error(error: BaseException) -> dict:
    # Lazy import: the service protocol owns the error vocabulary, but
    # the engine's shard module imports this codec, and the service
    # imports the engine -- resolving the cycle at call time.
    from ..service.protocol import error_code_for

    encoded = {"code": error_code_for(error), "message": str(error)}
    retry_after_ms = getattr(error, "retry_after_ms", None)
    if retry_after_ms is not None:
        encoded["retry_after_ms"] = int(retry_after_ms)
    name = type(error).__name__
    if name in BUILTIN_ERRORS:
        encoded["builtin"] = name
    return encoded


def _decode_error(value: dict) -> BaseException:
    from ..service.protocol import exception_for

    code = str(value.get("code"))
    message = str(value.get("message"))
    builtin = value.get("builtin")
    if code == "internal" and builtin in BUILTIN_ERRORS:
        # A plain builtin raised worker-side (e.g. a factory's
        # ValueError): rebuild the same type so callers' ``except``
        # clauses keep working across the channel.
        return BUILTIN_ERRORS[builtin](message)
    retry_after_ms = value.get("retry_after_ms")
    if not isinstance(retry_after_ms, int) or isinstance(retry_after_ms, bool):
        retry_after_ms = None
    return exception_for(code, message, retry_after_ms)


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
def _encode_message(message: dict) -> bytes:
    return json.dumps(
        message, separators=(",", ":"), ensure_ascii=False, default=_json_default
    ).encode()


def encode_call(op: str, args, request_id: int = 0, trace: str | None = None) -> bytes:
    """One request payload (length prefix added by the transport).

    ``trace`` rides as an *optional* envelope key: receivers read only
    the keys they know, so a build without tracing ignores it and an
    instrumented build interoperates with frames that omit it -- no
    :data:`WIRE_VERSION` bump needed.
    """
    message = {
        "v": WIRE_VERSION,
        "kind": "call",
        "id": request_id,
        "op": op,
        "args": encode_value(args),
    }
    if trace:
        message["trace"] = trace
    return _encode_message(message)


def encode_ok(result, request_id: int = 0) -> bytes:
    """A success reply carrying ``result``."""
    return _encode_message(
        {
            "v": WIRE_VERSION,
            "kind": "ok",
            "id": request_id,
            "result": encode_value(result),
        }
    )


def encode_error(error: BaseException, request_id: int = 0) -> bytes:
    """A typed error reply for ``error``."""
    return _encode_message(
        {
            "v": WIRE_VERSION,
            "kind": "err",
            "id": request_id,
            "error": _encode_error(error),
        }
    )


def decode_message(payload: bytes) -> dict:
    """Parse one RPC payload into a message dict.

    Returns ``{"kind", "id", ...}`` where ``call`` messages carry
    ``op``/``args`` (args decoded) plus ``trace`` (the optional
    propagated trace id, ``None`` when absent), ``ok`` messages carry
    ``result`` (decoded) and ``err`` messages carry ``error`` as a
    rebuilt exception object.  Raises :class:`ProtocolError` for
    malformed payloads or a wire-version mismatch.
    """
    try:
        message = json.loads(payload)
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"RPC frame is not valid JSON: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"RPC frame must be a JSON object, got {type(message).__name__}"
        )
    version = message.get("v")
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"unsupported RPC wire version {version!r}; "
            f"this build speaks v{WIRE_VERSION}"
        )
    kind = message.get("kind")
    request_id = message.get("id")
    if kind == "call":
        op = message.get("op")
        if not isinstance(op, str):
            raise ProtocolError(f"RPC call without a string op: {op!r}")
        trace = message.get("trace")
        return {
            "kind": "call",
            "id": request_id,
            "op": op,
            "args": decode_value(message.get("args")),
            "trace": trace if isinstance(trace, str) else None,
        }
    if kind == "ok":
        return {
            "kind": "ok",
            "id": request_id,
            "result": decode_value(message.get("result")),
        }
    if kind == "err":
        error = message.get("error")
        if not isinstance(error, dict):
            raise ProtocolError(f"RPC error frame without error body: {error!r}")
        return {"kind": "err", "id": request_id, "error": _decode_error(error)}
    raise ProtocolError(f"unknown RPC message kind {kind!r}")
