"""The ``repro worker`` process: one engine node of a cluster.

A :class:`WorkerServer` owns a full
:class:`~repro.engine.SessionManager` (models, mechanism ladder,
verdict cache -- built once from the worker's engine configuration) and
answers the same op set as a local shard worker -- open, step,
step_batch, peek_budget, finish, checkpoint, suspend, resume,
suspend_all, stats -- over asyncio TCP using the typed cluster codec
(:mod:`repro.cluster.codec`) under bounded length-prefixed frames
(:mod:`repro.cluster.frames`).  Received bytes are never unpickled.

Concurrency model
-----------------
The event loop only reads frames and writes replies.  Engine ops run on
a *single* worker thread, which serializes them in arrival order --
exactly the per-shard ordering a pipe-based shard worker gets for free
from being single-threaded -- while ``ping`` and ``hello`` are answered
inline on the loop.  A worker grinding through a big ``step_batch``
therefore still answers heartbeats immediately: a *busy* worker and a
*hung* worker look different to the router.

A worker is deliberately ignorant of the ring: placement and migration
live entirely in :class:`~repro.cluster.ClusterBackend`.  Any session
can be ``resume``\\ d here from a checkpoint taken anywhere, because
checkpoints embed their scenario binding (digest + spec) and the
manager re-materializes models on demand.  Sessions bound to a server's
*default* configuration assume every worker was started with the same
engine flags -- keep worker and router configurations identical (the
``repro worker`` CLI takes the same engine flags as ``repro serve``).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import signal
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable

from ..engine.manager import SessionManager
from ..engine.shard import _worker_execute, default_context
from ..errors import FrameTooLargeError, ProtocolError, ServiceError
from ..obs.trace import Tracer
from .chaos import FaultInjector, FaultPlan
from .codec import decode_message, encode_error, encode_ok
from .frames import FRAME_HEADER, MAX_RPC_FRAME_BYTES, pack_frame, payload_length

__all__ = ["WorkerServer", "run_worker", "spawn_local_worker"]

#: Seconds a spawned local worker gets to report its bound port.
LOCAL_SPAWN_TIMEOUT_S = 120.0


class WorkerServer:
    """One cluster worker: a session manager behind an asyncio TCP port."""

    def __init__(
        self,
        factory: Callable[[], SessionManager],
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame_bytes: int = MAX_RPC_FRAME_BYTES,
        fault_plan: FaultPlan | None = None,
        capacity: float | None = None,
    ):
        self._factory = factory
        self._host = host
        self._requested_port = int(port)
        self._max_frame_bytes = int(max_frame_bytes)
        if capacity is not None and not capacity > 0:
            raise ServiceError(f"worker capacity must be > 0, got {capacity}")
        #: Relative placement weight reported in ``hello``; the router
        #: sizes this worker's ring arcs proportionally.
        self.capacity = float(capacity) if capacity else float(os.cpu_count() or 1)
        # EWMA of engine-op service time (per step), reported in ping
        # replies so the router sees live load without extra RPCs.
        self._ewma_step_s = 0.0
        self._manager: SessionManager | None = None
        self._metrics = None
        # Records only when a router frame carries a trace id, so an
        # untraced deployment pays nothing here.
        self._tracer = Tracer(capacity=256)
        self._faults = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self._server: asyncio.AbstractServer | None = None
        self._stop_event: asyncio.Event | None = None
        # In-flight engine-op tasks across all connections: a graceful
        # drain flushes their replies before the process exits.
        self._op_tasks: set[asyncio.Task] = set()
        # One thread: engine ops execute serially, in submission order.
        self._engine = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-worker-engine"
        )
        self.port: int | None = None
        self.draining = False

    @property
    def address(self) -> str:
        """The worker's ``tcp://host:port`` address (after :meth:`start`)."""
        if self.port is None:
            raise ServiceError("worker is not started")
        return f"tcp://{self._host}:{self.port}"

    @property
    def manager(self) -> SessionManager:
        if self._manager is None:
            raise ServiceError("worker is not started")
        return self._manager

    async def start(self) -> None:
        """Build the manager and bind the listening socket."""
        from ..service.metrics import ServiceMetrics

        loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        # The factory may be expensive (model building); keep the loop
        # responsive while it runs.
        self._manager = await loop.run_in_executor(self._engine, self._factory)
        self._metrics = ServiceMetrics()
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def _hello(self) -> dict:
        manager = self.manager
        return {
            "pid": os.getpid(),
            "host": self._host,
            "port": self.port,
            "horizon": manager.config.horizon,
            "n_states": manager.n_states,
            "sessions": len(manager),
            "capacity": self.capacity,
        }

    def _load(self) -> dict:
        """The live-load heartbeat payload (answers ``ping``).

        Extra keys ride the existing ping exchange the way ``trace``
        rides call envelopes: receivers read only the keys they know,
        so an older router that expects the bare ``"pong"`` string
        keeps working against the ``pong: true`` marker check.
        """
        manager = self._manager
        return {
            "pong": True,
            "capacity": self.capacity,
            "sessions": len(manager) if manager is not None else 0,
            "queue_depth": len(self._op_tasks),
            "ewma_step_latency_s": self._ewma_step_s,
        }

    def request_stop(self) -> None:
        """Ask :meth:`wait_stopped` to return (idempotent, thread-safe
        only from the loop)."""
        if self._stop_event is not None:
            self._stop_event.set()

    def request_drain(self) -> None:
        """A graceful stop: finish in-flight ops, then announce ``leave``.

        The SIGTERM path.  Marks the worker draining (so the exit
        announcement tells operators -- and the scripts parsing announce
        lines -- that this was an orderly departure, not a crash) and
        triggers the same teardown as :meth:`request_stop`, which flushes
        replies for every accepted engine op before the process exits.
        """
        self.draining = True
        self.request_stop()

    async def wait_stopped(self) -> None:
        """Block until :meth:`request_stop`, then tear the server down."""
        assert self._stop_event is not None
        await self._stop_event.wait()
        await self.aclose()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Flush accepted work: every scheduled op runs on the engine
        # thread and writes its reply before we tear the loop down.
        if self._op_tasks:
            await asyncio.gather(*list(self._op_tasks), return_exceptions=True)
        self._engine.shutdown(wait=True)

    async def _reply(self, writer, write_lock: asyncio.Lock, payload: bytes):
        frame = pack_frame(payload, self._max_frame_bytes)
        async with write_lock:
            writer.write(frame)
            await writer.drain()

    async def _run_op(self, writer, write_lock, request_id, op, args, trace=None):
        loop = asyncio.get_running_loop()
        started = time.perf_counter() if trace else 0.0
        if self._faults is not None:
            delay_s = self._faults.delay_s()
            if delay_s:
                await asyncio.sleep(delay_s)
        queued = time.perf_counter()
        try:
            result = await loop.run_in_executor(
                self._engine,
                _worker_execute,
                self._manager,
                self._metrics,
                op,
                args,
                self._tracer,
            )
            if op in ("step", "step_batch"):
                # Per-step service time including engine-queue wait --
                # the queueing signal the router's shedder cares about.
                n = len(args) if op == "step_batch" and args else 1
                per_step = (time.perf_counter() - queued) / max(1, n)
                self._ewma_step_s = (
                    per_step
                    if self._ewma_step_s == 0.0
                    else 0.8 * self._ewma_step_s + 0.2 * per_step
                )
            payload = encode_ok(result, request_id)
        except Exception as error:  # noqa: BLE001 - errors travel the channel
            payload = encode_error(error, request_id)
        if trace:
            self._tracer.record(
                "solver",
                trace,
                time.perf_counter() - started,
                op=op,
                worker=self.port,
            )
        try:
            await self._reply(writer, write_lock, payload)
        except FrameTooLargeError:
            await self._reply(
                writer,
                write_lock,
                encode_error(
                    ServiceError(f"worker op {op!r} produced an oversized reply"),
                    request_id,
                ),
            )
        except (ConnectionError, OSError):
            pass  # router went away; its reconnect logic owns recovery

    async def _serve_connection(self, reader, writer) -> None:
        """One router connection: read calls, answer out-of-order.

        ``ping``/``hello`` are answered inline (heartbeats stay live
        while the engine thread is busy); engine ops are scheduled as
        tasks that funnel through the single engine thread in arrival
        order.  Correlation ids let the router match the interleaved
        replies.
        """
        write_lock = asyncio.Lock()
        op_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    header = await reader.readexactly(FRAME_HEADER.size)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                try:
                    length = payload_length(header, self._max_frame_bytes)
                except FrameTooLargeError as error:
                    # The unread payload makes the stream unrecoverable:
                    # answer once, then hang up.
                    with contextlib.suppress(Exception):
                        await self._reply(
                            writer, write_lock, encode_error(error, None)
                        )
                    break
                try:
                    payload = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                try:
                    message = decode_message(payload)
                    if message["kind"] != "call":
                        raise ProtocolError(
                            f"worker expected a call frame, got "
                            f"{message['kind']!r}"
                        )
                except Exception as error:  # noqa: BLE001 - malformed frame
                    await self._reply(writer, write_lock, encode_error(error, None))
                    continue
                request_id, op, args = message["id"], message["op"], message["args"]
                if op == "ping":
                    if self._faults is not None and self._faults.blackholed():
                        continue  # scripted partition: the ping vanishes
                    await self._reply(
                        writer, write_lock, encode_ok(self._load(), request_id)
                    )
                elif op == "hello":
                    await self._reply(
                        writer, write_lock, encode_ok(self._hello(), request_id)
                    )
                elif op == "shutdown":
                    await self._reply(writer, write_lock, encode_ok(None, request_id))
                    self.request_stop()
                    break
                else:
                    if self._faults is not None:
                        action = self._faults.on_engine_op(op, args)
                        if action == "kill":
                            # A real crash: no reply, no flush, no
                            # cleanup -- the op is never acknowledged.
                            os._exit(137)
                        if action == "hang":
                            continue  # accepted, never answered
                    task = asyncio.get_running_loop().create_task(
                        self._run_op(
                            writer,
                            write_lock,
                            request_id,
                            op,
                            args,
                            message.get("trace"),
                        )
                    )
                    op_tasks.add(task)
                    task.add_done_callback(op_tasks.discard)
                    self._op_tasks.add(task)
                    task.add_done_callback(self._op_tasks.discard)
        finally:
            if op_tasks:
                await asyncio.gather(*op_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


async def _serve_until_signalled(server: WorkerServer, announce) -> int:
    loop = asyncio.get_running_loop()
    await server.start()
    # SIGINT stops hard; SIGTERM drains: in-flight ops flush their
    # replies and the exit announces an orderly `leave`.
    try:
        loop.add_signal_handler(signal.SIGINT, server.request_stop)
        loop.add_signal_handler(signal.SIGTERM, server.request_drain)
    except (NotImplementedError, RuntimeError):  # non-unix / nested loop
        pass
    if announce is not None:
        announce(
            json.dumps(
                {
                    "op": "worker",
                    "host": server._host,
                    "port": server.port,
                    "pid": os.getpid(),
                }
            )
        )
    await server.wait_stopped()
    if announce is not None:
        if server.draining:
            announce(
                json.dumps(
                    {
                        "op": "leave",
                        "host": server._host,
                        "port": server.port,
                        "sessions": len(server.manager),
                    }
                )
            )
        announce(
            json.dumps(
                {"op": "worker-stopped", "sessions": len(server.manager)}
            )
        )
    return 0


def run_worker(
    factory: Callable[[], SessionManager],
    host: str,
    port: int,
    max_frame_bytes: int = MAX_RPC_FRAME_BYTES,
    announce=None,
    fault_plan: FaultPlan | None = None,
    capacity: float | None = None,
) -> int:
    """Run one worker until SIGINT/SIGTERM (the ``repro worker`` body).

    ``announce`` (e.g. ``print``) receives JSON lines: ``worker`` with
    the bound port once serving, ``leave`` when a SIGTERM drain exits
    cleanly, ``worker-stopped`` on every exit -- machine-readable for
    scripts that wait for readiness.  ``fault_plan`` arms deterministic
    fault injection (see :mod:`repro.cluster.chaos`); ``capacity`` sets
    the placement weight reported to routers (default: CPU count).
    """
    server = WorkerServer(
        factory, host, port, max_frame_bytes, fault_plan, capacity
    )
    return asyncio.run(_serve_until_signalled(server, announce))


# ----------------------------------------------------------------------
# local spawning (tests, benchmarks, examples)
# ----------------------------------------------------------------------
def _local_worker_main(
    conn, factory, host, max_frame_bytes, fault_plan, capacity=None
) -> None:
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass

    async def main() -> None:
        server = WorkerServer(
            factory, host, 0, max_frame_bytes, fault_plan, capacity
        )
        try:
            await server.start()
        except BaseException as error:  # noqa: BLE001 - report, then die
            try:
                conn.send_bytes(
                    json.dumps(
                        {"error": f"{type(error).__name__}: {error}"}
                    ).encode()
                )
            finally:
                conn.close()
            return
        conn.send_bytes(
            json.dumps({"port": server.port, "pid": os.getpid()}).encode()
        )
        conn.close()
        await server.wait_stopped()

    asyncio.run(main())


def spawn_local_worker(
    factory: Callable[[], SessionManager],
    host: str = "127.0.0.1",
    context=None,
    max_frame_bytes: int = MAX_RPC_FRAME_BYTES,
    spawn_timeout_s: float = LOCAL_SPAWN_TIMEOUT_S,
    fault_plan: FaultPlan | None = None,
    capacity: float | None = None,
):
    """Start a worker in a child process on an OS-assigned port.

    Returns ``(process, address)`` with ``address`` like
    ``tcp://127.0.0.1:43127``.  The caller owns the process: stop it via
    a ``shutdown`` RPC, a signal, or ``process.terminate()``.  Raises
    :class:`ServiceError` when the worker fails to come up (the
    factory's error message is included).  ``fault_plan`` arms the
    child's deterministic fault injection -- the test-side counterpart
    of ``repro worker --fault-plan``; ``capacity`` sets its placement
    weight (``repro worker --capacity``).
    """
    ctx = context if context is not None else default_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_local_worker_main,
        args=(child_conn, factory, host, max_frame_bytes, fault_plan, capacity),
        name="repro-cluster-worker",
        daemon=True,
    )
    process.start()
    child_conn.close()
    try:
        if not parent_conn.poll(spawn_timeout_s):
            raise ServiceError(
                f"cluster worker did not come up within {spawn_timeout_s:.0f}s"
            )
        report = json.loads(parent_conn.recv_bytes(1 << 16).decode())
    except (EOFError, OSError) as error:
        process.terminate()
        process.join(5)
        raise ServiceError(
            "cluster worker exited before reporting its port"
        ) from error
    finally:
        parent_conn.close()
    if "error" in report:
        process.join(5)
        raise ServiceError(f"cluster worker failed to start: {report['error']}")
    return process, f"tcp://{host}:{report['port']}"
