"""Deterministic fault injection for cluster drills.

Recovery code is only trustworthy when its failure paths run on every
test and CI pass, not just on unlucky days in production.  This module
makes worker failure a *scripted, seeded input* instead of a
sleep-and-hope race:

* :class:`FaultPlan` -- a frozen, JSON-round-trippable description of
  the faults one worker should exhibit: die (or hang) at exactly the
  Nth engine step it executes, delay every engine op by a seeded
  duration, stop answering heartbeats after the Nth step.
* :class:`FaultInjector` -- the runtime counterpart a
  :class:`~repro.cluster.worker.WorkerServer` consults.  Step counting
  happens *before* the op executes, so a worker killed "at step N"
  never acknowledges step N -- exactly the crash window checkpoint
  replay must cover.
* :class:`ChaosChannel` -- a transport-layer wrapper that injects the
  same seeded delays under any :class:`~repro.cluster.transport`
  channel, for drills that need jitter on the wire rather than in the
  worker.

Every delay derives from ``FaultPlan.seed`` through its own
``random.Random``, so two runs of the same plan misbehave identically.
Plans travel as JSON (``repro worker --fault-plan FILE``) and as plain
dataclasses (:func:`~repro.cluster.worker.spawn_local_worker`'s
``fault_plan=``), and validation is strict: an unknown key or a
negative threshold is a :class:`~repro.errors.ValidationError`, not a
silently ignored typo that makes a drill vacuously pass.
"""

from __future__ import annotations

import json
import random
import threading
import time
from dataclasses import asdict, dataclass, fields

from ..errors import ValidationError

__all__ = ["ChaosChannel", "FaultInjector", "FaultPlan"]

#: Engine ops that advance sessions and therefore count toward the
#: step-indexed fault thresholds (``step_batch`` counts one per member).
_STEP_OPS = ("step", "step_batch")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative description of one worker's misbehaviour.

    All step thresholds index the worker's *executed-step counter*: the
    total number of session steps this worker has been asked to run,
    counted before execution (a batched wave of k sessions advances the
    counter by k at once).

    Parameters
    ----------
    seed:
        Seeds every random choice the plan makes (delays); two injectors
        built from equal plans produce identical schedules.
    kill_at_step:
        Hard-kill the worker process (``os._exit``) the moment its step
        counter would reach this value -- before the step runs, so the
        killing step is never acknowledged.
    hang_at_step:
        From this step on, engine ops are accepted but never answered
        (heartbeats still pong): the router sees a *hung* worker and
        must rely on its RPC deadline.
    rpc_delay_ms / rpc_jitter_ms:
        Delay every engine op by ``rpc_delay_ms`` plus a seeded uniform
        draw from ``[0, rpc_jitter_ms]`` milliseconds.
    blackhole_after_step:
        Once the step counter reaches this value, heartbeat pings go
        unanswered while engine ops keep working -- the
        partial-partition case heartbeat timeouts exist for.
    """

    seed: int = 0
    kill_at_step: int | None = None
    hang_at_step: int | None = None
    rpc_delay_ms: float = 0.0
    rpc_jitter_ms: float = 0.0
    blackhole_after_step: int | None = None

    def __post_init__(self):
        for name in ("kill_at_step", "hang_at_step"):
            value = getattr(self, name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise ValidationError(
                    f"fault plan {name} must be a positive step index, "
                    f"got {value!r}"
                )
        blackhole = self.blackhole_after_step
        if blackhole is not None and (
            not isinstance(blackhole, int) or blackhole < 0
        ):
            raise ValidationError(
                "fault plan blackhole_after_step must be a non-negative "
                f"step count, got {blackhole!r}"
            )
        for name in ("rpc_delay_ms", "rpc_jitter_ms"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValidationError(
                    f"fault plan {name} must be a non-negative number, "
                    f"got {value!r}"
                )

    def to_json(self) -> dict:
        """The plan as a JSON-safe dict (inverse of :meth:`from_json`)."""
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPlan":
        """Parse and validate a plan dict; unknown keys are errors."""
        if not isinstance(payload, dict):
            raise ValidationError(
                f"a fault plan must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValidationError(
                f"unknown fault plan keys {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        return cls(**payload)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (the ``--fault-plan`` format)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except OSError as error:
            raise ValidationError(
                f"cannot read fault plan {path!r}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise ValidationError(
                f"fault plan {path!r} is not valid JSON: {error}"
            ) from error
        return cls.from_json(payload)


class FaultInjector:
    """Runtime evaluation of a :class:`FaultPlan` inside one worker.

    Thread-safe: the worker's event loop consults :meth:`blackholed`
    while :meth:`on_engine_op` runs from frame handling.  The injector
    is the single authority on the step counter, so kill/hang/blackhole
    thresholds all observe the same deterministic sequence.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._steps = 0
        self._lock = threading.Lock()

    @property
    def steps(self) -> int:
        """Session steps this worker has been asked to execute so far."""
        with self._lock:
            return self._steps

    def on_engine_op(self, op: str, args) -> str | None:
        """Account one engine op *before* it executes.

        Returns the action the worker must take: ``"kill"`` (exit the
        process immediately -- the op is never acknowledged), ``"hang"``
        (accept but never answer) or ``None`` (run it normally).
        """
        if op == "step":
            advance = 1
        elif op == "step_batch":
            try:
                advance = len(args)
            except TypeError:
                advance = 1
        else:
            advance = 0
        plan = self.plan
        with self._lock:
            before = self._steps
            self._steps = before + advance
            if (
                plan.kill_at_step is not None
                and before < plan.kill_at_step <= self._steps
            ):
                return "kill"
            if (
                plan.hang_at_step is not None
                and advance
                and self._steps >= plan.hang_at_step
            ):
                return "hang"
        return None

    def delay_s(self) -> float:
        """The seeded delay (seconds) to apply before the next engine op."""
        plan = self.plan
        if not plan.rpc_delay_ms and not plan.rpc_jitter_ms:
            return 0.0
        with self._lock:
            jitter = plan.rpc_jitter_ms * self._rng.random()
        return (plan.rpc_delay_ms + jitter) / 1000.0

    def blackholed(self) -> bool:
        """True once heartbeats should vanish (engine ops still served)."""
        after = self.plan.blackhole_after_step
        if after is None:
            return False
        with self._lock:
            return self._steps >= after


class ChaosChannel:
    """Wrap a transport channel with seeded, deterministic send delays.

    Implements the same surface as the wrapped channel
    (:class:`~repro.cluster.transport.SocketChannel` or
    :class:`~repro.cluster.transport.PipeChannel`) so it drops into any
    code that talks frames.  Delays apply on :meth:`send` -- the caller
    side of an RPC -- which is where wire jitter perturbs request
    interleaving without distorting receive deadlines.
    """

    def __init__(self, channel, plan: FaultPlan):
        self._channel = channel
        self._plan = plan
        self._rng = random.Random(plan.seed)
        self._lock = threading.Lock()

    @property
    def max_frame_bytes(self) -> int:
        return self._channel.max_frame_bytes

    def _delay(self) -> None:
        plan = self._plan
        if not plan.rpc_delay_ms and not plan.rpc_jitter_ms:
            return
        with self._lock:
            jitter = plan.rpc_jitter_ms * self._rng.random()
        time.sleep((plan.rpc_delay_ms + jitter) / 1000.0)

    def send(self, payload: bytes) -> None:
        self._delay()
        self._channel.send(payload)

    def recv(self, timeout_s: float | None = None) -> bytes:
        return self._channel.recv(timeout_s)

    def poll(self, timeout_s: float = 0.0) -> bool:
        return self._channel.poll(timeout_s)

    def close(self) -> None:
        self._channel.close()
