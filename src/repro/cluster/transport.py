"""Channel abstraction: one RPC frame discipline, two transports.

A *channel* moves opaque payload byte-strings with the bounded framing
of :mod:`repro.cluster.frames`.  Two implementations share the
interface:

* :class:`PipeChannel` wraps a ``multiprocessing.Connection`` for the
  in-box shard workers of :class:`~repro.engine.shard.ShardPool`
  (``send_bytes``/``recv_bytes`` already carry a length prefix; this
  class adds the size bound on both directions and per-receive
  deadlines via ``poll``).
* :class:`SocketChannel` wraps a blocking TCP socket for the remote
  workers of :mod:`repro.cluster` with an explicit 4-byte big-endian
  length prefix (``TCP_NODELAY`` set: RPC frames are small and
  latency-bound).

Both raise the same typed surface: :class:`TimeoutError` when a receive
deadline lapses (the caller decides whether that means a dead peer),
:class:`EOFError`/:class:`OSError` when the peer hung up, and
:class:`~repro.errors.FrameTooLargeError` for an oversized frame on
either direction -- before sending (channel stays usable) or on a
received length header (channel is closed; the stream cannot re-sync).
"""

from __future__ import annotations

import socket

from ..errors import FrameTooLargeError
from .frames import FRAME_HEADER, MAX_RPC_FRAME_BYTES, check_frame_size, payload_length

__all__ = ["PipeChannel", "SocketChannel"]


class PipeChannel:
    """Bounded frame channel over a ``multiprocessing.Connection``."""

    def __init__(self, conn, max_frame_bytes: int = MAX_RPC_FRAME_BYTES):
        self._conn = conn
        self.max_frame_bytes = int(max_frame_bytes)

    def send(self, payload: bytes) -> None:
        """Send one frame; oversized payloads raise before any I/O."""
        check_frame_size(len(payload), self.max_frame_bytes)
        self._conn.send_bytes(payload)

    def recv(self, timeout_s: float | None = None) -> bytes:
        """The next frame; raises :class:`TimeoutError` past the deadline."""
        if timeout_s is not None and not self._conn.poll(timeout_s):
            raise TimeoutError(
                f"no RPC reply within {timeout_s:.1f}s"
            )
        try:
            return self._conn.recv_bytes(self.max_frame_bytes)
        except OSError as error:
            # Connection.recv_bytes(maxlength) reports an oversized
            # announced frame as a bare OSError("bad message length");
            # surface it as the typed bound violation.  The unread
            # payload makes the stream unrecoverable, so close.
            if "message length" in str(error):
                self.close()
                raise FrameTooLargeError(
                    f"peer announced an RPC frame beyond the "
                    f"{self.max_frame_bytes}-byte limit"
                ) from None
            raise

    def poll(self, timeout_s: float = 0.0) -> bool:
        """True when a frame is ready within ``timeout_s``."""
        return self._conn.poll(timeout_s)

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


class SocketChannel:
    """Bounded frame channel over a connected TCP socket."""

    def __init__(self, sock: socket.socket, max_frame_bytes: int = MAX_RPC_FRAME_BYTES):
        self._sock = sock
        self.max_frame_bytes = int(max_frame_bytes)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # exotic socket type (tests pass socketpairs)
            pass

    def send(self, payload: bytes) -> None:
        """Send one length-prefixed frame (oversized raises pre-I/O)."""
        check_frame_size(len(payload), self.max_frame_bytes)
        self._sock.sendall(FRAME_HEADER.pack(len(payload)) + payload)

    def _recv_exact(self, n_bytes: int) -> bytes:
        chunks = []
        remaining = n_bytes
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise EOFError("RPC peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self, timeout_s: float | None = None) -> bytes:
        """The next frame; raises :class:`TimeoutError` past the deadline.

        The deadline covers the whole frame (header and payload); a
        frame that announces more than ``max_frame_bytes`` closes the
        channel and raises :class:`FrameTooLargeError`.
        """
        self._sock.settimeout(timeout_s)
        try:
            header = self._recv_exact(FRAME_HEADER.size)
            try:
                length = payload_length(header, self.max_frame_bytes)
            except FrameTooLargeError:
                self.close()
                raise
            return self._recv_exact(length)
        except socket.timeout as error:  # socket.timeout is TimeoutError
            raise TimeoutError(
                f"no RPC reply within {timeout_s:.1f}s"
            ) from error

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
