"""Multi-host cluster execution: from one box to a fleet.

This package is the third :class:`~repro.engine.backend.ExecutionBackend`
-- the step past :class:`~repro.engine.shard.ShardPool`'s
single-machine process fan-out.  The serving layer is unchanged: a
:class:`~repro.service.server.ReleaseServer` drives a
:class:`ClusterBackend` exactly as it drives a shard pool, but the
"shards" are now ``repro worker`` processes on any machines, reached
over TCP.

Architecture -- three layers, bottom up
---------------------------------------
:mod:`~repro.cluster.frames` + :mod:`~repro.cluster.transport` + :mod:`~repro.cluster.codec`
    The wire.  Every RPC payload is a typed, versioned JSON message
    (``call``/``ok``/``err`` envelopes; engine types like
    :class:`~repro.engine.SessionState` travel via their exact
    ``to_json`` forms) inside a bounded length-prefixed frame.  The
    *same* codec runs over ``multiprocessing`` pipes
    (:class:`~repro.cluster.transport.PipeChannel`, used by the local
    shard pool) and TCP sockets
    (:class:`~repro.cluster.transport.SocketChannel`), so there is no
    pickle deserialization of received bytes on any RPC path -- a
    remote worker can safely listen on a network port.

:mod:`~repro.cluster.worker`
    The node.  ``repro worker --listen HOST:PORT`` owns one full
    :class:`~repro.engine.SessionManager` and serves the shard op set
    (open/step/step_batch/peek_budget/finish/checkpoint/suspend/resume/
    suspend_all/stats) plus ``hello`` and ``ping``.  Engine ops run
    serially on one thread (per-worker ordering, like a shard);
    heartbeats answer from the event loop, so busy != hung.

:mod:`~repro.cluster.backend` + :mod:`~repro.cluster.ring`
    The router.  :class:`ClusterBackend` places new sessions with a
    consistent-hash ring (stable blake2b -- identical placement in
    every process; removing one of N workers moves ~1/N of the
    keyspace), tracks an explicit session->worker assignment map,
    pipelines RPCs per worker under an in-flight window with deadlines
    and heartbeats (dead/hung workers become typed
    :class:`~repro.errors.WorkerDownError` for exactly their sessions),
    and performs **live migration**: :meth:`ClusterBackend.drain_worker`
    checkpoints a worker's residency through the engine's exact
    ``suspend_all`` path and restores it onto the ring successors while
    racing requests retry onto each session's new home -- no served
    stream drops, and migrated streams stay bit-identical.

Wired end to end::

    repro worker --listen 0.0.0.0:9001   # on host w1
    repro worker --listen 0.0.0.0:9002   # on host w2
    repro serve --backend tcp://w1:9001,tcp://w2:9002

Exports resolve lazily (PEP 562): :mod:`repro.engine.shard` imports the
transport/codec submodules, so eager re-exports here would create an
import cycle with :mod:`repro.engine`.
"""

from __future__ import annotations

__all__ = [
    "ClusterBackend",
    "ClusterSupervisor",
    "FaultPlan",
    "HashRing",
    "RetryPolicy",
    "WorkerHandle",
    "WorkerServer",
    "parse_address",
    "ring_hash",
    "run_worker",
    "spawn_local_worker",
]

_EXPORTS = {
    "ClusterBackend": ("backend", "ClusterBackend"),
    "WorkerHandle": ("backend", "WorkerHandle"),
    "parse_address": ("backend", "parse_address"),
    "ClusterSupervisor": ("control", "ClusterSupervisor"),
    "RetryPolicy": ("control", "RetryPolicy"),
    "FaultPlan": ("chaos", "FaultPlan"),
    "HashRing": ("ring", "HashRing"),
    "ring_hash": ("ring", "ring_hash"),
    "WorkerServer": ("worker", "WorkerServer"),
    "run_worker": ("worker", "run_worker"),
    "spawn_local_worker": ("worker", "spawn_local_worker"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, attr)
    globals()[name] = value  # cache for the next lookup
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
