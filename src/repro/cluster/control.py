"""The cluster control plane: retries, recovery, self-healing.

:class:`ClusterBackend` turns a dead worker into *typed* loss -- every
session assigned to it raises :class:`~repro.errors.WorkerDownError`
until an operator intervenes.  This module closes the loop.  Because
every session is deterministic given its seed and scenario, and engine
checkpoints are exact, a lost session can be *rebuilt*: restore its
last durable checkpoint onto a surviving worker and replay the steps
the client has already been acknowledged for.  The replayed stream is
bit-identical to the one the dead worker was producing, so worker death
degrades to a latency blip instead of data loss.

Three pieces:

* :class:`RetryPolicy` -- one jittered-exponential-backoff policy with
  a per-op deadline budget, shared by every retry loop in the cluster
  layer (migration races in
  :meth:`~repro.cluster.backend.ClusterBackend._call_session`, recovery
  races here).  Seedable, so tests get deterministic schedules.
* :class:`StepJournal` -- the supervisor's memory of acknowledged steps
  since each session's last durable checkpoint.  Replay needs exactly
  this: the checkpoint pins a position, the journal carries the cells
  observed past it.  ``checkpoint_every`` bounds its length (and thus
  worst-case replay work).
* :class:`ClusterSupervisor` -- an
  :class:`~repro.engine.backend.ExecutionBackend` wrapping a
  :class:`ClusterBackend` plus a durable
  :class:`~repro.service.store.SessionStore`.  It journals every
  acknowledged step, auto-checkpoints every N steps, and when a worker
  dies (heartbeat callback or an op raising ``WorkerDownError``) drains
  the dead worker's assignment map: each session restores from its
  stored checkpoint onto its ring successor and replays forward to the
  client-observed position.  Sessions with no (or torn) checkpoint
  degrade to today's typed loss, counted under
  ``repro_failures_total{kind="sessions_lost"}``; successful rescues
  count under the new ``repro_recoveries_total``.

Correctness notes
-----------------
*Exactly-once replay.*  Only *acknowledged* steps enter the journal: a
step the worker applied but never answered (it died mid-op) was never
journaled, and the caller's retry re-issues it against the recovered
session -- determinism makes the re-execution produce the original
record, so the at-least-once wire becomes exactly-once history.

*Serialization.*  The serving layer guarantees at most one in-flight op
per session; the supervisor adds a per-session lock so recovery's
restore+replay and a racing client op cannot interleave on the new
home.  A recovery pass is exclusive (one at a time) and rescans until
no dead worker holds assignments, so cascading failures (the recovery
target dies mid-restore) converge: the restore simply retries onto the
next ring successor under the same policy.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass
from random import Random
from typing import Iterable, Iterator, Mapping

from ..engine.backend import ExecutionBackend
from ..engine.cache import CacheStats
from ..engine.records import ReleaseLog, ReleaseRecord
from ..engine.session import SessionState
from ..errors import ReproError, WorkerDownError

__all__ = ["ClusterSupervisor", "RetryPolicy", "StepJournal"]

#: Seconds a call-path retry waits to join an in-progress recovery pass.
RECOVERY_WAIT_S = 120.0
#: Seconds recovery waits for a session's in-flight op before skipping
#: it (the next pass picks it up).
RECOVERY_SESSION_WAIT_S = 60.0
#: Seconds between standby-pool health probes.
STANDBY_CHECK_INTERVAL_S = 5.0
#: Seconds one standby TCP probe waits before declaring it unreachable.
STANDBY_PROBE_TIMEOUT_S = 2.0


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff under a total deadline budget.

    One policy object describes every retry loop in the cluster layer:
    ``attempts`` tries overall, no delay before the first, then
    ``base_delay_s * 2^(k-1)`` capped at ``max_delay_s`` and inflated by
    up to ``jitter`` (a fraction), all bounded by ``deadline_s`` of
    wall-clock from the first attempt.  ``seed`` makes the jitter
    sequence reproducible (``None`` draws fresh randomness).
    """

    attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    deadline_s: float = 60.0
    jitter: float = 0.5
    seed: int | None = None

    def schedule(self) -> Iterator[float]:
        """Yield the pre-attempt sleep for each permitted attempt.

        The first yielded value is always ``0.0``; the generator stops
        early when the next backoff would overrun the deadline, so a
        loop ``for delay in policy.schedule(): sleep(delay); try(...)``
        respects both the attempt and the time budget.
        """
        rng = Random(self.seed)
        deadline = time.monotonic() + self.deadline_s
        for attempt in range(max(1, int(self.attempts))):
            if attempt == 0:
                yield 0.0
                continue
            delay = min(self.max_delay_s, self.base_delay_s * (2 ** (attempt - 1)))
            delay *= 1.0 + self.jitter * rng.random()
            if time.monotonic() + delay >= deadline:
                return
            yield delay


class StepJournal:
    """Acknowledged cells for one session since its durable checkpoint.

    ``base_t`` is the timestamp of the checkpoint currently in the
    store; ``cells`` are the inputs of every step acknowledged after it,
    in order.  Restoring the checkpoint and replaying ``cells``
    reproduces the session at exactly the client-observed position --
    bit-identically, by engine determinism.
    """

    __slots__ = ("base_t", "cells")

    def __init__(self, base_t: int = 0):
        self.base_t = int(base_t)
        self.cells: list[int] = []

    def reset(self, base_t: int) -> None:
        """A new durable checkpoint landed at ``base_t``."""
        self.base_t = int(base_t)
        self.cells.clear()


class ClusterSupervisor(ExecutionBackend):
    """Self-healing wrapper: a cluster backend plus checkpoint-replay.

    Drop-in :class:`ExecutionBackend`: the serving layer drives it
    exactly like the bare :class:`~repro.cluster.ClusterBackend` it
    wraps.  Every acknowledged step is journaled; every ``N`` journaled
    steps (``checkpoint_every``; 0 disables auto-checkpointing) the
    session checkpoints into ``store``, bounding replay work.  When a
    worker dies, its sessions are restored from the store onto their
    ring successors and replayed to their journaled positions; sessions
    without a durable checkpoint become typed ``sessions_lost``.

    The wrapper registers itself as the backend's worker-down listener,
    so heartbeat-detected deaths trigger recovery without waiting for
    the next client op to trip over the corpse.
    """

    remote = True

    def __init__(
        self,
        backend,
        store,
        *,
        checkpoint_every: int = 0,
        retry: RetryPolicy | None = None,
        metrics=None,
        standbys: Iterable[str] | None = None,
        standby_check_interval_s: float = STANDBY_CHECK_INTERVAL_S,
    ):
        self._backend = backend
        self._store = store
        self._checkpoint_every = max(0, int(checkpoint_every))
        self._retry = retry if retry is not None else RetryPolicy(
            deadline_s=RECOVERY_WAIT_S
        )
        self._metrics = metrics
        self._lock = threading.Lock()
        self._journal: dict[str, StepJournal] = {}
        self._session_locks: dict[str, threading.Lock] = {}
        self._lost: dict[str, str] = {}  # sid -> human-readable reason
        self._recovery_lock = threading.Lock()
        self._workers_recovered = 0
        self._sessions_recovered = 0
        self._steps_replayed = 0
        self._sessions_lost = 0
        # Warm standby pool: addresses of idle workers the actuator
        # promotes (join + rebalance) when a member dies.  FIFO order;
        # a promoted standby leaves the pool for good.
        self._standbys: list[str] = []
        self._standby_health: dict[str, bool] = {}
        self._standby_promotions = 0
        self._stop_standby_checks = threading.Event()
        self._standby_thread: threading.Thread | None = None
        # Last good membership snapshot, served while recovery holds the
        # exclusive lock (see cluster_status).
        self._status_cache: dict | None = None
        if standbys:
            from .backend import parse_address

            for address in standbys:
                normalized = parse_address(address)[0]
                if normalized not in self._standbys:
                    self._standbys.append(normalized)
                    self._standby_health[normalized] = False
        if self._standbys and standby_check_interval_s > 0:
            self._standby_thread = threading.Thread(
                target=self._standby_check_loop,
                args=(float(standby_check_interval_s),),
                name="repro-standby-health",
                daemon=True,
            )
            self._standby_thread.start()
        register = getattr(backend, "add_worker_down_listener", None)
        if register is not None:
            register(self._on_worker_down)

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def bind_metrics(self, metrics) -> None:
        """Attach the serving layer's :class:`ServiceMetrics` so
        recoveries and losses land in the shared counter families."""
        self._metrics = metrics

    @property
    def backend(self):
        """The wrapped cluster backend (membership ops, ring, handles)."""
        return self._backend

    @property
    def checkpoint_every(self) -> int:
        """Journaled steps between automatic durable checkpoints."""
        return self._checkpoint_every

    # ------------------------------------------------------------------
    # per-session serialization
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def _session_op(self, session_id: str):
        with self._lock:
            lock = self._session_locks.setdefault(session_id, threading.Lock())
        lock.acquire()
        try:
            yield
        finally:
            lock.release()

    def _lost_error(self, session_id: str) -> WorkerDownError | None:
        with self._lock:
            reason = self._lost.get(session_id)
        return WorkerDownError(reason) if reason is not None else None

    def _with_recovery(self, session_id: str, fn):
        """Run one session op, healing across worker death.

        On ``WorkerDownError`` the op joins (or runs) a recovery pass --
        which restores the session onto a live worker -- and retries
        under the shared policy.  Sessions recovery had to give up on
        raise their recorded loss reason instead of retrying forever.
        """
        last_error: BaseException | None = None
        for delay_s in self._retry.schedule():
            if delay_s:
                time.sleep(delay_s)
            lost = self._lost_error(session_id)
            if lost is not None:
                raise lost
            with self._session_op(session_id):
                try:
                    return fn()
                except WorkerDownError as error:
                    last_error = error
            # Outside the session lock (recovery needs it): heal, retry.
            self._run_recoveries(wait=True)
        lost = self._lost_error(session_id)
        if lost is not None:
            raise lost
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # journaling / checkpointing
    # ------------------------------------------------------------------
    def _checkpoint_now(self, session_id: str) -> SessionState:
        """Checkpoint to the durable store; caller holds the session lock."""
        state = self._backend.checkpoint(session_id)
        self._store.put(state)
        with self._lock:
            journal = self._journal.setdefault(session_id, StepJournal())
            journal.reset(state.committed_t)
        return state

    def _note_step(self, session_id: str, cell: int) -> None:
        checkpoint_due = False
        with self._lock:
            journal = self._journal.get(session_id)
            if journal is not None:
                journal.cells.append(int(cell))
                checkpoint_due = (
                    self._checkpoint_every > 0
                    and len(journal.cells) >= self._checkpoint_every
                )
        if checkpoint_due:
            # A failed auto-checkpoint must not fail the already-acked
            # step: the journal still covers the gap, and the next op
            # (or heartbeat) triggers recovery if the worker is gone.
            with contextlib.suppress(ReproError):
                self._with_recovery(
                    session_id, lambda: self._checkpoint_now(session_id)
                )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def _on_worker_down(self, address: str) -> None:
        """Heartbeat callback: heal in the background, never block it."""
        threading.Thread(
            target=self._run_recoveries,
            kwargs={"wait": False},
            name="repro-cluster-recovery",
            daemon=True,
        ).start()

    def _run_recoveries(self, wait: bool = True) -> None:
        """One exclusive pass: rescue every session on a dead worker.

        Rescans until no dead worker holds assignments, so a cascade
        (the recovery target dying mid-restore) is just another round.
        ``wait=False`` (the heartbeat path) skips instead of queueing
        when a pass is already running -- that pass will observe any
        newly dead worker in its rescan.
        """
        if wait:
            acquired = self._recovery_lock.acquire(timeout=RECOVERY_WAIT_S)
        else:
            acquired = self._recovery_lock.acquire(blocking=False)
        if not acquired:
            return
        try:
            while True:
                down = self._backend.down_assignments()
                targets = {
                    address: sids for address, sids in down.items() if sids
                }
                if not targets:
                    break
                for address, sids in targets.items():
                    self._recover_worker(address, sids)
            # Sessions are safe; now close the loop on membership: each
            # dead member is replaced by a warm standby, no operator step.
            self._actuate_standbys()
        finally:
            self._recovery_lock.release()

    # ------------------------------------------------------------------
    # standby pool (the membership actuator)
    # ------------------------------------------------------------------
    def _probe_standby(self, address: str) -> bool:
        """One TCP reachability probe (connect + close, no RPC)."""
        import socket

        from .backend import parse_address

        _, host, port = parse_address(address)
        try:
            sock = socket.create_connection(
                (host, port), timeout=STANDBY_PROBE_TIMEOUT_S
            )
        except OSError:
            return False
        sock.close()
        return True

    def _standby_check_loop(self, interval_s: float) -> None:
        while not self._stop_standby_checks.wait(interval_s):
            with self._lock:
                pool = list(self._standbys)
            for address in pool:
                healthy = self._probe_standby(address)
                with self._lock:
                    if address in self._standbys:
                        self._standby_health[address] = healthy

    def _actuate_standbys(self) -> None:
        """Replace each dead member with a warm standby.

        PR 8's operator runbook (``repro cluster … leave`` the corpse,
        ``join`` a replacement) as a closed loop: for every dead member
        still in the fleet, drop it and ``join`` the next standby --
        which dials, verifies the hello frame, and live-migrates exactly
        the arcs the newcomer now owns.  Runs inside the exclusive
        recovery pass, *after* session rescue, so the corpse holds no
        assignments by the time it leaves.  Without a standby left the
        corpse stays in membership (readiness keeps reporting the hole
        rather than silently shrinking the fleet).
        """
        while True:
            dead = sorted(self._backend.down_assignments())
            with self._lock:
                pool = list(self._standbys)
            if not dead or not pool:
                return
            address = dead[0]
            try:
                self._backend.leave_worker(address)
            except ReproError:
                pass  # a racing membership op already dropped it
            promoted = None
            while promoted is None:
                with self._lock:
                    if not self._standbys:
                        break
                    standby = self._standbys.pop(0)
                    self._standby_health.pop(standby, None)
                try:
                    self._backend.join_worker(standby)
                except ReproError:
                    continue  # this standby is gone too; try the next
                promoted = standby
            if promoted is None:
                return
            with self._lock:
                self._standby_promotions += 1
            metrics = self._metrics
            if metrics is not None:
                record = getattr(metrics, "record_standby_promotion", None)
                if record is not None:
                    record()

    def standby_status(self) -> list[dict]:
        """One row per pooled standby (address + last probe verdict)."""
        with self._lock:
            return [
                {
                    "worker": address,
                    "healthy": self._standby_health.get(address, False),
                }
                for address in self._standbys
            ]

    def _load_checkpoint(self, session_id: str) -> SessionState | None:
        """The session's durable checkpoint; ``None`` when absent *or*
        unreadable -- a torn/corrupt checkpoint degrades to typed loss
        rather than wedging the whole recovery pass."""
        try:
            return self._store.get(session_id)
        except (ReproError, ValueError, KeyError, TypeError):
            return None

    def _recover_worker(self, address: str, session_ids: list[str]) -> None:
        recovered = 0
        replayed = 0
        lost: list[str] = []
        for sid in sorted(session_ids):
            with self._lock:
                lock = self._session_locks.setdefault(sid, threading.Lock())
            if not lock.acquire(timeout=RECOVERY_SESSION_WAIT_S):
                continue  # an op holds it; rescans retry this session
            try:
                if self._backend.assignment_of(sid) != address:
                    continue  # already moved (racing pass or migration)
                state = self._load_checkpoint(sid)
                self._backend.forget_session(sid)
                if state is None:
                    reason = (
                        f"session {sid!r} was lost when worker {address} "
                        "died: no durable checkpoint to recover from"
                    )
                    with self._lock:
                        self._lost[sid] = reason
                        self._journal.pop(sid, None)
                    lost.append(sid)
                    continue
                try:
                    replayed += self._restore_and_replay(sid, state)
                except WorkerDownError:
                    # The whole fleet is unreachable for this session.
                    # Its checkpoint stays in the store; the serving
                    # layer's restore-on-touch resumes it once capacity
                    # returns, at the checkpointed position.
                    reason = (
                        f"session {sid!r} could not be recovered after "
                        f"worker {address} died: no live worker accepted "
                        "its restored checkpoint"
                    )
                    with self._lock:
                        self._lost[sid] = reason
                    lost.append(sid)
                    continue
                recovered += 1
            finally:
                lock.release()
        with self._lock:
            self._sessions_recovered += recovered
            self._steps_replayed += replayed
            self._sessions_lost += len(lost)
            if recovered or lost:
                self._workers_recovered += 1
        metrics = self._metrics
        if metrics is not None:
            if recovered:
                metrics.record_recovery("worker")
                metrics.record_recovery("session", recovered)
                metrics.record_recovery("replayed_step", replayed)
            if lost:
                metrics.record_failure("sessions_lost", len(lost))

    def _restore_and_replay(self, session_id: str, state: SessionState) -> int:
        """Resume ``state`` on a live worker and replay the journal.

        Returns the number of replayed steps.  A cascade (the restore
        target dying mid-replay) forgets the half-restored session and
        starts over on the next ring successor, under the retry policy.
        """
        with self._lock:
            journal = self._journal.get(session_id)
            base_t = journal.base_t if journal is not None else state.committed_t
            cells = list(journal.cells) if journal is not None else []
        # The store may be ahead of the journal base (a foreign writer
        # checkpointed); replay only the cells past the stored position.
        skip = min(max(state.committed_t - base_t, 0), len(cells))
        replay = cells[skip:]
        last_error: BaseException | None = None
        for delay_s in self._retry.schedule():
            if delay_s:
                time.sleep(delay_s)
            try:
                self._backend.resume(state)
                for cell in replay:
                    self._backend.step(session_id, cell)
                return len(replay)
            except WorkerDownError as error:
                last_error = error
                self._backend.forget_session(session_id)
        assert last_error is not None
        raise last_error

    def recovery_stats(self) -> dict:
        """Counters for the ``stats`` op and ``cluster_status``."""
        with self._lock:
            return {
                "checkpoint_every": self._checkpoint_every,
                "workers_recovered": self._workers_recovered,
                "sessions_recovered": self._sessions_recovered,
                "steps_replayed": self._steps_replayed,
                "sessions_lost": self._sessions_lost,
                "journaled_sessions": len(self._journal),
                "standby_promotions": self._standby_promotions,
                "standbys_pooled": len(self._standbys),
            }

    # ------------------------------------------------------------------
    # ExecutionBackend surface
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        return self._backend.horizon

    @property
    def n_states(self) -> int:
        return self._backend.n_states

    @property
    def n_shards(self) -> int:  # type: ignore[override]
        return self._backend.n_shards

    def open(self, session_id: str, seed: int | None = None, scenario=None) -> int:
        with self._session_op(session_id):
            horizon = self._backend.open(session_id, seed, scenario)
            with self._lock:
                self._lost.pop(session_id, None)
                self._journal[session_id] = StepJournal()
            if self._checkpoint_every > 0:
                # An immediate t=0 checkpoint makes the session
                # recoverable from its very first step.
                self._checkpoint_now(session_id)
        return horizon

    def contains(self, session_id: str) -> bool:
        return self._backend.contains(session_id)

    def resident_count(self) -> int:
        return self._backend.resident_count()

    def session_ids(self) -> list[str]:
        return self._backend.session_ids()

    def step(self, session_id: str, cell: int) -> ReleaseRecord:
        record = self._with_recovery(
            session_id, lambda: self._backend.step(session_id, cell)
        )
        self._note_step(session_id, cell)
        return record

    def step_batch(
        self, cells: Mapping[str, int]
    ) -> tuple[dict[str, ReleaseRecord], dict[str, BaseException]]:
        records, errors = self._backend.step_batch(cells)
        for sid in records:
            self._note_step(sid, cells[sid])
        down = [
            sid
            for sid, error in errors.items()
            if isinstance(error, WorkerDownError)
        ]
        if down:
            self._run_recoveries(wait=True)
            for sid in down:
                try:
                    record = self._with_recovery(
                        sid, lambda s=sid: self._backend.step(s, cells[s])
                    )
                except ReproError as retry_error:
                    errors[sid] = retry_error
                    continue
                records[sid] = record
                del errors[sid]
                self._note_step(sid, cells[sid])
        return records, errors

    def peek_budget(self, session_id: str) -> float:
        return self._with_recovery(
            session_id, lambda: self._backend.peek_budget(session_id)
        )

    def finish(self, session_id: str) -> ReleaseLog:
        log = self._with_recovery(
            session_id, lambda: self._backend.finish(session_id)
        )
        with self._lock:
            self._journal.pop(session_id, None)
            self._session_locks.pop(session_id, None)
        if self._checkpoint_every > 0:
            # Drop the auto-checkpoint: a finished session must not be
            # resurrected by a later restore-on-touch.
            self._store.delete(session_id)
        return log

    def checkpoint(self, session_id: str) -> SessionState:
        return self._with_recovery(
            session_id, lambda: self._checkpoint_now(session_id)
        )

    def suspend(self, session_id: str) -> SessionState:
        state = self._with_recovery(
            session_id, lambda: self._backend.suspend(session_id)
        )
        with self._lock:
            journal = self._journal.get(session_id)
            if journal is not None:
                journal.reset(state.committed_t)
        return state

    def suspend_all(self) -> tuple[list[SessionState], list[str]]:
        # Rescue what can be rescued first, so a graceful drain after a
        # worker death checkpoints recovered sessions instead of
        # reporting them lost.
        self._run_recoveries(wait=True)
        return self._backend.suspend_all()

    def resume(self, state: SessionState) -> str:
        with self._session_op(state.session_id):
            sid = self._backend.resume(state)
            with self._lock:
                self._lost.pop(sid, None)
                self._journal[sid] = StepJournal(state.committed_t)
        return sid

    def cache_stats(self) -> CacheStats | None:
        return self._backend.cache_stats()

    def shard_stats(self) -> list[dict] | None:
        return self._backend.shard_stats()

    def worker_health(self) -> list[dict] | None:
        return self._backend.worker_health()

    def lost_session_ids(self) -> list[str]:
        with self._lock:
            permanently = set(self._lost)
        return sorted(permanently | set(self._backend.lost_session_ids()))

    def close(self) -> None:
        self._stop_standby_checks.set()
        if self._standby_thread is not None:
            self._standby_thread.join(1.0)
        self._backend.close()

    # ------------------------------------------------------------------
    # membership / migration pass-throughs (the server's cluster ops)
    # ------------------------------------------------------------------
    def drain_worker(self, address: str) -> dict:
        return self._backend.drain_worker(address)

    def join_worker(self, address: str) -> dict:
        return self._backend.join_worker(address)

    def leave_worker(self, address: str) -> dict:
        # Rescue a dead leaver's sessions before membership forgets
        # where they were assigned.
        self._run_recoveries(wait=True)
        try:
            return self._backend.leave_worker(address)
        except WorkerDownError:
            # The leaver died after the recovery pass but before (or
            # during) its drain: the failed RPC just marked it dead, so
            # heal from checkpoints and retake the dead-member path.
            self._run_recoveries(wait=True)
            return self._backend.leave_worker(address)

    def cluster_status(self) -> dict:
        """The membership snapshot, served from cache mid-recovery.

        The live path refreshes a cached copy on every success.  While a
        recovery pass holds the exclusive lock -- membership is actively
        being reshaped -- or when the backend path itself fails, the
        last-good snapshot is served with ``"cached": true`` instead of
        blocking or erroring, so operators can watch a recovery rather
        than being locked out of it.  Recovery counters and standby rows
        are always live (they are the supervisor's own state).
        """
        status: dict | None = None
        in_recovery = not self._recovery_lock.acquire(blocking=False)
        if not in_recovery:
            self._recovery_lock.release()
        if not in_recovery:
            try:
                status = self._backend.cluster_status()
            except ReproError:
                status = None
        if status is None:
            with self._lock:
                cached = self._status_cache
            if cached is None:
                # Nothing cached yet: the live path is the only option.
                status = self._backend.cluster_status()
                status["cached"] = False
            else:
                status = dict(cached)
                status["cached"] = True
        else:
            status["cached"] = False
            with self._lock:
                self._status_cache = dict(status)
        status["recovery"] = self.recovery_stats()
        status["standbys"] = self.standby_status()
        return status

    def worker_addresses(self) -> list[str]:
        return self._backend.worker_addresses()

    def __enter__(self) -> "ClusterSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
