"""Consistent-hash placement of sessions over cluster workers.

A :class:`HashRing` maps session ids onto worker addresses so that
membership changes move as few sessions as possible: each member
contributes ``replicas`` virtual points on a 64-bit circle, a key is
hashed onto the circle and owned by the first point at or after it.
Removing one member of N relocates only ~1/N of the keyspace -- the
drained worker's arcs fall to their ring successors, which is exactly
the migration path :class:`~repro.cluster.backend.ClusterBackend`
drives.

Placement is **capacity-weighted**: a member with weight ``w`` gets
``round(replicas * w)`` virtual points (floored at 1), so a 16-core
worker owns ~4x the keyspace of a 4-core one when weights are derived
from CPU counts.  Weights default to 1.0 -- the unweighted ring of
earlier builds is the special case where every weight is equal, and any
common scale factor cancels (weights 2/2/2 build the same ring as
1/1/1 because virtual-point hashes depend only on the resulting count).

Hashes are unkeyed blake2b, like :func:`~repro.engine.shard.shard_for`:
identical in every process, run and machine (``PYTHONHASHSEED`` never
enters), so a router restart or a second router over the same fleet
computes the same placement.  ``hash()`` would silently shuffle every
session each run.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Mapping, Sequence

from ..errors import ServiceError

__all__ = ["DEFAULT_REPLICAS", "HashRing", "ring_hash"]

#: Virtual points per unit weight: enough to keep the largest/smallest
#: arc ratio small for fleets of a few dozen workers, cheap to rebuild.
DEFAULT_REPLICAS = 64


def ring_hash(key: str) -> int:
    """A stable 64-bit position on the ring for ``key``."""
    digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class HashRing:
    """An immutable consistent-hash ring over string members.

    Membership changes (a worker joining, draining or dying) rebuild
    the ring -- O(members x replicas), trivially cheap against RPC
    costs -- rather than mutating it, so lookups need no locking.

    ``weights`` maps members to relative capacities; absent members
    weigh 1.0.  Weights are normalized so their *mean* is 1.0 before
    computing virtual-point counts: a homogeneous fleet always lands on
    exactly ``replicas`` points per member regardless of the absolute
    capacity numbers reported (4 CPUs everywhere == 16 CPUs everywhere).
    """

    def __init__(
        self,
        members: Iterable[str],
        replicas: int = DEFAULT_REPLICAS,
        weights: Mapping[str, float] | None = None,
    ):
        self.members: tuple[str, ...] = tuple(dict.fromkeys(members))
        if not self.members:
            raise ServiceError("a hash ring needs at least one member")
        if replicas < 1:
            raise ServiceError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        raw = {
            member: float((weights or {}).get(member, 1.0))
            for member in self.members
        }
        for member, weight in raw.items():
            if not weight > 0:
                raise ServiceError(
                    f"ring weight for {member!r} must be > 0, got {weight}"
                )
        mean = sum(raw.values()) / len(raw)
        self.weights: dict[str, float] = raw
        self._points_per_member: dict[str, int] = {
            member: max(1, round(self.replicas * weight / mean))
            for member, weight in raw.items()
        }
        points = []
        for member in self.members:
            for replica in range(self._points_per_member[member]):
                points.append((ring_hash(f"{member}#{replica}"), member))
        points.sort()
        self._points: Sequence[int] = [point for point, _ in points]
        self._owners: Sequence[str] = [member for _, member in points]

    def points_of(self, member: str) -> int:
        """How many virtual points ``member`` holds on this ring."""
        return self._points_per_member.get(member, 0)

    def owner(self, key: str) -> str:
        """The member owning ``key``: first ring point at/after its hash."""
        index = bisect.bisect_right(self._points, ring_hash(key))
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[index]

    def successors(self, key: str) -> list[str]:
        """Every member in ring order starting at ``key``'s owner.

        The fallback order for placement when earlier members are
        unavailable; each member appears once.
        """
        start = bisect.bisect_right(self._points, ring_hash(key))
        seen: dict[str, None] = {}
        n = len(self._points)
        for offset in range(n):
            member = self._owners[(start + offset) % n]
            if member not in seen:
                seen[member] = None
                if len(seen) == len(self.members):
                    break
        return list(seen)

    def without(self, *members: str) -> "HashRing":
        """A new ring minus ``members`` (raises when none would remain)."""
        dropped = set(members)
        remaining = [m for m in self.members if m not in dropped]
        weights = {m: w for m, w in self.weights.items() if m not in dropped}
        return HashRing(remaining, self.replicas, weights)

    def __contains__(self, member: str) -> bool:
        return member in self.members

    def __len__(self) -> int:
        return len(self.members)
