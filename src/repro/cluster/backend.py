"""The cluster router: consistent-hash placement and live migration.

:class:`ClusterBackend` implements the
:class:`~repro.engine.backend.ExecutionBackend` surface over a fleet of
``repro worker`` processes reached by TCP (:class:`WorkerHandle`, one
pipelined connection per worker).  Three responsibilities live here and
only here -- workers are deliberately placement-ignorant:

* **Placement** -- new sessions land on the live, non-draining worker
  chosen by a consistent-hash ring (:mod:`repro.cluster.ring`).  Unlike
  :func:`~repro.engine.shard.shard_for`'s modulo routing, the router
  keeps an explicit session->worker assignment map, because a session's
  home can legitimately *change* (migration); the ring only decides
  initial placement and migration targets, so membership changes move
  ~1/N of the keyspace instead of reshuffling everything.
* **Containment** -- each RPC carries a deadline and each worker a
  heartbeat, so a dead or hung worker turns into typed
  :class:`~repro.errors.WorkerDownError` for exactly its assigned
  sessions (reported via :meth:`lost_session_ids`), while other
  workers -- and new opens, which re-route around the hole -- keep
  serving.
* **Migration** -- :meth:`drain_worker` marks a worker draining
  (no new placements), checkpoints its residency in one
  ``suspend_all`` RPC, and restores every state onto the ring
  successors.  In-flight requests that race the drain retry onto the
  session's new home, so a served stream never drops: the engine's
  checkpoints are exact (see :class:`~repro.engine.SessionState`), and
  a migrated stream is bit-identical to an unmigrated one.

Per-worker **in-flight windows** (a bounded semaphore per handle) keep
one slow worker from absorbing every router thread: callers queue at
the window instead of stacking RPCs onto a wedged socket.
"""

from __future__ import annotations

import itertools
import os
import random
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable, Mapping

from ..engine.backend import ExecutionBackend
from ..engine.cache import CacheStats
from ..engine.records import ReleaseLog, ReleaseRecord
from ..engine.session import SessionState
from ..errors import (
    FrameTooLargeError,
    ServiceError,
    SessionError,
    WorkerDownError,
)
from ..obs.registry import LatencyHistogram
from ..obs.trace import current as current_trace
from .codec import decode_message, encode_call
from .control import RetryPolicy
from .frames import MAX_RPC_FRAME_BYTES
from .ring import DEFAULT_REPLICAS, HashRing
from .transport import SocketChannel

__all__ = ["ClusterBackend", "WorkerHandle", "parse_address"]

#: Default per-RPC deadline.  Finite on purpose: a cluster hop that can
#: block forever turns one hung worker into a wedged router.
DEFAULT_RPC_TIMEOUT_S = 120.0
#: Seconds allowed for the TCP connect + hello of one worker.
CONNECT_TIMEOUT_S = 30.0
#: In-flight RPCs allowed per worker before callers queue locally.
DEFAULT_WINDOW = 32
#: Seconds between heartbeat pings per worker (0 disables).
HEARTBEAT_INTERVAL_S = 5.0
#: Seconds a heartbeat waits before declaring the worker unreachable.
HEARTBEAT_TIMEOUT_S = 5.0
#: Seconds a racing request waits for its session's migration to land.
MIGRATION_WAIT_S = 60.0

_UNSET = object()


def parse_address(
    address: str, *, allow_ephemeral: bool = False
) -> tuple[str, str, int]:
    """Normalize ``tcp://host:port`` (or bare ``host:port``).

    Returns ``(normalized, host, port)``.  ``allow_ephemeral`` admits
    port 0 (an OS-assigned *listen* port -- never valid to dial).
    """
    raw = str(address).strip()
    rest = raw[len("tcp://") :] if raw.startswith("tcp://") else raw
    host, sep, port_text = rest.rpartition(":")
    if not sep or not host:
        raise ServiceError(
            f"worker address must look like tcp://host:port, got {address!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ServiceError(
            f"worker address has a non-numeric port: {address!r}"
        ) from None
    if not (0 if allow_ephemeral else 1) <= port < 65536:
        raise ServiceError(f"worker port out of range in {address!r}")
    return f"tcp://{host}:{port}", host, port


class _Waiter:
    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None


class WorkerHandle:
    """Router-side endpoint of one worker: a pipelined RPC channel.

    One socket, many concurrent calls: a writer lock serializes frame
    sends, a dedicated reader thread matches replies to waiters by
    correlation id, and a bounded window caps in-flight RPCs.  Any
    channel failure -- hangup, undecodable reply, or a call missing its
    deadline -- fails the handle *and every pending call* with typed
    :class:`WorkerDownError`; the error persists for later calls, so a
    lost worker is loud, not silent.
    """

    def __init__(
        self,
        address: str,
        max_frame_bytes: int = MAX_RPC_FRAME_BYTES,
        window: int = DEFAULT_WINDOW,
        rpc_timeout_s: float | None = DEFAULT_RPC_TIMEOUT_S,
        connect_timeout_s: float = CONNECT_TIMEOUT_S,
    ):
        import socket as socket_module

        self.address, host, port = parse_address(address)
        self.pid: int | None = None
        #: Relative placement weight from the worker's hello frame.
        self.capacity: float = 1.0
        #: Latest live-load heartbeat payload (sessions, queue depth,
        #: EWMA step latency); empty until the first ping answers.
        self.load: dict = {}
        self.alive = True
        self._down_reason = "closed"
        self._rpc_timeout_s = rpc_timeout_s
        try:
            sock = socket_module.create_connection(
                (host, port), timeout=connect_timeout_s
            )
        except OSError as error:
            raise WorkerDownError(
                f"cannot connect to worker {self.address}: {error}"
            ) from error
        sock.settimeout(None)
        self._channel = SocketChannel(sock, max_frame_bytes)
        self._send_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._pending: dict[int, _Waiter] = {}
        self.rpc_latency = LatencyHistogram()
        self.last_heartbeat = time.monotonic()
        self._ids = itertools.count(1)
        self._window = threading.BoundedSemaphore(int(window))
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"repro-cluster-read-{port}",
            daemon=True,
        )
        self._reader.start()

    # -- failure path --------------------------------------------------
    def _down_error(self, prefix: str = "") -> WorkerDownError:
        return WorkerDownError(
            f"{prefix}worker {self.address} is down: {self._down_reason}"
        )

    def _fail(self, reason: str) -> None:
        with self._state_lock:
            if not self.alive:
                return
            self.alive = False
            self._down_reason = reason
            pending = list(self._pending.values())
            self._pending.clear()
        self._channel.close()  # wakes the reader thread
        for waiter in pending:
            waiter.error = self._down_error()
            waiter.event.set()

    def _read_loop(self) -> None:
        while True:
            try:
                payload = self._channel.recv(None)
            except Exception as error:  # noqa: BLE001 - hangup/oversize/reset
                if self.alive:
                    self._fail(f"connection lost ({type(error).__name__})")
                return
            try:
                message = decode_message(payload)
            except Exception as error:  # noqa: BLE001 - garbage on the wire
                self._fail(f"undecodable reply ({error})")
                return
            with self._state_lock:
                waiter = self._pending.pop(message.get("id"), None)
            if waiter is None:
                continue  # unsolicited (e.g. a protocol error with id None)
            if message["kind"] == "ok":
                waiter.result = message["result"]
            elif message["kind"] == "err":
                waiter.error = message["error"]
            else:
                waiter.error = ServiceError(
                    f"worker {self.address} sent a {message['kind']!r} frame"
                )
            waiter.event.set()

    # -- observability -------------------------------------------------
    @property
    def inflight(self) -> int:
        """RPCs currently awaiting a reply (pipelined, so can exceed 1)."""
        with self._state_lock:
            return len(self._pending)

    def health(self, raw: bool = False) -> dict:
        """Local-state health row (no RPC; safe for probes/scrapes).

        ``raw`` swaps the human-readable latency snapshot for the
        mergeable :meth:`~repro.obs.registry.LatencyHistogram.state`.
        """
        with self._state_lock:
            load = {k: v for k, v in self.load.items() if k != "pong"}
        return {
            "alive": self.alive,
            "inflight": self.inflight,
            "heartbeat_age_s": round(time.monotonic() - self.last_heartbeat, 3),
            "capacity": self.capacity,
            "load": load,
            "rpc_latency": (
                self.rpc_latency.state() if raw else self.rpc_latency.snapshot()
            ),
        }

    # -- calls ---------------------------------------------------------
    def call(self, op: str, args=None, timeout_s=_UNSET, windowed: bool = True):
        """One pipelined RPC; raises the worker's typed error or
        :class:`WorkerDownError` on channel failure / missed deadline."""
        timeout = self._rpc_timeout_s if timeout_s is _UNSET else timeout_s
        request_id = next(self._ids)
        ctx = current_trace()
        trace_id = ctx[1] if ctx is not None and ctx[0].enabled else None
        payload = encode_call(op, args, request_id, trace=trace_id)
        waiter = _Waiter()
        started = time.perf_counter()
        if windowed:
            self._window.acquire()
        try:
            with self._state_lock:
                if not self.alive:
                    raise self._down_error()
                self._pending[request_id] = waiter
            try:
                with self._send_lock:
                    self._channel.send(payload)
            except FrameTooLargeError:
                # Nothing hit the wire; the channel stays healthy.
                with self._state_lock:
                    self._pending.pop(request_id, None)
                raise
            except OSError as error:
                self._fail(f"send failed ({type(error).__name__})")
                raise self._down_error() from error
            if not waiter.event.wait(timeout):
                self._fail(
                    f"no reply to {op!r} within {timeout:.1f}s (hung worker)"
                )
                raise self._down_error()
        finally:
            if windowed:
                self._window.release()
        # The worker answered (typed errors included): record the round
        # trip and refresh the liveness stamp.  Histogram writes are
        # serialized under the state lock because calls are pipelined
        # across router threads.
        elapsed = time.perf_counter() - started
        with self._state_lock:
            self.rpc_latency.record(elapsed)
            self.last_heartbeat = time.monotonic()
        if trace_id is not None:
            ctx[0].record(
                "rpc", trace_id, elapsed, op=op, worker=self.address
            )
        if waiter.error is not None:
            raise waiter.error
        return waiter.result

    def ping(self, timeout_s: float = HEARTBEAT_TIMEOUT_S) -> bool:
        """One heartbeat; False (and a dead handle) on silence.

        Unwindowed: heartbeats must get through even when real traffic
        has the window saturated, and workers answer pings on the event
        loop even mid-``step_batch``, so a busy worker is never
        mistaken for a hung one.
        """
        try:
            reply = self.call("ping", None, timeout_s=timeout_s, windowed=False)
        except Exception:  # noqa: BLE001 - any failure means unhealthy
            return False
        if reply == "pong":  # pre-load-reporting worker build
            return True
        if isinstance(reply, dict) and reply.get("pong"):
            with self._state_lock:
                self.load = reply
            return True
        return False

    def hello(self, timeout_s: float = CONNECT_TIMEOUT_S) -> dict:
        """The worker's identity/config frame; records its pid/capacity."""
        info = self.call("hello", None, timeout_s=timeout_s, windowed=False)
        self.pid = int(info["pid"])
        capacity = info.get("capacity")
        if isinstance(capacity, (int, float)) and capacity > 0:
            self.capacity = float(capacity)
        return info

    def close(self) -> None:
        self._fail("closed by router")


class ClusterBackend(ExecutionBackend):
    """A fleet of TCP workers behind the :class:`ExecutionBackend` surface.

    Parameters
    ----------
    addresses:
        Worker addresses (``tcp://host:port``); all must be reachable at
        construction and share the router's engine configuration
        (verified via each worker's hello frame).
    rpc_timeout_s:
        Per-RPC deadline (``None`` waits forever -- discouraged).
    window:
        Max in-flight RPCs per worker before callers queue.
    heartbeat_interval_s:
        Idle heartbeat period (0 disables the thread).
    replicas:
        Virtual ring points per worker (see :mod:`repro.cluster.ring`).
    """

    remote = True

    def __init__(
        self,
        addresses: Iterable[str],
        *,
        rpc_timeout_s: float | None = DEFAULT_RPC_TIMEOUT_S,
        connect_timeout_s: float = CONNECT_TIMEOUT_S,
        window: int = DEFAULT_WINDOW,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
        heartbeat_timeout_s: float = HEARTBEAT_TIMEOUT_S,
        max_frame_bytes: int = MAX_RPC_FRAME_BYTES,
        replicas: int = DEFAULT_REPLICAS,
        retry: RetryPolicy | None = None,
    ):
        normalized = [parse_address(a)[0] for a in addresses]
        if not normalized:
            raise ServiceError("a cluster backend needs at least one worker")
        if len(set(normalized)) != len(normalized):
            raise ServiceError(f"duplicate worker addresses in {normalized}")
        self._addresses = normalized
        self.n_shards = len(normalized)
        self._replicas = int(replicas)
        self._heartbeat_timeout_s = float(heartbeat_timeout_s)
        # Remembered so `join_worker` dials newcomers identically.
        self._rpc_timeout_s = rpc_timeout_s
        self._connect_timeout_s = float(connect_timeout_s)
        self._window = int(window)
        self._max_frame_bytes = int(max_frame_bytes)
        self._retry = retry if retry is not None else RetryPolicy(
            deadline_s=MIGRATION_WAIT_S
        )
        self._handles: dict[str, WorkerHandle] = {}
        self._sessions: dict[str, str] = {}  # sid -> worker address
        self._draining: set[str] = set()
        self._migrating: dict[str, threading.Event] = {}
        self._worker_down_listeners: list = []
        self._lock = threading.Lock()
        self._closed = False
        self._stop_heartbeat = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        try:
            for address in normalized:
                self._handles[address] = WorkerHandle(
                    address,
                    max_frame_bytes=max_frame_bytes,
                    window=window,
                    rpc_timeout_s=rpc_timeout_s,
                    connect_timeout_s=connect_timeout_s,
                )
            hellos = {
                address: handle.hello(connect_timeout_s)
                for address, handle in self._handles.items()
            }
        except BaseException:
            self.close()
            raise
        first = hellos[normalized[0]]
        for address, info in hellos.items():
            if (info["horizon"], info["n_states"]) != (
                first["horizon"],
                first["n_states"],
            ):
                self.close()
                raise ServiceError(
                    f"worker {address} runs a different engine configuration "
                    f"(horizon={info['horizon']}, n_states={info['n_states']}) "
                    f"than {normalized[0]} (horizon={first['horizon']}, "
                    f"n_states={first['n_states']}); start every worker with "
                    "the same engine flags as the router"
                )
        self._horizon = int(first["horizon"])
        self._n_states = int(first["n_states"])
        self._ring: HashRing | None = None
        self._rebuild_ring()
        # Sized generously past the initial fleet: threads spawn lazily,
        # and `join_worker` can grow membership at runtime (fleets past
        # this cap still work; their batch waves just queue).
        self._dispatch = ThreadPoolExecutor(
            max_workers=max(32, self.n_shards),
            thread_name_prefix="repro-cluster-rpc",
        )
        if heartbeat_interval_s and heartbeat_interval_s > 0:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(float(heartbeat_interval_s),),
                name="repro-cluster-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    # ------------------------------------------------------------------
    # membership / placement
    # ------------------------------------------------------------------
    def _rebuild_ring(self) -> None:
        """Recompute the placement ring from live, non-draining workers.

        Capacity-weighted: each member's virtual-point count scales with
        the capacity it reported in hello, so a 16-core worker owns ~4x
        the arcs of a 4-core one and ``join_worker`` places a newcomer's
        arcs proportionally.
        """
        members = [
            address
            for address in self._addresses
            if self._handles[address].alive and address not in self._draining
        ]
        weights = {
            address: self._handles[address].capacity for address in members
        }
        self._ring = (
            HashRing(members, self._replicas, weights) if members else None
        )

    def _heartbeat_loop(self, interval_s: float) -> None:
        # Jittered period: a large fleet of routers (or one router over
        # many workers) must not ping in lockstep and synchronize its
        # load spikes.
        rng = random.Random(os.getpid())
        while not self._stop_heartbeat.wait(
            interval_s * rng.uniform(0.8, 1.2)
        ):
            died = []
            for address, handle in list(self._handles.items()):
                if handle.alive and not handle.ping(self._heartbeat_timeout_s):
                    died.append(address)
            for address in died:
                self._after_worker_down(address)

    def _placement_ring(self) -> HashRing:
        with self._lock:
            ring = self._ring
        if ring is None:
            raise WorkerDownError(
                "no live cluster worker accepts placements "
                f"(workers: {self._addresses}, draining: {sorted(self._draining)})"
            )
        return ring

    def _assigned(self, session_id: str) -> str:
        with self._lock:
            address = self._sessions.get(session_id)
        if address is None:
            raise SessionError(f"no open session {session_id!r}")
        return address

    def _after_worker_down(self, address: str) -> None:
        with self._lock:
            self._rebuild_ring()
        for listener in list(self._worker_down_listeners):
            try:
                listener(address)
            except Exception:  # noqa: BLE001 - listeners must not wedge ops
                pass

    def add_worker_down_listener(self, listener) -> None:
        """Register ``listener(address)`` for worker-death notifications.

        Fired from heartbeat sweeps *and* from the op path that first
        trips over a dead worker; listeners must be fast and non-raising
        (a :class:`~repro.cluster.control.ClusterSupervisor` hands the
        actual recovery to a background thread).
        """
        self._worker_down_listeners.append(listener)

    def worker_addresses(self) -> list[str]:
        """The configured worker fleet, in construction order."""
        with self._lock:
            return list(self._addresses)

    def assignment_of(self, session_id: str) -> str | None:
        """The session's current home address (``None`` when absent)."""
        with self._lock:
            return self._sessions.get(session_id)

    def forget_session(self, session_id: str) -> None:
        """Drop a session's assignment without touching any worker.

        The recovery path's primitive: the old home is dead (nothing to
        suspend), and the supervisor re-places the session via
        :meth:`resume`.
        """
        with self._lock:
            self._sessions.pop(session_id, None)

    def down_assignments(self) -> dict[str, list[str]]:
        """``address -> [session ids]`` for every *dead* worker.

        The supervisor's work list: these sessions answer every op with
        :class:`WorkerDownError` until they are recovered or forgotten.
        """
        with self._lock:
            dead = {
                address
                for address, handle in self._handles.items()
                if not handle.alive
            }
            out: dict[str, list[str]] = {address: [] for address in dead}
            for sid, address in self._sessions.items():
                if address in dead:
                    out[address].append(sid)
        return out

    # ------------------------------------------------------------------
    # session ops (assignment-routed, migration-aware)
    # ------------------------------------------------------------------
    def _await_migration(self, session_id: str) -> bool:
        """Wait out an in-progress migration of ``session_id`` (if any)."""
        with self._lock:
            event = self._migrating.get(session_id)
        if event is None:
            return False
        event.wait(MIGRATION_WAIT_S)
        return True

    def _call_session(self, session_id: str, op: str, args):
        """Route an op to the session's worker, retrying across a drain.

        A request can race a migration: it resolves the old assignment,
        the drain suspends the session, and the old worker answers
        ``SessionError``.  The retry waits for the migration to land
        (bounded), re-resolves the assignment and tries the new home --
        so a served stream crosses a drain without dropping.  Attempts
        and backoff come from the shared :class:`RetryPolicy` (the same
        budget recovery races use); a genuine engine-side
        ``SessionError`` -- no migration in flight, assignment unmoved
        -- propagates immediately.
        """
        last_error: BaseException | None = None
        for delay_s in self._retry.schedule():
            if delay_s:
                time.sleep(delay_s)
            address = self._assigned(session_id)
            with self._lock:
                handle = self._handles.get(address)
            if handle is None:
                # Membership changed between resolve and dispatch
                # (`leave_worker` raced us); re-resolve on the next try.
                last_error = SessionError(f"no open session {session_id!r}")
                continue
            try:
                return handle.call(op, args)
            except WorkerDownError:
                self._after_worker_down(address)
                raise
            except SessionError as error:
                migrated = self._await_migration(session_id)
                with self._lock:
                    moved = self._sessions.get(session_id)
                if not migrated and (moved is None or moved == address):
                    raise  # a genuine engine-side session error
                last_error = error
        assert last_error is not None
        raise last_error

    def open(self, session_id: str, seed: int | None = None, scenario=None) -> int:
        ring = self._placement_ring()
        last_error: BaseException | None = None
        for address in ring.successors(session_id):
            handle = self._handles[address]
            if not handle.alive:
                continue
            try:
                horizon = handle.call("open", (session_id, seed, scenario))
            except WorkerDownError as error:
                # Worker died under us: re-route the open to the next
                # ring member instead of failing a fresh session.
                self._after_worker_down(address)
                last_error = error
                continue
            with self._lock:
                self._sessions[session_id] = address
            return horizon
        raise last_error if last_error is not None else WorkerDownError(
            "no live cluster worker accepts placements"
        )

    def contains(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    def resident_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def session_ids(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def step(self, session_id: str, cell: int) -> ReleaseRecord:
        return self._call_session(session_id, "step", (session_id, cell))

    def step_batch(
        self, cells: Mapping[str, int]
    ) -> tuple[dict[str, ReleaseRecord], dict[str, BaseException]]:
        """One wave: at most one RPC per worker, racing drains retried."""
        with self._lock:
            assignment = {
                sid: self._sessions.get(sid) for sid in cells
            }
            handles = dict(self._handles)
        by_worker: dict[str, dict[str, int]] = {}
        records: dict[str, ReleaseRecord] = {}
        errors: dict[str, BaseException] = {}
        for sid, cell in cells.items():
            address = assignment[sid]
            if address is None or address not in handles:
                errors[sid] = SessionError(f"no open session {sid!r}")
            else:
                by_worker.setdefault(address, {})[sid] = cell
        futures = {
            address: self._dispatch.submit(
                handles[address].call, "step_batch", worker_cells
            )
            for address, worker_cells in by_worker.items()
        }
        for address, future in futures.items():
            try:
                worker_records, worker_errors = future.result()
            except WorkerDownError as error:
                self._after_worker_down(address)
                for sid in by_worker[address]:
                    errors[sid] = error
                continue
            except Exception as error:  # noqa: BLE001 - transport-level
                for sid in by_worker[address]:
                    errors[sid] = error
                continue
            records.update(worker_records)
            errors.update(worker_errors)
        # Members that lost a race with a migration answered
        # SessionError from their *old* worker; retry them on the new
        # assignment (rare: only while a drain is in flight).
        for sid in list(errors):
            error = errors[sid]
            if not isinstance(error, SessionError):
                continue
            old = assignment.get(sid)
            if old is None:
                continue
            migrated = self._await_migration(sid)
            with self._lock:
                moved = self._sessions.get(sid)
            if not migrated and (moved is None or moved == old):
                continue
            try:
                records[sid] = self._call_session(sid, "step", (sid, cells[sid]))
                del errors[sid]
            except Exception as retry_error:  # noqa: BLE001 - keep typed
                errors[sid] = retry_error
        return records, errors

    def peek_budget(self, session_id: str) -> float:
        return self._call_session(session_id, "peek_budget", session_id)

    def finish(self, session_id: str) -> ReleaseLog:
        log = self._call_session(session_id, "finish", session_id)
        with self._lock:
            self._sessions.pop(session_id, None)
        return log

    def checkpoint(self, session_id: str) -> SessionState:
        return self._call_session(session_id, "checkpoint", session_id)

    def suspend(self, session_id: str) -> SessionState:
        state = self._call_session(session_id, "suspend", session_id)
        with self._lock:
            self._sessions.pop(session_id, None)
        return state

    def suspend_all(self) -> tuple[list[SessionState], list[str]]:
        """Drain the whole fleet; dead workers report their losses."""
        futures = [
            (address, self._dispatch.submit(handle.call, "suspend_all"))
            for address, handle in list(self._handles.items())
            if handle.alive
        ]
        states: list[SessionState] = []
        failed: set[str] = set()
        for address, future in futures:
            try:
                states.extend(future.result())
            except Exception:  # noqa: BLE001 - worker down mid-drain
                failed.add(address)
        with self._lock:
            dead = failed | {
                address
                for address, handle in self._handles.items()
                if not handle.alive
            }
            lost = [
                sid
                for sid, address in self._sessions.items()
                if address in dead
            ]
            self._sessions.clear()
            self._rebuild_ring()
        return states, lost

    def resume(self, state: SessionState) -> str:
        ring = self._placement_ring()
        session_id = state.session_id
        last_error: BaseException | None = None
        for address in ring.successors(session_id):
            handle = self._handles[address]
            if not handle.alive:
                continue
            try:
                sid = handle.call("resume", state)
            except WorkerDownError as error:
                self._after_worker_down(address)
                last_error = error
                continue
            with self._lock:
                self._sessions[sid] = address
            return sid
        raise last_error if last_error is not None else WorkerDownError(
            "no live cluster worker accepts placements"
        )

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def drain_worker(self, address: str) -> dict:
        """Live-migrate every session off ``address``; it gets no more.

        Marks the worker draining (the ring immediately stops placing
        new sessions there), checkpoints its full residency via one
        ``suspend_all`` RPC, and restores each state onto its ring
        successor.  Requests racing the drain retry onto the new home
        (see :meth:`_call_session`), so no served stream drops.  The
        worker stays connected afterwards -- stats still show it, it
        just owns nothing -- and is typically stopped by its operator.

        Returns a summary: ``{"worker", "migrated", "targets",
        "remaining"}``.  Raises :class:`ServiceError` when the address
        is unknown or no other live worker could take the sessions, and
        :class:`WorkerDownError` when the drained worker dies mid-drain
        (its unmigrated sessions are then reported by
        :meth:`lost_session_ids`).
        """
        normalized, _, _ = parse_address(address)
        handle = self._handles.get(normalized)
        if handle is None:
            raise ServiceError(
                f"unknown worker {address!r}; this cluster serves "
                f"{self._addresses}"
            )
        with self._lock:
            self._draining.add(normalized)
            self._rebuild_ring()
            ring = self._ring
            moving = [
                sid
                for sid, assigned in self._sessions.items()
                if assigned == normalized
            ]
            for sid in moving:
                self._migrating.setdefault(sid, threading.Event())
        try:
            if ring is None:
                raise ServiceError(
                    f"cannot drain {normalized}: no other live worker to "
                    "migrate its sessions onto"
                )
            states = handle.call("suspend_all")
            targets: Counter[str] = Counter()
            for state in states:
                sid = state.session_id
                placed = False
                for target in ring.successors(sid):
                    target_handle = self._handles[target]
                    if not target_handle.alive or target == normalized:
                        continue
                    try:
                        target_handle.call("resume", state)
                    except WorkerDownError:
                        self._after_worker_down(target)
                        continue
                    with self._lock:
                        self._sessions[sid] = target
                        event = self._migrating.pop(sid, None)
                    if event is not None:
                        event.set()
                    targets[target] += 1
                    placed = True
                    break
                if not placed:
                    raise WorkerDownError(
                        f"no live worker left to restore session {sid!r} "
                        f"during the drain of {normalized}"
                    )
            return {
                "worker": normalized,
                "migrated": len(states),
                "targets": dict(targets),
                "remaining": [
                    a
                    for a in self._addresses
                    if self._handles[a].alive and a not in self._draining
                ],
            }
        finally:
            with self._lock:
                for sid in moving:
                    event = self._migrating.pop(sid, None)
                    if event is not None:
                        event.set()

    # ------------------------------------------------------------------
    # dynamic membership
    # ------------------------------------------------------------------
    def join_worker(self, address: str) -> dict:
        """Admit a worker at runtime and rebalance onto it.

        Dials the newcomer with the same parameters as the construction
        fleet, verifies its hello frame against the router's engine
        configuration, adds it to the ring, and live-migrates exactly
        the sessions whose arcs the new member now owns -- consistent
        hashing means ~1/N of the keyspace moves and every other session
        stays put.  A dead member at the same address is replaced (the
        worker-restarted-on-its-port case); a live one makes the join a
        :class:`ServiceError`.

        Returns ``{"worker", "migrated", "targets", "workers"}``.
        """
        normalized, _, _ = parse_address(address)
        with self._lock:
            existing = self._handles.get(normalized)
            if existing is not None and existing.alive:
                raise ServiceError(
                    f"worker {normalized} is already a cluster member"
                )
        handle = WorkerHandle(
            normalized,
            max_frame_bytes=self._max_frame_bytes,
            window=self._window,
            rpc_timeout_s=self._rpc_timeout_s,
            connect_timeout_s=self._connect_timeout_s,
        )
        try:
            info = handle.hello(self._connect_timeout_s)
            if (int(info["horizon"]), int(info["n_states"])) != (
                self._horizon,
                self._n_states,
            ):
                raise ServiceError(
                    f"worker {normalized} runs a different engine "
                    f"configuration (horizon={info['horizon']}, "
                    f"n_states={info['n_states']}) than this cluster "
                    f"(horizon={self._horizon}, n_states={self._n_states}); "
                    "start it with the same engine flags"
                )
        except BaseException:
            handle.close()
            raise
        with self._lock:
            old = self._handles.get(normalized)
            if old is not None and old.alive:
                handle.close()
                raise ServiceError(
                    f"worker {normalized} is already a cluster member"
                )
            if old is not None:
                old.close()
            if normalized not in self._addresses:
                self._addresses.append(normalized)
            self._handles[normalized] = handle
            self._draining.discard(normalized)
            self.n_shards = len(self._addresses)
            self._rebuild_ring()
            ring = self._ring
            # Only the arcs the newcomer now owns move -- and only off
            # *live* homes (dead workers' sessions are the recovery
            # path's job, not migration's).
            moving: list[tuple[str, str]] = []
            if ring is not None:
                for sid, home in self._sessions.items():
                    if home == normalized:
                        continue
                    source = self._handles.get(home)
                    if source is None or not source.alive:
                        continue
                    if ring.owner(sid) == normalized:
                        moving.append((sid, home))
            for sid, _ in moving:
                self._migrating.setdefault(sid, threading.Event())
        targets: Counter[str] = Counter()
        try:
            for sid, home in moving:
                source = self._handles.get(home)
                if source is None:
                    continue
                try:
                    state = source.call("suspend", sid)
                except SessionError:
                    continue  # finished/moved while we were migrating
                except WorkerDownError:
                    self._after_worker_down(home)
                    continue  # recovery's problem now, not the join's
                try:
                    handle.call("resume", state)
                    placed = normalized
                except WorkerDownError:
                    # The newcomer died mid-join: put the suspended
                    # session back on any surviving member rather than
                    # losing it.
                    self._after_worker_down(normalized)
                    self.resume(state)  # raises when nobody can take it
                    with self._lock:
                        placed = self._sessions[sid]
                with self._lock:
                    self._sessions[sid] = placed
                    event = self._migrating.pop(sid, None)
                if event is not None:
                    event.set()
                targets[placed] += 1
        finally:
            with self._lock:
                for sid, _ in moving:
                    event = self._migrating.pop(sid, None)
                    if event is not None:
                        event.set()
        return {
            "worker": normalized,
            "joined": True,
            "migrated": sum(targets.values()),
            "targets": dict(targets),
            "workers": self.worker_addresses(),
        }

    def leave_worker(self, address: str) -> dict:
        """Remove a worker from membership at runtime.

        A *live* member is drained first (:meth:`drain_worker` -- its
        sessions live-migrate to the ring successors), then dropped from
        the fleet and disconnected.  A *dead* member is simply dropped;
        any sessions still assigned to it are reported in the summary's
        ``"lost"`` list (with a supervisor in front, recovery has
        already rescued the recoverable ones).  Removing the last live
        worker is refused.

        Returns ``{"worker", "migrated", "lost", "workers"}``.
        """
        normalized, _, _ = parse_address(address)
        with self._lock:
            handle = self._handles.get(normalized)
            if handle is None:
                raise ServiceError(
                    f"unknown worker {address!r}; this cluster serves "
                    f"{self._addresses}"
                )
            live_others = [
                a
                for a in self._addresses
                if a != normalized and self._handles[a].alive
            ]
        migrated = 0
        if handle.alive:
            if not live_others:
                raise ServiceError(
                    f"cannot remove {normalized}: it is the last live worker"
                )
            migrated = self.drain_worker(normalized)["migrated"]
        with self._lock:
            stranded = sorted(
                sid
                for sid, assigned in self._sessions.items()
                if assigned == normalized
            )
            for sid in stranded:
                self._sessions.pop(sid, None)
            self._draining.discard(normalized)
            if normalized in self._addresses:
                self._addresses.remove(normalized)
            self._handles.pop(normalized, None)
            self.n_shards = len(self._addresses)
            self._rebuild_ring()
        handle.close()
        return {
            "worker": normalized,
            "migrated": migrated,
            "lost": stranded,
            "workers": self.worker_addresses(),
        }

    def cluster_status(self) -> dict:
        """A no-RPC membership snapshot (probe-safe, like health rows)."""
        with self._lock:
            counts = Counter(self._sessions.values())
            ring = self._ring
            workers = [
                {
                    "worker": address,
                    "alive": self._handles[address].alive,
                    "draining": address in self._draining,
                    "pid": self._handles[address].pid,
                    "sessions": counts.get(address, 0),
                    "heartbeat_age_s": round(
                        time.monotonic() - self._handles[address].last_heartbeat,
                        3,
                    ),
                    "capacity": self._handles[address].capacity,
                    "ring_points": (
                        ring.points_of(address) if ring is not None else 0
                    ),
                    "load": {
                        k: v
                        for k, v in self._handles[address].load.items()
                        if k != "pong"
                    },
                }
                for address in self._addresses
            ]
            ring_members = list(ring.members) if ring is not None else []
            total = len(self._sessions)
        return {
            "workers": workers,
            "sessions": total,
            "ring": {"members": ring_members, "replicas": self._replicas},
        }

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        return self._horizon

    @property
    def n_states(self) -> int:
        return self._n_states

    def cache_stats(self) -> CacheStats | None:
        totals: CacheStats | None = None
        for handle in list(self._handles.values()):
            if not handle.alive:
                continue
            try:
                stats = handle.call("cache_stats")
            except Exception:  # noqa: BLE001 - died just now
                continue
            if stats is None:
                continue
            if totals is None:
                totals = stats
            else:
                totals = CacheStats(
                    hits=totals.hits + stats.hits,
                    misses=totals.misses + stats.misses,
                    evictions=totals.evictions + stats.evictions,
                    size=totals.size + stats.size,
                    maxsize=totals.maxsize + stats.maxsize,
                )
        return totals

    def shard_stats(self) -> list[dict]:
        """One observability row per worker (address included)."""
        rows = []
        with self._lock:
            addresses = list(self._addresses)
            handles = dict(self._handles)
        for index, address in enumerate(addresses):
            handle = handles[address]
            draining = address in self._draining
            if handle.alive:
                try:
                    rows.append(
                        {
                            "shard": index,
                            "worker": address,
                            "alive": True,
                            "draining": draining,
                            "health": handle.health(),
                            **handle.call("stats"),
                        }
                    )
                    continue
                except Exception:  # noqa: BLE001 - died just now
                    pass
            with self._lock:
                routed = sum(
                    1 for a in self._sessions.values() if a == address
                )
            rows.append(
                {
                    "shard": index,
                    "worker": address,
                    "pid": handle.pid,
                    "alive": False,
                    "draining": draining,
                    "sessions": routed,
                    "lost_sessions": routed,
                }
            )
        return rows

    def worker_health(self) -> list[dict]:
        """One local-state health row per worker (no RPCs; probe-safe)."""
        with self._lock:
            rows = [
                (address, address in self._draining, self._handles[address])
                for address in self._addresses
            ]
        return [
            {
                "worker": address,
                "draining": draining,
                **handle.health(raw=True),
            }
            for address, draining, handle in rows
        ]

    def lost_session_ids(self) -> list[str]:
        """Sessions assigned to workers that are down (unreachable)."""
        with self._lock:
            dead = {
                address
                for address, handle in self._handles.items()
                if not handle.alive
            }
            return [
                sid for sid, address in self._sessions.items() if address in dead
            ]

    def close(self) -> None:
        """Disconnect from the fleet (workers keep running; idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop_heartbeat.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(1.0)
        for handle in self._handles.values():
            handle.close()
        dispatch = getattr(self, "_dispatch", None)
        if dispatch is not None:
            dispatch.shutdown(wait=False)

    def __enter__(self) -> "ClusterBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter shutdown
            pass
