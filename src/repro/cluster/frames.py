"""Bounded length-prefixed framing shared by every RPC transport.

One tiny, dependency-free module defines the frame discipline for both
RPC paths -- the local shard pipes of :mod:`repro.engine.shard` and the
TCP sockets of :mod:`repro.cluster.transport`:

* a frame is a 4-byte big-endian unsigned length followed by exactly
  that many payload bytes;
* every side enforces :data:`MAX_RPC_FRAME_BYTES` (overridable per
  channel) on *both* directions.  An attempted send of an oversized
  frame raises :class:`~repro.errors.FrameTooLargeError` before any
  byte hits the wire, so the channel stays usable; a received length
  header announcing an oversized frame raises the same typed error and
  the caller must close the channel, because the stream cannot be
  re-synchronized past the unread payload.

Keeping this module free of engine imports lets
:mod:`repro.engine.shard` use it without a circular dependency on the
cluster package.
"""

from __future__ import annotations

import struct

from ..errors import FrameTooLargeError, ProtocolError

__all__ = [
    "FRAME_HEADER",
    "MAX_RPC_FRAME_BYTES",
    "check_frame_size",
    "pack_frame",
    "payload_length",
]

#: Frame header: payload length as a 4-byte big-endian unsigned int.
FRAME_HEADER = struct.Struct(">I")

#: Default per-frame payload bound.  Generous -- a suspended session
#: with full emission history is ~100 KiB of JSON, and ``suspend_all``
#: ships a whole worker's residency in one frame -- but finite, so a
#: corrupt or hostile header can never make a worker allocate without
#: bound.
MAX_RPC_FRAME_BYTES = 64 << 20


def check_frame_size(n_bytes: int, max_frame_bytes: int = MAX_RPC_FRAME_BYTES) -> None:
    """Raise :class:`FrameTooLargeError` when a payload exceeds the bound."""
    if n_bytes > max_frame_bytes:
        raise FrameTooLargeError(
            f"RPC frame of {n_bytes} bytes exceeds the "
            f"{max_frame_bytes}-byte limit"
        )


def pack_frame(payload: bytes, max_frame_bytes: int = MAX_RPC_FRAME_BYTES) -> bytes:
    """Length-prefix ``payload``, enforcing the size bound before send."""
    check_frame_size(len(payload), max_frame_bytes)
    return FRAME_HEADER.pack(len(payload)) + payload


def payload_length(header: bytes, max_frame_bytes: int = MAX_RPC_FRAME_BYTES) -> int:
    """Decode a frame header, enforcing the size bound on receive."""
    if len(header) != FRAME_HEADER.size:
        raise ProtocolError(
            f"short frame header: {len(header)} bytes, need {FRAME_HEADER.size}"
        )
    (length,) = FRAME_HEADER.unpack(header)
    check_frame_size(length, max_frame_bytes)
    return int(length)
