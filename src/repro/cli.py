"""Command-line entry point: ``python -m repro.cli <experiment>``.

Reproduces any of the paper's figures/tables from the shell.  Run with
``--help`` for options; experiment names match DESIGN.md's index
(``fig7`` .. ``fig14``, ``table3``).
"""

from __future__ import annotations

import argparse
import sys

from .experiments.runners import (
    run_budget_over_time,
    run_conservative_release_table,
    run_runtime_scaling,
    run_utility_sweep,
)
from .experiments.scenarios import geolife_scenario, synthetic_scenario


def _fig_budget_over_time(args, window: tuple[int, int], label: str) -> str:
    scenario = synthetic_scenario(horizon=args.horizon, sigma=args.sigma)
    event = scenario.presence_event(0, 9, *window)
    events = [event]
    if args.second_window:
        events.append(scenario.presence_event(0, 9, 16, 20))
    fixed_alpha = [(f"eps={e}" , 0.2, e) for e in (0.1, 0.5, 1.0)]
    result_a = run_budget_over_time(
        scenario, events, fixed_alpha, n_runs=args.runs,
        mechanism=args.mechanism, seed=args.seed,
        label=f"{label} (a): 0.2-PLM, varying eps",
    )
    fixed_eps = [(f"alpha={a}", a, 0.5) for a in (0.1, 0.5, 1.0)]
    result_b = run_budget_over_time(
        scenario, events, fixed_eps, n_runs=args.runs,
        mechanism=args.mechanism, seed=args.seed,
        label=f"{label} (b): varying PLM, eps=0.5",
    )
    return result_a.to_text() + "\n\n" + result_b.to_text()


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="PriSTE experiment harness"
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "table3",
        ],
    )
    parser.add_argument("--runs", type=int, default=10, help="runs per curve")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--horizon", type=int, default=50,
        help="release horizon T (clamped to >= 21 so the paper's event "
        "windows {4:8} and {16:20} fit)",
    )
    parser.add_argument("--sigma", type=float, default=1.0)
    parser.add_argument(
        "--geolife-root", default=None,
        help="path to a real Geolife dataset (default: simulator substitute)",
    )
    args = parser.parse_args(argv)
    args.horizon = max(args.horizon, 21)
    args.mechanism = "geoind"
    args.second_window = False

    if args.experiment == "fig7":
        print(_fig_budget_over_time(args, (4, 8), "Fig. 7 PRESENCE(S={1:10}, T={4:8})"))
    elif args.experiment == "fig8":
        print(_fig_budget_over_time(args, (16, 20), "Fig. 8 PRESENCE(S={1:10}, T={16:20})"))
    elif args.experiment == "fig9":
        args.second_window = True
        print(_fig_budget_over_time(args, (4, 8), "Fig. 9 two PRESENCE events"))
    elif args.experiment == "fig10":
        args.mechanism = "delta"
        args.horizon = min(args.horizon, 20)
        print(_fig_budget_over_time(args, (4, 8), "Fig. 10 delta-location set"))
    elif args.experiment == "fig11":
        scenario = geolife_scenario(root=args.geolife_root, rng=args.seed)
        result = run_utility_sweep(
            scenario_for=lambda params: scenario,
            events_for=lambda sc, params: [sc.presence_event(0, 9, 4, 8)],
            curve_settings=[(f"{a}-PLM", {"alpha": a}) for a in (0.5, 1.0, 3.0, 5.0)],
            epsilons=(0.1, 0.5, 1.0, 2.0),
            n_runs=args.runs,
            seed=args.seed,
            label="Fig. 11 Geolife PRESENCE(S={1:10}, T={4:8})",
        )
        print(result.to_text())
    elif args.experiment == "fig12":
        scenario = geolife_scenario(root=args.geolife_root, rng=args.seed)
        result = run_utility_sweep(
            scenario_for=lambda params: scenario,
            events_for=lambda sc, params: [sc.presence_event(0, 9, 4, 8)],
            curve_settings=[
                (f"delta={d}", {"alpha": 0.5, "mechanism": "delta", "delta": d})
                for d in (0.1, 0.3, 0.5, 0.7)
            ],
            epsilons=(0.1, 1.0, 2.0, 3.0),
            n_runs=args.runs,
            seed=args.seed,
            label="Fig. 12 Geolife, 0.5-PLM with delta-location set privacy",
        )
        print(result.to_text())
    elif args.experiment == "fig13":
        result = run_utility_sweep(
            scenario_for=lambda params: synthetic_scenario(
                sigma=params["sigma"], horizon=args.horizon
            ),
            events_for=lambda sc, params: [sc.presence_event(0, 9, 4, 8)],
            curve_settings=[
                (f"sigma={s}", {"alpha": 1.0, "sigma": s}) for s in (0.01, 0.1, 1.0, 10.0)
            ],
            epsilons=(0.1, 0.5, 1.0, 2.0),
            n_runs=args.runs,
            seed=args.seed,
            label="Fig. 13 synthetic, 1-PLM, varying mobility pattern strength",
        )
        print(result.to_text())
    elif args.experiment == "fig14":
        scenario = synthetic_scenario(n_rows=8, n_cols=8, horizon=20)
        by_length = run_runtime_scaling(
            scenario, axis="length", values=(3, 5, 7, 9), fixed=5, seed=args.seed
        )
        by_width = run_runtime_scaling(
            scenario, axis="width", values=(3, 5, 7, 9), fixed=5, seed=args.seed
        )
        print(by_length.to_text())
        print()
        print(by_width.to_text())
    elif args.experiment == "table3":
        scenario = synthetic_scenario(horizon=20)
        event = scenario.presence_event(0, 9, 4, 8)
        table, _ = run_conservative_release_table(
            scenario, event,
            thresholds=(0.01, 0.1, 1.0, 2.0, 5.0, None),
            n_runs=max(1, args.runs // 2),
            seed=args.seed,
        )
        print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
