"""Command-line entry point: ``repro <experiment>`` / ``stream`` / ``serve`` / ``worker`` / ``stats`` / ``top``.

Six modes:

* ``repro fig7`` .. ``fig14``, ``table3`` -- reproduce one of the
  paper's figures/tables (run with ``--help`` for options);
* ``repro stream`` -- the single-process service loop: read JSON-lines
  location fixes from stdin, drive one
  :class:`~repro.engine.SessionManager`, and write one JSON release
  record per fix to stdout.  With ``--checkpoint-dir`` a SIGINT
  checkpoints every open session to disk and exits 0; the next
  invocation with the same directory resumes them mid-trajectory.
  ``--scenario FILE`` swaps the flag-built setting for a declarative
  :class:`~repro.scenario.ScenarioSpec` JSON file.
* ``repro serve`` -- the concurrent network service: an asyncio TCP
  server (:mod:`repro.service`) multiplexing many client connections
  onto one shared execution backend, with admission control, a worker
  pool and idle-session eviction to a pluggable store.  ``--shards N``
  swaps the in-process backend for a pool of N worker processes (each
  owning a full engine) for near-linear multi-core scaling, and
  ``--backend tcp://w1:9001,tcp://w2:9002`` swaps it for a
  :class:`~repro.cluster.ClusterBackend` routing sessions to ``repro
  worker`` processes on any machines (consistent-hash placement, live
  migration via the ``migrate`` op).
* ``repro worker`` -- one cluster node: a full engine behind a TCP
  port (``--listen HOST:PORT``), serving the shard op set over the
  typed cluster codec for a ``repro serve --backend tcp://...`` router.
  Takes the same engine flags as ``serve`` -- start every worker of a
  cluster with identical flags (or the same ``--scenario`` file).
* ``repro cluster ADDR join|leave|status`` -- runtime membership ops
  against a running cluster server: admit a standby worker (the ring
  re-forms and only the moved arcs migrate), remove a worker (drain
  first when live), or print the membership + recovery snapshot.
* ``repro stats ADDR`` / ``repro top ADDR`` -- operator views of a
  running server: one pretty-printed ``stats`` snapshot (optionally
  with recent trace spans via ``--spans``), or a live refreshing
  terminal dashboard.  Both speak the ordinary service protocol, so
  they work against any reachable ``repro serve``.

Stream protocol (one JSON object per line)::

    {"session": "u1", "cell": 17}     -> release for session "u1"
    {"session": "u1", "op": "finish"} -> seal "u1", emit its summary
    {"op": "finish"}                  -> seal every open session

Sessions are opened on first sight, seeded deterministically from
``--seed`` and the session name so replays reproduce.
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
import zlib

from .engine import SessionManager
from .errors import ReproError
from .experiments.runners import (
    run_budget_over_time,
    run_conservative_release_table,
    run_runtime_scaling,
    run_utility_sweep,
)
from .experiments.scenarios import geolife_scenario, synthetic_scenario
from .scenario import (
    CalibrationSpec,
    ChainSpec,
    EventSpec,
    GridSpec,
    MechanismSpec,
    ScenarioSpec,
)


def _fig_budget_over_time(args, window: tuple[int, int], label: str) -> str:
    scenario = synthetic_scenario(horizon=args.horizon, sigma=args.sigma)
    event = scenario.presence_event(0, 9, *window)
    events = [event]
    if args.second_window:
        events.append(scenario.presence_event(0, 9, 16, 20))
    fixed_alpha = [(f"eps={e}" , 0.2, e) for e in (0.1, 0.5, 1.0)]
    result_a = run_budget_over_time(
        scenario, events, fixed_alpha, n_runs=args.runs,
        mechanism=args.mechanism, seed=args.seed,
        label=f"{label} (a): 0.2-PLM, varying eps",
    )
    fixed_eps = [(f"alpha={a}", a, 0.5) for a in (0.1, 0.5, 1.0)]
    result_b = run_budget_over_time(
        scenario, events, fixed_eps, n_runs=args.runs,
        mechanism=args.mechanism, seed=args.seed,
        label=f"{label} (b): varying PLM, eps=0.5",
    )
    return result_a.to_text() + "\n\n" + result_b.to_text()


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """The release-setting flags shared by ``stream`` and ``serve``."""
    parser.add_argument("--epsilon", type=float, default=0.5)
    parser.add_argument("--alpha", type=float, default=0.5,
                        help="base mechanism budget (PLM alpha, 1/km)")
    parser.add_argument("--mechanism", choices=["geoind", "delta"], default="geoind")
    parser.add_argument("--delta", type=float, default=0.2,
                        help="delta-location set parameter (mechanism=delta)")
    parser.add_argument("--rows", type=int, default=10)
    parser.add_argument("--cols", type=int, default=10)
    parser.add_argument("--sigma", type=float, default=1.0)
    parser.add_argument("--horizon", type=int, default=50)
    parser.add_argument("--event-cells", type=int, nargs=2, default=(0, 9),
                        metavar=("FIRST", "LAST"))
    parser.add_argument("--event-window", type=int, nargs=2, default=(4, 8),
                        metavar=("START", "END"))
    parser.add_argument("--prior-mode", choices=["worst_case", "fixed"],
                        default="fixed")
    parser.add_argument("--calibration", default="halving",
                        choices=["halving", "linear", "binary-search"])
    parser.add_argument("--cache-size", type=int, default=131_072,
                        help="shared verdict-cache capacity (0 disables)")


def _spec_from_flags(args) -> ScenarioSpec:
    """The stream/serve engine flags as a declarative ScenarioSpec.

    This is the flag surface's *definition*: stream and serve compile
    the same spec a ``--scenario FILE`` could have carried, so the CLI
    is a thin wrapper over :mod:`repro.scenario` and flag-built servers
    intern models under a real spec digest.
    """
    if args.mechanism == "delta":
        mechanism = MechanismSpec(
            "delta_location_set", {"alpha": args.alpha, "delta": args.delta}
        )
    else:
        mechanism = MechanismSpec("planar_laplace", {"alpha": args.alpha})
    return ScenarioSpec(
        grid=GridSpec(rows=args.rows, cols=args.cols),
        chain=ChainSpec.gaussian(sigma=args.sigma),
        events=(
            EventSpec.presence_range(
                args.event_cells[0], args.event_cells[1],
                start=args.event_window[0], end=args.event_window[1],
            ),
        ),
        mechanism=mechanism,
        epsilon=args.epsilon,
        horizon=args.horizon,
        calibration=CalibrationSpec(args.calibration),
        prior_mode=args.prior_mode,
    )


def _stream_manager(args) -> SessionManager:
    """Build the shared engine from the stream/serve flags (or a file)."""
    if getattr(args, "scenario", None):
        spec = ScenarioSpec.from_file(args.scenario)
    else:
        spec = _spec_from_flags(args)
    return SessionManager(spec, cache_size=args.cache_size)


def _session_seed(base_seed: int, name: str) -> int:
    """Deterministic per-session seed: replays reproduce releases."""
    return (base_seed << 32) ^ zlib.crc32(name.encode())


def _finish_line(manager: SessionManager, name: str) -> dict:
    log = manager.finish(name)
    return {
        "session": name,
        "op": "finished",
        "n_released": len(log),
        "average_budget": round(log.average_budget, 6) if len(log) else None,
        "n_conservative": log.n_conservative,
    }


def _stream_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro stream",
        description="Streaming release service over stdin/stdout JSON lines",
    )
    _add_engine_flags(parser)
    parser.add_argument("--scenario", default=None, metavar="FILE",
                        help="JSON ScenarioSpec file defining the release "
                        "setting (overrides the individual engine flags)")
    parser.add_argument("--seed", type=int, default=0,
                        help="non-negative base seed for per-session RNGs")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for SIGINT checkpoints: interrupted "
                        "sessions are saved here and resumed (and the files "
                        "consumed) by the next invocation")
    args = parser.parse_args(argv)
    if args.seed < 0:
        parser.error(f"--seed must be non-negative, got {args.seed}")

    try:
        manager = _stream_manager(args)
    except ReproError as error:
        parser.error(str(error))

    store = None
    incarnations: dict[str, int] = {}
    if args.checkpoint_dir is not None:
        import os

        from .service.store import DirectorySessionStore

        store = DirectorySessionStore(args.checkpoint_dir)
        # Incarnation counts checkpoint alongside the sessions: without
        # them, a resumed service re-opening a finished session would
        # replay an earlier incarnation's seed (and so its noise).
        incarnations_path = os.path.join(store.root, "_incarnations.json")
        try:
            with open(incarnations_path, "r", encoding="utf-8") as handle:
                incarnations = {
                    str(k): int(v) for k, v in json.load(handle).items()
                }
            os.remove(incarnations_path)
        except FileNotFoundError:
            pass
        resumed = []
        for sid in sorted(store.ids()):
            state = store.get(sid)
            if state is None:
                continue
            try:
                manager.resume(state)
            except ReproError as error:
                print(
                    json.dumps({"error": f"cannot resume {sid!r}: {error}"}),
                    file=sys.stderr, flush=True,
                )
                continue
            store.delete(sid)
            resumed.append(sid)
        if resumed:
            print(
                json.dumps({"op": "resumed", "sessions": resumed}),
                file=sys.stderr, flush=True,
            )

    try:
        _stream_loop(manager, args, incarnations)
    except KeyboardInterrupt:
        if store is None:
            raise
        names = list(manager.session_ids)
        for name in names:
            store.put(manager.checkpoint(name))
        if incarnations:
            with open(incarnations_path, "w", encoding="utf-8") as handle:
                json.dump(incarnations, handle)
        print(
            json.dumps({"op": "checkpointed", "sessions": sorted(names)}),
            file=sys.stderr, flush=True,
        )
        return 0
    return 0


def _stream_loop(
    manager: SessionManager, args, incarnations: dict[str, int]
) -> None:
    for line_no, line in enumerate(sys.stdin, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            message = json.loads(line)
            if not isinstance(message, dict):
                raise ValueError(
                    f"expected a JSON object, got {type(message).__name__}"
                )
            if message.get("op") == "finish":
                names = (
                    [str(message["session"])]
                    if "session" in message
                    else list(manager.session_ids)
                )
                for name in names:
                    print(json.dumps(_finish_line(manager, name)), flush=True)
                    incarnations[name] = incarnations.get(name, 0) + 1
                continue
            name = str(message["session"])
            cell = int(message["cell"])  # validate before opening a session
            if name not in manager:
                # Salt the seed with the incarnation count: a client that
                # keeps streaming after finishing gets a fresh RNG stream,
                # not a replay of its first log's noise.
                seed_name = name
                if incarnations.get(name):
                    seed_name = f"{name}#{incarnations[name]}"
                manager.open(name, rng=_session_seed(args.seed, seed_name))
            record = manager.step(name, cell)
            print(
                json.dumps(
                    {
                        "session": name,
                        "t": record.t,
                        "true_cell": record.true_cell,
                        "released_cell": record.released_cell,
                        "budget": round(record.budget, 6),
                        "n_attempts": record.n_attempts,
                        "conservative": record.conservative,
                    }
                ),
                flush=True,
            )
        except KeyError as error:
            print(
                json.dumps({"error": f"missing field {error}", "line": line_no}),
                file=sys.stderr,
                flush=True,
            )
        except (TypeError, ValueError, ReproError) as error:
            print(
                json.dumps({"error": str(error), "line": line_no}),
                file=sys.stderr,
                flush=True,
            )
    for name in list(manager.session_ids):
        print(json.dumps(_finish_line(manager, name)), flush=True)
    stats = manager.cache_stats()
    if stats is not None:
        print(
            json.dumps(
                {
                    "op": "cache-stats",
                    "hits": stats.hits,
                    "misses": stats.misses,
                    "hit_rate": round(stats.hit_rate, 4),
                }
            ),
            file=sys.stderr,
        )


def _worker_main(argv: list[str]) -> int:
    from .cluster.backend import parse_address
    from .cluster.chaos import FaultPlan
    from .cluster.worker import run_worker

    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="One cluster worker: a full engine behind a TCP port, "
        "driven by `repro serve --backend tcp://...`",
    )
    _add_engine_flags(parser)
    parser.add_argument("--scenario", default=None, metavar="FILE",
                        help="JSON ScenarioSpec file defining the default "
                        "release setting (overrides the engine flags); must "
                        "match the router's configuration")
    parser.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                        help="address to serve on (port 0 picks an ephemeral "
                        "port; the bound port is announced on the 'worker' "
                        "stdout line)")
    parser.add_argument("--fault-plan", default=None, metavar="FILE",
                        help="JSON FaultPlan file for deterministic fault "
                        "injection (kill-at-step, RPC delay, heartbeat "
                        "blackhole, hang); chaos drills only")
    parser.add_argument("--capacity", type=float, default=None,
                        help="relative capacity weight reported to the "
                        "router for load-aware placement (default: this "
                        "machine's CPU count); a worker with twice the "
                        "capacity owns ~twice the keyspace")
    args = parser.parse_args(argv)
    if args.capacity is not None and not args.capacity > 0:
        parser.error(f"--capacity must be > 0, got {args.capacity}")
    try:
        _, host, port = parse_address(args.listen, allow_ephemeral=True)
    except ReproError as error:
        parser.error(str(error))
    fault_plan = None
    if args.fault_plan is not None:
        try:
            fault_plan = FaultPlan.from_file(args.fault_plan)
        except ReproError as error:
            parser.error(str(error))
    # functools.partial over module-level _stream_manager: the factory
    # must survive the `spawn` start method (same pattern as --shards).
    factory = functools.partial(_stream_manager, args)
    try:
        return run_worker(
            factory, host, port,
            announce=lambda line: print(line, flush=True),
            fault_plan=fault_plan,
            capacity=args.capacity,
        )
    except ReproError as error:
        parser.error(str(error))


def _serve_main(argv: list[str]) -> int:
    import asyncio

    from .service.server import ReleaseServer, ServerConfig
    from .service.store import resolve_store

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Concurrent JSONL/TCP release service over one engine",
    )
    _add_engine_flags(parser)
    parser.add_argument("--scenario", action="append", default=[],
                        metavar="FILE", dest="scenario_files",
                        help="JSON ScenarioSpec file to allowlist for inline "
                        "'open' scenarios (repeatable); the flag-built "
                        "engine stays the default setting")
    parser.add_argument("--allow-any-scenario", action="store_true",
                        help="admit any well-formed inline scenario instead "
                        "of only the --scenario allowlist")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7733,
                        help="TCP port (0 picks an ephemeral port; the bound "
                        "port is announced on the 'serving' stdout line)")
    parser.add_argument("--max-sessions", type=int, default=10_000,
                        help="open-session admission cap (typed 'busy' beyond)")
    parser.add_argument("--max-resident", type=int, default=1_024,
                        help="sessions kept in memory; least-recently-used "
                        "idle sessions beyond this are checkpointed to the "
                        "store and restored on demand")
    parser.add_argument("--pending-per-connection", type=int, default=32,
                        help="in-flight requests per connection before the "
                        "server stops reading (TCP backpressure)")
    parser.add_argument("--workers", type=int, default=None,
                        help="step worker threads (default: CPU cores, "
                        "capped, divided by --shards when sharded; 0 runs "
                        "steps inline on the event loop)")
    parser.add_argument("--shards", type=int, default=0,
                        help="shard worker processes, each owning a full "
                        "engine; sessions route to shards by a stable hash "
                        "of their id, so served streams stay bit-identical "
                        "at any shard count (0 = in-process threads only)")
    parser.add_argument("--backend", default=None, metavar="ADDRS",
                        help="comma-separated `repro worker` addresses "
                        "(tcp://host:port,...): swap the local engine for a "
                        "cluster backend with consistent-hash placement and "
                        "live migration (incompatible with --shards; the "
                        "engine flags must match the workers')")
    parser.add_argument("--batch-window-ms", type=float, default=0.0,
                        help="micro-batching window for concurrent step "
                        "requests: steps arriving within the window are "
                        "coalesced into one batched engine call "
                        "(bit-identical streams; 0 disables)")
    parser.add_argument("--standby", default=None, metavar="ADDRS",
                        help="with --backend: comma-separated warm-standby "
                        "worker addresses (tcp://host:port,...); standbys "
                        "hold no sessions and are auto-joined to replace a "
                        "dead worker the moment its recovery fires")
    parser.add_argument("--shed-target-ms", type=float, default=100.0,
                        help="load shedding: acceptable standing executor "
                        "queue delay; once exceeded for --shed-interval-ms "
                        "the server sheds open (then step) requests with "
                        "the retryable 'overloaded' code (0 disables the "
                        "queue-delay trigger; deadline_ms shedding stays on)")
    parser.add_argument("--shed-interval-ms", type=float, default=1000.0,
                        help="how long the queue delay must stay above "
                        "--shed-target-ms before shedding starts")
    parser.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="N",
                        help="with --backend: auto-checkpoint every cluster "
                        "session to the store every N acknowledged steps, "
                        "bounding replay after a worker dies (0 disables "
                        "auto-checkpoints; recovery then falls back to "
                        "explicit 'checkpoint' snapshots)")
    parser.add_argument("--store", choices=["memory", "dir", "sqlite"],
                        default="memory",
                        help="suspended-session store backend")
    parser.add_argument("--store-path", default=None,
                        help="directory (store=dir) or database file "
                        "(store=sqlite)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        help="serve Prometheus /metrics plus /healthz and "
                        "/readyz on this port (0 picks an ephemeral port, "
                        "announced as 'metrics_port'; omit to disable)")
    parser.add_argument("--metrics-host", default=None,
                        help="bind address for the metrics listener "
                        "(default: --host)")
    parser.add_argument("--no-trace", action="store_true",
                        help="disable per-request tracing (span buffers, "
                        "slow-request log); stats/metrics keep working")
    parser.add_argument("--slow-request-ms", type=float, default=1000.0,
                        help="requests slower than this land in the "
                        "slow-span ring buffer")
    args = parser.parse_args(argv)
    for name in ("max_sessions", "max_resident", "pending_per_connection"):
        if getattr(args, name) < 1:
            parser.error(f"--{name.replace('_', '-')} must be >= 1")
    if args.workers is not None and args.workers < 0:
        parser.error("--workers must be >= 0")
    if args.batch_window_ms < 0:
        parser.error("--batch-window-ms must be >= 0")
    if args.slow_request_ms <= 0:
        parser.error("--slow-request-ms must be > 0")
    if args.metrics_port is not None and not 0 <= args.metrics_port < 65536:
        parser.error("--metrics-port must be in [0, 65535]")
    if args.shards < 0:
        parser.error("--shards must be >= 0")
    if args.shards > 0 and args.workers == 0:
        parser.error("--workers 0 (inline) is incompatible with --shards; "
                     "shard RPCs must stay off the event loop")
    if args.checkpoint_every < 0:
        parser.error("--checkpoint-every must be >= 0")
    if args.shed_target_ms < 0:
        parser.error("--shed-target-ms must be >= 0")
    if args.shed_interval_ms <= 0:
        parser.error("--shed-interval-ms must be > 0")
    if args.standby and not args.backend:
        parser.error("--standby requires --backend (standbys are cluster "
                     "workers held in reserve)")
    if args.backend:
        if args.shards > 0:
            parser.error("--backend (remote workers) and --shards (local "
                         "worker processes) are mutually exclusive")
        if args.workers == 0:
            parser.error("--workers 0 (inline) is incompatible with "
                         "--backend; worker RPCs must stay off the event loop")
    elif args.checkpoint_every > 0:
        parser.error("--checkpoint-every requires --backend (the recovery "
                     "supervisor only wraps a cluster backend)")

    standbys = [
        a for a in (s.strip() for s in (args.standby or "").split(",")) if a
    ]
    try:
        scenarios = [ScenarioSpec.from_file(path) for path in args.scenario_files]
        store = resolve_store(args.store, args.store_path)
        if args.backend:
            from .cluster.backend import ClusterBackend
            from .cluster.control import ClusterSupervisor

            addresses = [a for a in (s.strip() for s in args.backend.split(",")) if a]
            # The supervisor wraps every cluster backend: it heals dead
            # workers from store checkpoints + deterministic replay, and
            # is inert overhead while the fleet is healthy.
            engine = ClusterSupervisor(
                ClusterBackend(addresses),
                store,
                checkpoint_every=args.checkpoint_every,
                standbys=standbys,
            )
        elif args.shards > 0:
            # Each shard worker builds its own full engine from the
            # parsed flags (functools.partial over a module-level
            # function, so the factory survives the `spawn` start
            # method too).
            from .engine.shard import ShardPool

            engine = ShardPool(functools.partial(_stream_manager, args), args.shards)
        else:
            engine = _stream_manager(args)
    except ReproError as error:
        parser.error(str(error))
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_sessions=args.max_sessions,
        max_resident=args.max_resident,
        max_pending_per_connection=args.pending_per_connection,
        workers=args.workers,
        batch_window_ms=args.batch_window_ms,
        trace=not args.no_trace,
        slow_request_ms=args.slow_request_ms,
        metrics_port=args.metrics_port,
        metrics_host=args.metrics_host,
        shed_target_ms=args.shed_target_ms,
        shed_interval_ms=args.shed_interval_ms,
    )

    async def _serve() -> int:
        server = ReleaseServer(
            engine,
            store=store,
            config=config,
            scenarios=scenarios,
            allow_any_scenario=args.allow_any_scenario,
        )
        await server.start()
        print(
            json.dumps(
                {
                    "op": "serving",
                    "host": config.host,
                    "port": server.port,
                    "max_sessions": config.max_sessions,
                    "max_resident": config.max_resident,
                    "shards": args.shards,
                    "cluster_workers": getattr(engine, "n_shards", 0) if args.backend else 0,
                    "standbys": len(standbys),
                    "store": args.store,
                    "scenarios": len(scenarios),
                    "allow_any_scenario": args.allow_any_scenario,
                    "metrics_port": server.metrics_port,
                }
            ),
            flush=True,
        )
        try:
            server.install_signal_handlers()
        except NotImplementedError:  # non-Unix event loops
            pass
        summary = await server.wait_drained()
        print(json.dumps({"op": "drained", **summary}), flush=True)
        return 0

    try:
        return asyncio.run(_serve())
    finally:
        store.close()


def _ops_address(parser: argparse.ArgumentParser, raw: str) -> tuple[str, int]:
    """Parse a ``host:port`` / ``tcp://host:port`` serving address."""
    from .cluster.backend import parse_address

    try:
        _, host, port = parse_address(raw)
    except ReproError as error:
        parser.error(str(error))
    return host, port


def _cluster_main(argv: list[str]) -> int:
    from .service.client import ServiceClient

    parser = argparse.ArgumentParser(
        prog="repro cluster",
        description="Cluster membership ops against a running "
        "`repro serve --backend tcp://...`: admit or remove workers at "
        "runtime, or show the membership/recovery snapshot",
    )
    parser.add_argument("address", metavar="ADDR",
                        help="the server's host:port (or tcp://host:port)")
    parser.add_argument("action", choices=["join", "leave", "status"],
                        help="join/leave one worker, or show cluster status")
    parser.add_argument("worker", nargs="?", default=None,
                        metavar="WORKER",
                        help="the worker's tcp://host:port address "
                        "(required for join/leave)")
    args = parser.parse_args(argv)
    if args.action in ("join", "leave") and not args.worker:
        parser.error(f"'{args.action}' requires a WORKER address")
    if args.action == "status" and args.worker:
        parser.error("'status' takes no WORKER address")
    host, port = _ops_address(parser, args.address)
    try:
        # Generous timeout: join/leave live-migrate sessions.
        with ServiceClient(host, port, timeout=120.0) as client:
            if args.action == "join":
                result = client.join(args.worker)
            elif args.action == "leave":
                result = client.leave(args.worker)
            else:
                result = client.cluster_status()
    except (ReproError, OSError) as error:
        print(f"repro cluster: {error}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def _stats_main(argv: list[str]) -> int:
    from .obs.top import run_stats

    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="One stats snapshot of a running `repro serve` as "
        "pretty-printed JSON",
    )
    parser.add_argument("address", metavar="ADDR",
                        help="the server's host:port (or tcp://host:port)")
    parser.add_argument("--spans", type=int, default=0,
                        help="also fetch up to N recent + N slow trace "
                        "spans (0 = none)")
    args = parser.parse_args(argv)
    if args.spans < 0:
        parser.error("--spans must be >= 0")
    host, port = _ops_address(parser, args.address)
    try:
        run_stats(host, port, spans=args.spans)
    except (ReproError, OSError) as error:
        print(f"repro stats: {error}", file=sys.stderr)
        return 1
    return 0


def _top_main(argv: list[str]) -> int:
    from .obs.top import run_top

    parser = argparse.ArgumentParser(
        prog="repro top",
        description="Live terminal view of a running `repro serve`: "
        "sessions, latency, throughput, per-worker health",
    )
    parser.add_argument("address", metavar="ADDR",
                        help="the server's host:port (or tcp://host:port)")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="seconds between refreshes")
    parser.add_argument("--iterations", type=int, default=None,
                        help="stop after N refreshes (default: until ^C)")
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be > 0")
    host, port = _ops_address(parser, args.address)
    try:
        run_top(host, port, interval_s=args.interval, iterations=args.iterations)
    except KeyboardInterrupt:
        pass
    except (ReproError, OSError) as error:
        print(f"repro top: {error}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI dispatcher; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "stream":
        return _stream_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    if argv and argv[0] == "cluster":
        return _cluster_main(argv[1:])
    if argv and argv[0] == "stats":
        return _stats_main(argv[1:])
    if argv and argv[0] == "top":
        return _top_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PriSTE experiment harness",
        epilog="Streaming modes: `repro stream --help` (JSON lines on "
        "stdin/stdout) and `repro serve --help` (concurrent TCP service).",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "fig7", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "table3",
        ],
    )
    parser.add_argument("--runs", type=int, default=10, help="runs per curve")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--horizon", type=int, default=50,
        help="release horizon T (clamped to >= 21 so the paper's event "
        "windows {4:8} and {16:20} fit)",
    )
    parser.add_argument("--sigma", type=float, default=1.0)
    parser.add_argument(
        "--geolife-root", default=None,
        help="path to a real Geolife dataset (default: simulator substitute)",
    )
    args = parser.parse_args(argv)
    args.horizon = max(args.horizon, 21)
    args.mechanism = "geoind"
    args.second_window = False

    if args.experiment == "fig7":
        print(_fig_budget_over_time(args, (4, 8), "Fig. 7 PRESENCE(S={1:10}, T={4:8})"))
    elif args.experiment == "fig8":
        print(_fig_budget_over_time(args, (16, 20), "Fig. 8 PRESENCE(S={1:10}, T={16:20})"))
    elif args.experiment == "fig9":
        args.second_window = True
        print(_fig_budget_over_time(args, (4, 8), "Fig. 9 two PRESENCE events"))
    elif args.experiment == "fig10":
        args.mechanism = "delta"
        args.horizon = min(args.horizon, 20)
        print(_fig_budget_over_time(args, (4, 8), "Fig. 10 delta-location set"))
    elif args.experiment == "fig11":
        scenario = geolife_scenario(root=args.geolife_root, rng=args.seed)
        result = run_utility_sweep(
            scenario_for=lambda params: scenario,
            events_for=lambda sc, params: [sc.presence_event(0, 9, 4, 8)],
            curve_settings=[(f"{a}-PLM", {"alpha": a}) for a in (0.5, 1.0, 3.0, 5.0)],
            epsilons=(0.1, 0.5, 1.0, 2.0),
            n_runs=args.runs,
            seed=args.seed,
            label="Fig. 11 Geolife PRESENCE(S={1:10}, T={4:8})",
        )
        print(result.to_text())
    elif args.experiment == "fig12":
        scenario = geolife_scenario(root=args.geolife_root, rng=args.seed)
        result = run_utility_sweep(
            scenario_for=lambda params: scenario,
            events_for=lambda sc, params: [sc.presence_event(0, 9, 4, 8)],
            curve_settings=[
                (f"delta={d}", {"alpha": 0.5, "mechanism": "delta", "delta": d})
                for d in (0.1, 0.3, 0.5, 0.7)
            ],
            epsilons=(0.1, 1.0, 2.0, 3.0),
            n_runs=args.runs,
            seed=args.seed,
            label="Fig. 12 Geolife, 0.5-PLM with delta-location set privacy",
        )
        print(result.to_text())
    elif args.experiment == "fig13":
        result = run_utility_sweep(
            scenario_for=lambda params: synthetic_scenario(
                sigma=params["sigma"], horizon=args.horizon
            ),
            events_for=lambda sc, params: [sc.presence_event(0, 9, 4, 8)],
            curve_settings=[
                (f"sigma={s}", {"alpha": 1.0, "sigma": s}) for s in (0.01, 0.1, 1.0, 10.0)
            ],
            epsilons=(0.1, 0.5, 1.0, 2.0),
            n_runs=args.runs,
            seed=args.seed,
            label="Fig. 13 synthetic, 1-PLM, varying mobility pattern strength",
        )
        print(result.to_text())
    elif args.experiment == "fig14":
        scenario = synthetic_scenario(n_rows=8, n_cols=8, horizon=20)
        by_length = run_runtime_scaling(
            scenario, axis="length", values=(3, 5, 7, 9), fixed=5, seed=args.seed
        )
        by_width = run_runtime_scaling(
            scenario, axis="width", values=(3, 5, 7, 9), fixed=5, seed=args.seed
        )
        print(by_length.to_text())
        print()
        print(by_width.to_text())
    elif args.experiment == "table3":
        scenario = synthetic_scenario(horizon=20)
        event = scenario.presence_event(0, 9, 4, 8)
        table, _ = run_conservative_release_table(
            scenario, event,
            thresholds=(0.01, 0.1, 1.0, 2.0, 5.0, None),
            n_runs=max(1, args.runs // 2),
            seed=args.seed,
        )
        print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
