"""JSON serialization of models, events and release logs.

A practical library needs its artifacts to survive a process: trained
chains, event definitions and release logs round-trip through plain JSON
(arrays as nested lists -- no pickle, no custom binary).  Emission
matrices recorded in a log are included when present.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ._validation import as_float_array
from .core.priste import ReleaseLog, ReleaseRecord
from .errors import ValidationError
from .events.events import PatternEvent, PresenceEvent, SpatiotemporalEvent
from .geo.grid import GridMap
from .geo.regions import Region
from .markov.transition import TransitionMatrix

_FORMAT_VERSION = 1


def _check_kind(payload: dict, expected: str) -> None:
    kind = payload.get("kind")
    if kind != expected:
        raise ValidationError(f"expected a {expected!r} payload, got {kind!r}")


# ----------------------------------------------------------------------
# grids
# ----------------------------------------------------------------------
def grid_to_dict(grid: GridMap) -> dict:
    """JSON-ready representation of a grid."""
    return {
        "kind": "grid",
        "version": _FORMAT_VERSION,
        "n_rows": grid.n_rows,
        "n_cols": grid.n_cols,
        "cell_size_km": grid.cell_size_km,
        "origin_km": list(grid.origin_km),
    }


def grid_from_dict(payload: dict) -> GridMap:
    """Inverse of :func:`grid_to_dict`."""
    _check_kind(payload, "grid")
    return GridMap(
        n_rows=payload["n_rows"],
        n_cols=payload["n_cols"],
        cell_size_km=payload["cell_size_km"],
        origin_km=tuple(payload["origin_km"]),
    )


# ----------------------------------------------------------------------
# chains
# ----------------------------------------------------------------------
def chain_to_dict(chain: TransitionMatrix) -> dict:
    """JSON-ready representation of a transition matrix."""
    return {
        "kind": "chain",
        "version": _FORMAT_VERSION,
        "matrix": chain.matrix.tolist(),
    }


def chain_from_dict(payload: dict) -> TransitionMatrix:
    """Inverse of :func:`chain_to_dict`."""
    _check_kind(payload, "chain")
    return TransitionMatrix(as_float_array(payload["matrix"], "matrix"))


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
def event_to_dict(event: SpatiotemporalEvent) -> dict:
    """JSON-ready representation of a PRESENCE or PATTERN event."""
    if isinstance(event, PresenceEvent):
        return {
            "kind": "event",
            "version": _FORMAT_VERSION,
            "type": "presence",
            "n_cells": event.n_cells,
            "cells": list(event.region.cells),
            "start": event.start,
            "end": event.end,
        }
    if isinstance(event, PatternEvent):
        return {
            "kind": "event",
            "version": _FORMAT_VERSION,
            "type": "pattern",
            "n_cells": event.n_cells,
            "regions": [list(region.cells) for region in event.regions],
            "start": event.start,
        }
    raise ValidationError(f"cannot serialize event type {type(event).__name__}")


def event_from_dict(payload: dict) -> SpatiotemporalEvent:
    """Inverse of :func:`event_to_dict`."""
    _check_kind(payload, "event")
    n_cells = payload["n_cells"]
    if payload["type"] == "presence":
        return PresenceEvent(
            Region.from_cells(n_cells, payload["cells"]),
            start=payload["start"],
            end=payload["end"],
        )
    if payload["type"] == "pattern":
        return PatternEvent(
            [Region.from_cells(n_cells, cells) for cells in payload["regions"]],
            start=payload["start"],
        )
    raise ValidationError(f"unknown event type {payload['type']!r}")


# ----------------------------------------------------------------------
# release logs
# ----------------------------------------------------------------------
def release_log_to_dict(log: ReleaseLog) -> dict:
    """JSON-ready representation of a release log."""
    payload = {
        "kind": "release_log",
        "version": _FORMAT_VERSION,
        "records": [
            {
                "t": record.t,
                "true_cell": record.true_cell,
                "released_cell": record.released_cell,
                "budget": record.budget,
                "n_attempts": record.n_attempts,
                "conservative": record.conservative,
                "forced_uniform": record.forced_uniform,
                "elapsed_s": record.elapsed_s,
            }
            for record in log.records
        ],
    }
    if log.emission_matrices is not None:
        payload["emission_matrices"] = [
            matrix.tolist() for matrix in log.emission_matrices
        ]
    return payload


def release_log_from_dict(payload: dict) -> ReleaseLog:
    """Inverse of :func:`release_log_to_dict`."""
    _check_kind(payload, "release_log")
    records = [ReleaseRecord(**entry) for entry in payload["records"]]
    matrices = None
    if "emission_matrices" in payload:
        matrices = [
            np.asarray(matrix, dtype=np.float64)
            for matrix in payload["emission_matrices"]
        ]
    return ReleaseLog(records=records, emission_matrices=matrices)


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
_SERIALIZERS = {
    GridMap: grid_to_dict,
    TransitionMatrix: chain_to_dict,
    PresenceEvent: event_to_dict,
    PatternEvent: event_to_dict,
    ReleaseLog: release_log_to_dict,
}
_DESERIALIZERS = {
    "grid": grid_from_dict,
    "chain": chain_from_dict,
    "event": event_from_dict,
    "release_log": release_log_from_dict,
}


def save_json(obj, path: str) -> None:
    """Serialize a supported object to a JSON file."""
    serializer = _SERIALIZERS.get(type(obj))
    if serializer is None:
        raise ValidationError(f"cannot serialize objects of type {type(obj).__name__}")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(serializer(obj), handle)


def load_json(path: str):
    """Load any object previously written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    kind = payload.get("kind")
    deserializer = _DESERIALIZERS.get(kind)
    if deserializer is None:
        raise ValidationError(f"file {path!r} holds unknown kind {kind!r}")
    return deserializer(payload)
