"""Sharded multi-process execution: near-linear core scaling per machine.

One Python process can keep roughly one core busy with engine work --
the :class:`~repro.engine.session._StepDriver` state machine, RNG
draws, cache-key digests and solver dispatch all contend on the GIL
between the numpy kernels.  :class:`ShardPool` breaks that ceiling by
spawning N worker processes, each owning a *full*
:class:`~repro.engine.manager.SessionManager` (two-world models,
mechanism ladder and verdict cache built once per worker), and routing
every session to exactly one worker by a stable hash of its id:

* **Deterministic routing** -- :func:`shard_for` is a keyed-less
  blake2b hash, identical across processes, runs and machines, so the
  same session id always lands on the same shard for a given shard
  count (and re-routes consistently when a checkpoint taken under one
  shard count is restored under another).
* **RPC channel** -- one duplex pipe per worker carrying
  length-prefixed frames of the typed, versioned cluster codec
  (:mod:`repro.cluster.codec` payloads over a bounded
  :class:`~repro.cluster.transport.PipeChannel`; the same codec drives
  the TCP workers of :mod:`repro.cluster`, so nothing on any RPC path
  unpickles received bytes).  A lock per channel serializes
  request/response pairs; the worker is single-threaded, so per-shard
  ordering is inherent.  Frames beyond the size bound raise typed
  :class:`~repro.errors.FrameTooLargeError` on either direction.
* **Deadlines and heartbeats** -- every RPC accepts a deadline
  (``rpc_timeout_s``), and an idle heartbeat thread pings each shard,
  so a *hung* worker -- not just a dead one -- surfaces as typed
  :class:`~repro.errors.ShardDownError` with its sessions reported by
  :meth:`ShardPool.lost_session_ids`, instead of blocking callers
  forever.
* **Batched dispatch** -- :meth:`ShardPool.step_batch` groups a wave of
  steps by owning shard and sends *one* message per shard, each worker
  stepping its slice through the engine's batched
  :meth:`~repro.engine.manager.SessionManager.step_many` pipeline.
  Records reassemble bit-identically to the in-process path: lockstep
  stepping preserves each session's private RNG stream regardless of
  how the fleet is partitioned.
* **Crash containment** -- a worker that dies turns into typed
  :class:`~repro.errors.ShardDownError`\\ s for exactly its sessions
  (never a silent loss); the other shards keep serving, and
  :meth:`shard_stats`/:meth:`suspend_all` report the casualties.

Checkpoint, suspend and resume round-trip
:class:`~repro.engine.session.SessionState` through the owning shard,
so the serving layer's store-backed eviction and graceful drain work
unchanged on top.

Multi-tenancy: ``open`` RPCs carry an optional
:class:`~repro.scenario.ScenarioSpec`, and checkpoints embed the spec
plus its digest, so each worker's manager interns per-scenario models
on demand and a state restored into *any* pool -- any shard count, any
worker -- re-materializes the right models (see
:meth:`~repro.engine.manager.SessionManager.resume`).

Start method: ``fork`` where available (factories may be closures),
falling back to ``spawn`` (factories must then be picklable --
module-level callables or ``functools.partial`` over one).
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Mapping

import multiprocessing

from ..cluster.codec import decode_message, encode_call, encode_error, encode_ok
from ..cluster.frames import MAX_RPC_FRAME_BYTES
from ..cluster.transport import PipeChannel
from ..errors import FrameTooLargeError, ServiceError, ShardDownError
from ..obs.registry import LatencyHistogram
from ..obs.trace import current as current_trace
from .backend import ExecutionBackend, step_batch_on_manager
from .cache import CacheStats
from .manager import SessionManager
from .records import ReleaseLog, ReleaseRecord
from .session import SessionState

#: Seconds a freshly spawned worker gets to build its manager and report.
SPAWN_TIMEOUT_S = 120.0
#: Seconds a worker gets to exit after a shutdown frame before SIGTERM.
SHUTDOWN_TIMEOUT_S = 10.0
#: Seconds between idle heartbeat pings to each live shard (0 disables).
HEARTBEAT_INTERVAL_S = 10.0
#: Seconds a heartbeat ping may wait before declaring the shard hung.
HEARTBEAT_TIMEOUT_S = 5.0


def shard_for(session_id: str, n_shards: int) -> int:
    """The shard owning ``session_id``: a stable hash, mod ``n_shards``.

    Uses blake2b rather than ``hash()`` so the routing is identical in
    every process and run (``PYTHONHASHSEED`` never enters), which is
    what lets a restarted pool -- even one with a different shard count
    -- adopt checkpointed sessions consistently.
    """
    if n_shards < 1:
        raise ServiceError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.blake2b(session_id.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") % n_shards


def default_context() -> multiprocessing.context.BaseContext:
    """``fork`` where supported (closures allowed), else ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _worker_execute(manager: SessionManager, metrics, op: str, args, tracer=None):
    """Dispatch one RPC op against the worker's private manager.

    ``tracer`` (the worker process's :class:`~repro.obs.trace.Tracer`)
    only feeds the ``stats`` payload here -- the RPC loops record the
    actual ``solver`` spans, since only they see the propagated trace id.
    """
    if op == "step":
        sid, cell = args
        metrics.record_request("step")
        manager.validate_step(sid, cell)
        record = manager.step(sid, cell)
        metrics.record_step(record.elapsed_s, record)
        return record
    if op == "step_batch":
        records, errors = step_batch_on_manager(manager, args)
        for record in records.values():
            metrics.record_request("step")
            metrics.record_step(record.elapsed_s, record)
        for error in errors.values():
            metrics.record_error(type(error).__name__)
        return records, errors
    if op == "open":
        sid, seed, scenario = args
        metrics.record_request("open")
        manager.open(sid, rng=seed, scenario=scenario)
        metrics.record_session_event("opened")
        return manager.horizon_of(sid)
    if op == "peek_budget":
        metrics.record_request("peek_budget")
        return manager.peek_budget(args)
    if op == "finish":
        metrics.record_request("finish")
        log = manager.finish(args)
        metrics.record_session_event("finished")
        return log
    if op == "checkpoint":
        metrics.record_request("checkpoint")
        return manager.checkpoint(args)
    if op == "suspend":
        state = manager.suspend(args)
        metrics.record_session_event("evicted")
        return state
    if op == "resume":
        sid = manager.resume(args)
        metrics.record_session_event("restored")
        return sid
    if op == "suspend_all":
        states = [manager.suspend(sid) for sid in list(manager.session_ids)]
        metrics.record_session_event("evicted", len(states))
        return states
    if op == "session_ids":
        return manager.session_ids
    if op == "cache_stats":
        return manager.cache_stats()
    if op == "stats":
        cache = manager.cache_stats()
        return {
            "pid": os.getpid(),
            "sessions": len(manager),
            "scenarios": manager.scenario_digests(),
            "metrics": metrics.dump(),
            "tracing": None if tracer is None else tracer.stats(),
            "spans": [] if tracer is None else tracer.recent(32),
            "verdict_cache": None
            if cache is None
            else {
                "hits": cache.hits,
                "misses": cache.misses,
                "hit_rate": round(cache.hit_rate, 6),
                "size": cache.size,
                "evictions": cache.evictions,
            },
        }
    if op == "ping":
        return "pong"
    raise ServiceError(f"unknown shard op {op!r}")


def _shard_worker_main(
    conn,
    factory: Callable[[], SessionManager],
    shard_index: int,
    max_frame_bytes: int = MAX_RPC_FRAME_BYTES,
) -> None:
    """A shard worker process: build one manager, answer RPCs until EOF.

    The worker ignores SIGINT -- an interactive Ctrl+C hits the whole
    process group, and the parent's graceful drain must still be able to
    checkpoint every shard's sessions afterwards.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass
    # Imported lazily so repro.engine never depends on repro.service at
    # module-import time (the service imports the engine, not vice versa).
    from ..obs.trace import Tracer
    from ..service.metrics import ServiceMetrics

    # Worker-side span ring: only populated when a call frame carries a
    # propagated trace id, so with tracing disabled server-side this
    # never records anything.
    tracer = Tracer(capacity=256)
    channel = PipeChannel(conn, max_frame_bytes)
    try:
        manager = factory()
    except BaseException as error:  # noqa: BLE001 - report, then die
        try:
            channel.send(encode_error(error))
        finally:
            channel.close()
        return
    metrics = ServiceMetrics()
    channel.send(
        encode_ok(
            {
                "pid": os.getpid(),
                "shard": shard_index,
                "horizon": manager.config.horizon,
                "n_states": manager.n_states,
            }
        )
    )
    while True:
        try:
            message = decode_message(channel.recv())
        except (EOFError, OSError, FrameTooLargeError):
            break
        except Exception as error:  # noqa: BLE001 - malformed frame
            try:
                channel.send(encode_error(error))
                continue
            except (BrokenPipeError, OSError):
                break
        request_id = message["id"]
        if message["kind"] != "call":
            try:
                channel.send(
                    encode_error(
                        ServiceError(
                            f"shard worker expected a call frame, got "
                            f"{message['kind']!r}"
                        ),
                        request_id,
                    )
                )
                continue
            except (BrokenPipeError, OSError):
                break
        op, args = message["op"], message["args"]
        if op == "shutdown":
            try:
                channel.send(encode_ok(None, request_id))
            except (BrokenPipeError, OSError):
                pass
            break
        trace_id = message.get("trace")
        try:
            started = time.perf_counter() if trace_id else 0.0
            result = _worker_execute(manager, metrics, op, args, tracer)
            if trace_id:
                tracer.record(
                    "solver",
                    trace_id,
                    time.perf_counter() - started,
                    op=op,
                    shard=shard_index,
                )
            reply = encode_ok(result, request_id)
        except Exception as error:  # noqa: BLE001 - errors travel the channel
            reply = encode_error(error, request_id)
        try:
            channel.send(reply)
        except (BrokenPipeError, OSError):
            break
        except Exception:  # noqa: BLE001 - unencodable/oversized result
            channel.send(
                encode_error(
                    ServiceError(
                        f"shard op {op!r} produced an unencodable reply"
                    ),
                    request_id,
                )
            )
    channel.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class ShardHandle:
    """Parent-side endpoint of one shard worker's RPC channel."""

    def __init__(
        self, index: int, process, conn, max_frame_bytes: int = MAX_RPC_FRAME_BYTES
    ):
        self.index = index
        self.pid: int | None = None
        self._process = process
        self._channel = PipeChannel(conn, max_frame_bytes)
        self._lock = threading.Lock()
        self.alive = True
        # Per-handle health signals read (lock-free) by scrapes and the
        # readiness probe: writes happen under self._lock, which already
        # serializes the whole RPC round trip.
        self.rpc_latency = LatencyHistogram()
        self.inflight = 0
        self.last_heartbeat = time.monotonic()

    def health(self, raw: bool = False) -> dict:
        """Local-state health row (no RPC).

        ``raw`` returns the latency histogram as mergeable
        :meth:`~repro.obs.registry.LatencyHistogram.state` (for the
        exposition path); the default is the summary snapshot the
        ``stats`` op and ``repro top`` render.  ``alive`` also consults
        ``process.is_alive()`` -- a killed child is visible to probes
        immediately, not only after the next RPC or heartbeat notices.
        """
        return {
            "alive": self.alive and self._process.is_alive(),
            "inflight": self.inflight,
            "heartbeat_age_s": round(time.monotonic() - self.last_heartbeat, 3),
            "rpc_latency": (
                self.rpc_latency.state() if raw else self.rpc_latency.snapshot()
            ),
        }

    def _down(self, op: str, cause: BaseException) -> ShardDownError:
        """Mark the handle dead; the typed error to raise for ``op``."""
        self.alive = False
        if isinstance(cause, TimeoutError):
            detail = f"did not answer {op!r} within its deadline (hung worker)"
        else:
            detail = f"died during {op!r}: {type(cause).__name__}"
        return ShardDownError(f"shard {self.index} (pid {self.pid}) {detail}")

    def call(self, op: str, args=None, timeout_s: float | None = None):
        """One request/response round trip (thread-safe, serialized).

        A broken channel, a worker death, or a reply missing its
        ``timeout_s`` deadline marks the handle dead and raises
        :class:`ShardDownError`; the error persists for every later
        call, so a lost shard is loud, not silent.  An oversized
        *outgoing* frame raises :class:`FrameTooLargeError` without
        touching the channel (the shard stays healthy); an oversized
        announced reply closes the channel, which cannot re-sync.
        """
        ctx = current_trace()
        trace_id = ctx[1] if ctx is not None and ctx[0].enabled else None
        started = time.perf_counter()
        with self._lock:
            if not self.alive:
                raise ShardDownError(
                    f"shard {self.index} (pid {self.pid}) is down"
                )
            self.inflight += 1
            try:
                try:
                    self._channel.send(encode_call(op, args, trace=trace_id))
                except FrameTooLargeError:
                    raise  # nothing hit the wire; the channel stays usable
                except (BrokenPipeError, ConnectionResetError, OSError) as error:
                    raise self._down(op, error) from error
                try:
                    payload = self._channel.recv(timeout_s)
                except FrameTooLargeError:
                    self.alive = False  # stream unrecoverable past the frame
                    raise
                except (
                    TimeoutError,
                    EOFError,
                    BrokenPipeError,
                    ConnectionResetError,
                    OSError,
                ) as error:
                    raise self._down(op, error) from error
            finally:
                self.inflight -= 1
            elapsed = time.perf_counter() - started
            self.rpc_latency.record(elapsed)
            self.last_heartbeat = time.monotonic()
        if trace_id is not None:
            ctx[0].record("rpc", trace_id, elapsed, op=op, shard=self.index)
        message = decode_message(payload)
        if message["kind"] == "ok":
            return message["result"]
        raise message["error"]

    def ping(self, timeout_s: float = HEARTBEAT_TIMEOUT_S) -> bool:
        """One idle heartbeat; marks the handle dead on silence.

        Skips (and reports healthy) when another thread holds the
        channel -- a shard busy serving a real RPC is demonstrably not
        idle-hung, and that RPC's own deadline covers it.
        """
        if not self._lock.acquire(blocking=False):
            return True
        try:
            if not self.alive:
                return False
            try:
                self._channel.send(encode_call("ping", None))
                payload = self._channel.recv(timeout_s)
            except Exception as error:  # noqa: BLE001 - any silence is death
                self._down("ping", error)
                return False
            self.last_heartbeat = time.monotonic()
            return decode_message(payload).get("result") == "pong"
        finally:
            self._lock.release()

    def handshake(self, timeout_s: float) -> dict:
        """Await the worker's ready frame; raises on failure/timeout."""
        try:
            payload = self._channel.recv(timeout_s)
        except TimeoutError:
            self.alive = False
            raise ServiceError(
                f"shard {self.index} did not come up within {timeout_s:.0f}s"
            ) from None
        except (EOFError, OSError) as error:
            self.alive = False
            raise ShardDownError(
                f"shard {self.index} exited before its handshake"
            ) from error
        message = decode_message(payload)
        if message["kind"] != "ok":
            self.alive = False
            raise message["error"]
        info = message["result"]
        self.pid = info["pid"]
        return info

    def shutdown(self, timeout_s: float = SHUTDOWN_TIMEOUT_S) -> None:
        """Ask the worker to exit; escalate to SIGTERM if it lingers."""
        with self._lock:
            if self.alive:
                self.alive = False
                try:
                    self._channel.send(encode_call("shutdown", None))
                    self._channel.recv(timeout_s)
                except Exception:  # noqa: BLE001 - already going away
                    pass
        self._process.join(timeout_s)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout_s)
        self._channel.close()


class ShardPool(ExecutionBackend):
    """N shard workers behind the :class:`ExecutionBackend` surface.

    Parameters
    ----------
    factory:
        Zero-argument callable building one :class:`SessionManager`;
        called once *inside each worker process*, so every shard owns
        its own models, mechanism ladder and verdict cache.  Under the
        ``spawn`` start method it must be picklable.
    n_shards:
        Worker process count (>= 1).
    context:
        Optional ``multiprocessing`` context override (tests use this
        to force a start method).
    rpc_timeout_s:
        Per-RPC deadline; a shard that holds a reply past it is
        declared hung (:class:`ShardDownError`).  ``None`` waits
        forever, the historical behaviour.
    heartbeat_interval_s:
        Seconds between idle heartbeat pings per shard (``0`` disables
        the heartbeat thread).  Pings skip shards busy with a real RPC.
    max_frame_bytes:
        RPC frame size bound, both directions (see
        :mod:`repro.cluster.frames`).
    """

    remote = True

    def __init__(
        self,
        factory: Callable[[], SessionManager],
        n_shards: int,
        context=None,
        spawn_timeout_s: float = SPAWN_TIMEOUT_S,
        rpc_timeout_s: float | None = None,
        heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S,
        max_frame_bytes: int = MAX_RPC_FRAME_BYTES,
    ):
        if n_shards < 1:
            raise ServiceError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = int(n_shards)
        self._rpc_timeout_s = rpc_timeout_s
        ctx = context if context is not None else default_context()
        self._handles: list[ShardHandle] = []
        self._sessions: dict[str, int] = {}  # sid -> shard index
        self._lock = threading.Lock()
        self._closed = False
        self._stop_heartbeat = threading.Event()
        self._heartbeat_thread: threading.Thread | None = None
        try:
            for index in range(self.n_shards):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                process = ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, factory, index, max_frame_bytes),
                    name=f"repro-shard-{index}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._handles.append(
                    ShardHandle(index, process, parent_conn, max_frame_bytes)
                )
            infos = [
                handle.handshake(spawn_timeout_s) for handle in self._handles
            ]
        except BaseException:
            self.close()
            raise
        self._horizon = infos[0]["horizon"]
        self._n_states = infos[0]["n_states"]
        # One I/O thread per shard: batched dispatch sends one message
        # to every shard concurrently and reassembles.  These threads
        # only block on pipe reads -- engine CPU lives in the workers.
        self._dispatch = ThreadPoolExecutor(
            max_workers=self.n_shards, thread_name_prefix="repro-shard-rpc"
        )
        if heartbeat_interval_s and heartbeat_interval_s > 0:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop,
                args=(float(heartbeat_interval_s),),
                name="repro-shard-heartbeat",
                daemon=True,
            )
            self._heartbeat_thread.start()

    def _heartbeat_loop(self, interval_s: float) -> None:
        """Ping idle shards so a hung worker is found between RPCs."""
        while not self._stop_heartbeat.wait(interval_s):
            for handle in self._handles:
                if handle.alive:
                    handle.ping()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of(self, session_id: str) -> int:
        """The shard index owning ``session_id`` (pure, stable)."""
        return shard_for(session_id, self.n_shards)

    def _handle_for(self, session_id: str) -> ShardHandle:
        return self._handles[self.shard_of(session_id)]

    # ------------------------------------------------------------------
    # ExecutionBackend surface
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> int:
        return self._horizon

    @property
    def n_states(self) -> int:
        return self._n_states

    def open(
        self, session_id: str, seed: int | None = None, scenario=None
    ) -> int:
        """Open a session on its owning shard.

        ``scenario`` (a :class:`~repro.scenario.ScenarioSpec` or its
        JSON dict) travels in the RPC frame; the worker's manager
        interns it by digest, so every shard builds each distinct
        scenario's models at most once regardless of how sessions are
        routed.  Returns the session's horizon.
        """
        horizon = self._handle_for(session_id).call(
            "open", (session_id, seed, scenario), self._rpc_timeout_s
        )
        with self._lock:
            self._sessions[session_id] = self.shard_of(session_id)
        return horizon

    def contains(self, session_id: str) -> bool:
        with self._lock:
            return session_id in self._sessions

    def resident_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def session_ids(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def step(self, session_id: str, cell: int) -> ReleaseRecord:
        return self._handle_for(session_id).call(
            "step", (session_id, cell), self._rpc_timeout_s
        )

    def step_batch(
        self, cells: Mapping[str, int]
    ) -> tuple[dict[str, ReleaseRecord], dict[str, BaseException]]:
        """One wave of steps: at most one RPC per shard, in parallel."""
        by_shard: dict[int, dict[str, int]] = {}
        for sid, cell in cells.items():
            by_shard.setdefault(self.shard_of(sid), {})[sid] = cell
        records: dict[str, ReleaseRecord] = {}
        errors: dict[str, BaseException] = {}
        futures = {
            shard: self._dispatch.submit(
                self._handles[shard].call,
                "step_batch",
                shard_cells,
                self._rpc_timeout_s,
            )
            for shard, shard_cells in by_shard.items()
        }
        for shard, future in futures.items():
            try:
                shard_records, shard_errors = future.result()
            except Exception as error:  # noqa: BLE001 - ShardDown or transport
                for sid in by_shard[shard]:
                    errors[sid] = error
                continue
            records.update(shard_records)
            errors.update(shard_errors)
        return records, errors

    def peek_budget(self, session_id: str) -> float:
        return self._handle_for(session_id).call(
            "peek_budget", session_id, self._rpc_timeout_s
        )

    def finish(self, session_id: str) -> ReleaseLog:
        log = self._handle_for(session_id).call(
            "finish", session_id, self._rpc_timeout_s
        )
        with self._lock:
            self._sessions.pop(session_id, None)
        return log

    def checkpoint(self, session_id: str) -> SessionState:
        return self._handle_for(session_id).call(
            "checkpoint", session_id, self._rpc_timeout_s
        )

    def suspend(self, session_id: str) -> SessionState:
        state = self._handle_for(session_id).call(
            "suspend", session_id, self._rpc_timeout_s
        )
        with self._lock:
            self._sessions.pop(session_id, None)
        return state

    def suspend_all(self) -> tuple[list[SessionState], list[str]]:
        """Drain every shard (one RPC each); dead shards report losses."""
        states: list[SessionState] = []
        lost: list[str] = []
        futures = [
            (
                handle,
                self._dispatch.submit(
                    handle.call, "suspend_all", None, self._rpc_timeout_s
                ),
            )
            for handle in self._handles
        ]
        for handle, future in futures:
            try:
                states.extend(future.result())
            except ShardDownError:
                with self._lock:
                    lost.extend(
                        sid
                        for sid, shard in self._sessions.items()
                        if shard == handle.index
                    )
        suspended = {state.session_id for state in states}
        with self._lock:
            for sid in list(self._sessions):
                if sid in suspended or sid in lost:
                    self._sessions.pop(sid, None)
        return states, lost

    def resume(self, state: SessionState) -> str:
        sid = self._handle_for(state.session_id).call(
            "resume", state, self._rpc_timeout_s
        )
        with self._lock:
            self._sessions[sid] = self.shard_of(sid)
        return sid

    def cache_stats(self) -> CacheStats | None:
        """Verdict-cache counters summed across live shards."""
        totals = None
        for handle in self._handles:
            if not handle.alive:
                continue
            try:
                stats = handle.call("cache_stats", None, self._rpc_timeout_s)
            except ShardDownError:
                continue
            if stats is None:
                continue
            if totals is None:
                totals = stats
            else:
                totals = CacheStats(
                    hits=totals.hits + stats.hits,
                    misses=totals.misses + stats.misses,
                    evictions=totals.evictions + stats.evictions,
                    size=totals.size + stats.size,
                    maxsize=totals.maxsize + stats.maxsize,
                )
        return totals

    def shard_stats(self) -> list[dict]:
        """One observability row per shard (the ``stats`` op payload)."""
        rows = []
        for handle in self._handles:
            if handle.alive:
                try:
                    rows.append(
                        {
                            "shard": handle.index,
                            "alive": True,
                            "health": handle.health(),
                            **handle.call("stats", None, self._rpc_timeout_s),
                        }
                    )
                    continue
                except ShardDownError:
                    pass  # died just now; fall through to the dead row
            with self._lock:
                routed = sum(
                    1 for shard in self._sessions.values() if shard == handle.index
                )
            rows.append(
                {
                    "shard": handle.index,
                    "pid": handle.pid,
                    "alive": False,
                    "sessions": routed,
                    "lost_sessions": routed,
                }
            )
        return rows

    def worker_health(self) -> list[dict]:
        """One local-state health row per shard (no RPCs; probe-safe)."""
        return [
            {"worker": f"shard-{handle.index}", **handle.health(raw=True)}
            for handle in self._handles
        ]

    def lost_session_ids(self) -> list[str]:
        """Sessions currently routed to dead shards (unreachable)."""
        dead = {h.index for h in self._handles if not h.alive}
        with self._lock:
            return [sid for sid, shard in self._sessions.items() if shard in dead]

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop_heartbeat.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(1.0)
        for handle in self._handles:
            handle.shutdown()
        dispatch = getattr(self, "_dispatch", None)
        if dispatch is not None:
            dispatch.shutdown(wait=False)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # best-effort: tests/benchmarks use close() or `with`
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter shutdown
            pass
