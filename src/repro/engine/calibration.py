"""Pluggable calibration strategies for the Algorithm 1 release loop.

Algorithm 1 leaves the "calibrate the LPPM" step abstract; Algorithm 2
instantiates it as per-timestamp budget halving.  The engine factors that
choice out behind :class:`CalibrationStrategy` so the halving schedule,
a linear decay, or a binary search over the budget can be swapped in
without touching the release loop.

Protocol, per timestamp: the engine calls :meth:`CalibrationStrategy.begin`
with the base budget of the provider's mechanism, obtaining a stateful
:class:`CalibrationSchedule`.  After every *failed* privacy check it asks
:meth:`~CalibrationSchedule.after_failure` for the next budget to try;
after a *passed* check it asks :meth:`~CalibrationSchedule.after_success`,
which either accepts the candidate (``None``) or proposes another budget
to probe (the engine then re-samples and re-checks).  A proposed budget
``<= 0`` makes the engine fall back to the uniform mechanism, the
guaranteed-safe alpha -> 0 limit.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..errors import CalibrationError


@runtime_checkable
class CalibrationSchedule(Protocol):
    """Per-timestamp budget schedule (stateful within one timestamp)."""

    def after_failure(self, budget: float) -> float:
        """Next budget to try after the check failed at ``budget``."""
        ...

    def after_success(self, budget: float) -> float | None:
        """``None`` to release the safe candidate, or a budget to probe."""
        ...


@runtime_checkable
class CalibrationStrategy(Protocol):
    """Factory of per-timestamp schedules; stateless across timestamps."""

    def begin(self, base_budget: float) -> CalibrationSchedule:
        """Start a fresh schedule from the timestamp's base budget."""
        ...


# ----------------------------------------------------------------------
# Algorithm 2: geometric decay (the paper's halving)
# ----------------------------------------------------------------------
class _GeometricSchedule:
    def __init__(self, decay: float):
        self._decay = decay

    def after_failure(self, budget: float) -> float:
        return budget * self._decay

    def after_success(self, budget: float) -> float | None:
        return None


class BudgetHalving:
    """Algorithm 2's schedule: multiply the budget by ``decay`` per retry.

    ``decay = 0.5`` is the paper's halving; the paper notes the factor is
    "a tunable parameter that provides a trade-off between efficiency and
    utility".  This is the engine default and reproduces the legacy
    ``PriSTE.run`` bit-for-bit.
    """

    def __init__(self, decay: float = 0.5):
        if not 0.0 < decay < 1.0:
            raise CalibrationError(f"decay must be in (0, 1), got {decay!r}")
        self.decay = float(decay)

    def begin(self, base_budget: float) -> _GeometricSchedule:
        return _GeometricSchedule(self.decay)

    def __repr__(self) -> str:
        return f"BudgetHalving(decay={self.decay!r})"


# ----------------------------------------------------------------------
# linear decay
# ----------------------------------------------------------------------
class _LinearSchedule:
    def __init__(self, step: float):
        self._step = step

    def after_failure(self, budget: float) -> float:
        return budget - self._step

    def after_success(self, budget: float) -> float | None:
        return None


class LinearDecay:
    """Subtract ``step_fraction * base`` per retry instead of halving.

    Decays slower than halving near the base budget (higher utility when
    the conditions almost hold) but reaches the uniform fallback after at
    most ``ceil(1 / step_fraction)`` failed checks, bounding worst-case
    solver work per timestamp.
    """

    def __init__(self, step_fraction: float = 0.1):
        if not 0.0 < step_fraction <= 1.0:
            raise CalibrationError(
                f"step_fraction must be in (0, 1], got {step_fraction!r}"
            )
        self.step_fraction = float(step_fraction)

    def begin(self, base_budget: float) -> _LinearSchedule:
        return _LinearSchedule(self.step_fraction * base_budget)

    def __repr__(self) -> str:
        return f"LinearDecay(step_fraction={self.step_fraction!r})"


# ----------------------------------------------------------------------
# binary search for the largest safe budget
# ----------------------------------------------------------------------
class _BinarySearchSchedule:
    def __init__(self, base: float, max_probes: int, rel_tol: float):
        self._lo = 0.0  # largest budget verified safe so far
        self._hi = base  # smallest budget seen to fail
        self._base = base
        self._probes_left = max_probes
        self._rel_tol = rel_tol
        self._saw_failure = False
        self._final = False  # probe budget spent: converge, don't bisect

    def _exhausted(self) -> bool:
        return (
            self._probes_left <= 0
            or self._hi - self._lo <= self._rel_tol * self._base
        )

    def after_failure(self, budget: float) -> float:
        self._saw_failure = True
        self._hi = min(self._hi, budget)
        if self._final:
            # Even the bracket floor failed for its fresh candidate:
            # give up on this timestamp (0 = uniform fallback).
            return 0.0
        self._probes_left -= 1
        if self._exhausted():
            # One last try at the largest budget already verified safe
            # (for an earlier candidate); 0 when nothing ever passed.
            self._final = True
            return self._lo
        return (self._lo + self._hi) / 2.0

    def after_success(self, budget: float) -> float | None:
        if not self._saw_failure or self._final:
            # Base passed untouched, or the convergence retry passed:
            # release immediately.
            return None
        self._lo = max(self._lo, budget)
        self._probes_left -= 1
        if self._exhausted():
            return None
        return (self._lo + self._hi) / 2.0


class BinarySearchCalibration:
    """Bisect for (approximately) the largest safe budget per timestamp.

    After the first failure the schedule keeps a bracket
    ``[largest safe, smallest failed]`` and probes its midpoint, spending
    at most ``max_probes`` bisection checks (plus at most two
    convergence checks: a final retry at the bracket floor, then the
    uniform fallback if even that fails).  Compared to halving it trades
    extra solver calls for a tighter final budget (better utility at the
    same epsilon).  Note the privacy check is per *sampled candidate*,
    so a budget accepted here was verified safe for the candidate
    actually released -- the guarantee is identical to halving's.
    """

    def __init__(self, max_probes: int = 8, rel_tol: float = 0.05):
        if max_probes < 1:
            raise CalibrationError(f"max_probes must be >= 1, got {max_probes!r}")
        if rel_tol <= 0.0:
            raise CalibrationError(f"rel_tol must be positive, got {rel_tol!r}")
        self.max_probes = int(max_probes)
        self.rel_tol = float(rel_tol)

    def begin(self, base_budget: float) -> _BinarySearchSchedule:
        return _BinarySearchSchedule(base_budget, self.max_probes, self.rel_tol)

    def __repr__(self) -> str:
        return (
            f"BinarySearchCalibration(max_probes={self.max_probes!r}, "
            f"rel_tol={self.rel_tol!r})"
        )


_NAMED = {
    "halving": BudgetHalving,
    "budget-halving": BudgetHalving,
    "linear": LinearDecay,
    "linear-decay": LinearDecay,
    "binary-search": BinarySearchCalibration,
}


def resolve_strategy(strategy) -> CalibrationStrategy:
    """Accept a strategy instance or one of the registered names.

    Names: ``"halving"``/``"budget-halving"``, ``"linear"``/
    ``"linear-decay"``, ``"binary-search"``.
    """
    if isinstance(strategy, str):
        try:
            return _NAMED[strategy]()
        except KeyError:
            raise CalibrationError(
                f"unknown calibration strategy {strategy!r}; "
                f"known names: {sorted(_NAMED)}"
            ) from None
    if isinstance(strategy, CalibrationStrategy):
        return strategy
    raise CalibrationError(
        f"expected a CalibrationStrategy or a name, got {type(strategy).__name__}"
    )
