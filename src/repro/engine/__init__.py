"""Streaming release engine: Algorithm 1 as an online, multi-session API.

The paper's framework calibrates, checks and releases *one timestamp at
a time*; this package exposes exactly that shape:

* :class:`SessionBuilder` / :class:`EngineConfig` -- fluent, immutable
  configuration of a release setting;
* :class:`ReleaseSession` -- ``step(true_cell) -> ReleaseRecord`` with
  ``peek_budget()``, ``finish() -> ReleaseLog`` and checkpoint/restore
  (:meth:`~ReleaseSession.to_state` / :meth:`~ReleaseSession.from_state`);
* :class:`CalibrationStrategy` plug-ins -- :class:`BudgetHalving` (the
  paper's Algorithm 2 schedule, the default), :class:`LinearDecay` and
  :class:`BinarySearchCalibration`;
* :class:`SessionManager` -- many concurrent sessions over shared
  two-world models, a shared mechanism ladder and a :class:`VerdictCache`
  of solver verdicts;
* :class:`ExecutionBackend` -- where a fleet's work runs:
  :class:`InProcessBackend` (one manager, this process) or
  :class:`ShardPool` (N worker processes with deterministic
  session->shard routing, the multi-core serving path);
* the mechanism-provider protocol (moved here from
  :mod:`repro.core.priste`, which still re-exports it).

The legacy batch API (:class:`repro.PriSTE`, ``run(trajectory)``) is a
thin wrapper over a session and reproduces its old outputs bit-for-bit.
"""

from .backend import ExecutionBackend, InProcessBackend, as_backend
from .cache import CacheStats, VerdictCache, digest_array
from .calibration import (
    BinarySearchCalibration,
    BudgetHalving,
    CalibrationSchedule,
    CalibrationStrategy,
    LinearDecay,
    resolve_strategy,
)
from .config import EngineConfig, SessionBuilder, config_with
from .manager import SessionManager
from .providers import (
    DeltaLocationSetProvider,
    MechanismProvider,
    StaticMechanismProvider,
)
from .records import ReleaseLog, ReleaseRecord, stack_release_logs
from .session import (
    STATE_SCHEMA_VERSION,
    EngineCore,
    ReleaseSession,
    SessionState,
    step_sessions_lockstep,
)
from .shard import ShardPool, shard_for

__all__ = [
    "BinarySearchCalibration",
    "BudgetHalving",
    "CacheStats",
    "CalibrationSchedule",
    "CalibrationStrategy",
    "DeltaLocationSetProvider",
    "EngineConfig",
    "EngineCore",
    "ExecutionBackend",
    "InProcessBackend",
    "LinearDecay",
    "MechanismProvider",
    "ReleaseLog",
    "ReleaseRecord",
    "ReleaseSession",
    "SessionBuilder",
    "SessionManager",
    "SessionState",
    "STATE_SCHEMA_VERSION",
    "ShardPool",
    "StaticMechanismProvider",
    "VerdictCache",
    "as_backend",
    "config_with",
    "digest_array",
    "resolve_strategy",
    "shard_for",
    "stack_release_logs",
    "step_sessions_lockstep",
]
