"""The streaming release session: Algorithm 1 one timestamp at a time.

The paper's framework is inherently online -- at every timestamp it
calibrates the LPPM, checks epsilon-spatiotemporal-event privacy and
releases one location -- but the original reproduction only exposed the
batch ``PriSTE.run(trajectory)``.  :class:`ReleaseSession` is the
incremental form::

    session = builder.build(rng=0)
    record = session.step(true_cell)      # one release
    session.peek_budget()                 # budget the next step starts from
    state = session.to_state()            # suspend ...
    session = ReleaseSession.from_state(config, state)   # ... resume
    log = session.finish()                # the familiar ReleaseLog

Driven to the end of a trajectory with the default halving calibration,
a session reproduces the legacy batch run bit-for-bit (same RNG
consumption, same verdicts, same records); ``PriSTE.run`` is now a thin
wrapper doing exactly that.
"""

from __future__ import annotations

import time
import uuid

import numpy as np

from .._validation import resolve_rng
from ..core.joint import EventQuantifier, prepare_many
from ..core.qp import SolverStatus, solve_conditions_batch
from ..core.theorem import privacy_conditions, sufficient_safe
from ..core.two_world import TwoWorldModel
from ..errors import CheckpointVersionError, QuantificationError, SessionError
from ..lppm.uniform import UniformMechanism
from .cache import VerdictCache, digest_array
from .config import EngineConfig
from .providers import MechanismProvider
from .records import ReleaseLog, ReleaseRecord

#: Version of the :class:`SessionState` JSON schema this build writes.
#: v1 (PR 1) had no ``schema`` or ``scenario`` field; v2 added both.
#: Restoring a state from a *newer* schema raises a typed
#: :class:`~repro.errors.CheckpointVersionError` immediately, instead of
#: a ``KeyError`` deep in the engine.
STATE_SCHEMA_VERSION = 2


def _combine_statuses(statuses) -> SolverStatus:
    """Worst-of combination: VIOLATED dominates UNKNOWN dominates SAFE."""
    worst = SolverStatus.SAFE
    for status in statuses:
        if status is SolverStatus.VIOLATED:
            return SolverStatus.VIOLATED
        if status is SolverStatus.UNKNOWN:
            worst = SolverStatus.UNKNOWN
    return worst


def _solve_condition_pairs(pairs, options) -> list[SolverStatus]:
    """Statuses for Eq. (15)/(16) condition pairs, batched in two waves.

    Mirrors ``check_conditions``'s forward-first short-circuit at batch
    scale: wave one solves every pair's forward condition in a single
    stacked call; wave two solves backward conditions only for pairs
    whose forward was not already VIOLATED.  Total solver work is
    therefore identical to looping the sequential front end over the
    pairs, and each status matches it exactly.
    """
    forward_results = solve_conditions_batch(
        [pair[0] for pair in pairs], options
    )
    statuses: list[SolverStatus | None] = [None] * len(pairs)
    pending: list[int] = []
    for index, result in enumerate(forward_results):
        if result.status is SolverStatus.VIOLATED:
            statuses[index] = SolverStatus.VIOLATED
        else:
            pending.append(index)
    if pending:
        backward_results = solve_conditions_batch(
            [pairs[index][1] for index in pending], options
        )
        for index, result in zip(pending, backward_results):
            statuses[index] = _combine_statuses(
                (forward_results[index].status, result.status)
            )
    return statuses


class EngineCore:
    """Shared, immutable machinery behind one or more sessions.

    Building the two-world models is the expensive part of session
    start-up (O(m^2) per event); a core builds them once and every
    session created from it -- all of a :class:`SessionManager`'s fleet,
    or every ``run()`` of a legacy wrapper -- reuses them.  The optional
    verdict cache lives here too, so sessions sharing a core share hits.
    """

    def __init__(self, config: EngineConfig, cache: VerdictCache | None = None):
        self.config = config
        self.models = [
            TwoWorldModel(config.chain, event, config.horizon)
            for event in config.events
        ]
        self.n_states = self.models[0].n_states
        self.a_vectors = [model.prior_vector() for model in self.models]
        self.cache = cache
        self.config_fingerprint = config.fingerprint()
        # Verdict-cache key prefixes, one per event: everything ahead of
        # the per-step front digest is constant for the core's lifetime,
        # so sessions concatenate instead of re-joining four parts per
        # event per calibration attempt.
        self.event_key_prefixes = [
            self.config_fingerprint + b"|" + index.to_bytes(2, "little") + b"|"
            for index in range(len(self.models))
        ]

    def new_provider(self) -> MechanismProvider:
        """A provider for one new session (fresh when stateful)."""
        return self.config.provider_factory()

    def new_quantifiers(self) -> list[EventQuantifier]:
        """Fresh incremental quantifiers over the shared models."""
        return [EventQuantifier(model) for model in self.models]


class SessionState:
    """A suspended session: everything needed to resume it elsewhere.

    Produced by :meth:`ReleaseSession.to_state`; JSON-serializable via
    :meth:`to_json`/:meth:`from_json`, so sessions can be parked in a
    database between a user's location fixes.

    ``scenario`` carries the session's scenario binding when the state
    was checkpointed through a :class:`~repro.engine.SessionManager`
    with a non-default scenario: a ``{"digest": ..., "spec": ...}`` dict
    holding the spec's stable digest and its full JSON form, so *any*
    process (a different shard worker, a restarted server with a
    different shard count) can re-materialize the right models on
    restore.  ``None`` means the restoring manager's default
    configuration, which is the pre-scenario behaviour.
    """

    def __init__(
        self,
        committed_t: int,
        records: list[ReleaseRecord],
        quantifiers: list[dict],
        provider: dict,
        rng: dict,
        emissions: list[np.ndarray] | None,
        session_id: str,
        scenario: dict | None = None,
    ):
        self.committed_t = committed_t
        self.records = records
        self.quantifiers = quantifiers
        self.provider = provider
        self.rng = rng
        self.emissions = emissions
        self.session_id = session_id
        self.scenario = scenario

    def to_json(self) -> dict:
        """Plain-dict form, safe for ``json.dumps``."""
        return {
            "schema": STATE_SCHEMA_VERSION,
            "committed_t": self.committed_t,
            "records": [record.to_json() for record in self.records],
            "quantifiers": self.quantifiers,
            "provider": self.provider,
            "rng": self.rng,
            "emissions": (
                None
                if self.emissions is None
                else [matrix.tolist() for matrix in self.emissions]
            ),
            "session_id": self.session_id,
            "scenario": self.scenario,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SessionState":
        """Inverse of :meth:`to_json`.

        Accepts any schema version up to :data:`STATE_SCHEMA_VERSION`
        (v1 states simply lack the newer fields); a state written by a
        *newer* build raises :class:`CheckpointVersionError` before any
        field is touched.
        """
        version = int(data.get("schema", 1))
        if version > STATE_SCHEMA_VERSION:
            raise CheckpointVersionError(
                f"session state uses checkpoint schema v{version}; this "
                f"build reads up to v{STATE_SCHEMA_VERSION} -- upgrade the "
                "library to restore it"
            )
        scenario = data.get("scenario")
        return cls(
            committed_t=int(data["committed_t"]),
            records=[ReleaseRecord.from_json(r) for r in data["records"]],
            quantifiers=list(data["quantifiers"]),
            provider=dict(data["provider"]),
            rng=dict(data["rng"]),
            emissions=(
                None
                if data["emissions"] is None
                else [np.asarray(m, dtype=np.float64) for m in data["emissions"]]
            ),
            session_id=str(data["session_id"]),
            scenario=None if scenario is None else dict(scenario),
        )


def _rng_state(generator: np.random.Generator) -> dict:
    return generator.bit_generator.state


def _rng_from_state(state: dict) -> np.random.Generator:
    name = state["bit_generator"]
    try:
        bit_generator = getattr(np.random, name)()
    except AttributeError:
        raise SessionError(f"unknown bit generator {name!r} in session state")
    bit_generator.state = state
    return np.random.Generator(bit_generator)


class _StepDriver:
    """One session's Algorithm 1 state machine for a single timestamp.

    Factors the calibrate-sample-check-release loop out of
    :meth:`ReleaseSession.step` so the solo path and the lockstep batch
    path (:func:`step_sessions_lockstep`) run the *same* transitions in
    the same order -- same RNG consumption, same schedule calls, same
    fallbacks -- which is what makes batched stepping bit-identical to
    per-session stepping.
    """

    __slots__ = (
        "session",
        "t",
        "cell",
        "t_start",
        "rng_checkpoint",
        "mechanism",
        "schedule",
        "candidate",
        "column",
        "released_cell",
        "released_column",
        "conservative",
        "forced_uniform",
        "attempts",
    )

    def __init__(self, session: "ReleaseSession", true_cell: int):
        session._ensure_open()
        t = session.t
        if t > session._config.horizon:
            raise SessionError(
                f"step({true_cell}) at t={t} exceeds horizon "
                f"T={session._config.horizon}; call finish()"
            )
        cell = int(true_cell)
        if not 0 <= cell < session._core.n_states:
            raise QuantificationError(
                f"cell {cell} out of range [0, {session._core.n_states})"
            )
        self.session = session
        self.t = t
        self.cell = cell
        self.t_start = time.perf_counter()
        self.rng_checkpoint = session._generator.bit_generator.state
        self.mechanism = None
        self.schedule = None
        self.candidate: int | None = None
        self.column: np.ndarray | None = None
        self.released_cell: int | None = None
        self.released_column: np.ndarray | None = None
        self.conservative = False
        self.forced_uniform = False
        self.attempts = 0

    def begin(self) -> None:
        """Fetch the base mechanism and open the budget schedule."""
        session = self.session
        self.mechanism = session._provider.base_mechanism(self.t)
        self.schedule = session._config.calibration.begin(float(self.mechanism.budget))

    def next_candidate(self) -> np.ndarray | None:
        """Sample the next candidate; ``None`` = released via fallback.

        Advances the attempt counter; past ``max_calibrations`` the
        session takes the guaranteed-safe uniform release and the step
        is complete without a solver check.
        """
        session = self.session
        self.attempts += 1
        if self.attempts > session._config.max_calibrations:
            self._release_uniform()
            return None
        self.candidate = int(self.mechanism.perturb(self.cell, session._generator))
        self.column = self.mechanism.emission_column(self.candidate)
        return self.column

    def apply_verdict(self, verdict: SolverStatus) -> bool:
        """Fold one check's verdict into the schedule; True = released."""
        session = self.session
        if verdict is SolverStatus.SAFE:
            next_budget = self.schedule.after_success(float(self.mechanism.budget))
            if next_budget is None:
                self.released_cell = self.candidate
                self.released_column = self.column
                return True
        else:
            if verdict is SolverStatus.UNKNOWN:
                self.conservative = True
            next_budget = self.schedule.after_failure(float(self.mechanism.budget))
        if next_budget <= 0.0:
            # The schedule bottomed out: take the guaranteed-safe
            # uniform limit without asking the solver.
            self._release_uniform()
            return True
        self.mechanism = session._provider.scaled(self.mechanism, next_budget)
        return False

    def _release_uniform(self) -> None:
        session = self.session
        mechanism, released_cell, released_column = session._uniform_release(self.cell)
        self.mechanism = mechanism
        self.released_cell = released_cell
        self.released_column = released_column
        self.forced_uniform = True

    def rollback(self) -> None:
        """Undo all visible effects of the in-flight step (solo scope)."""
        session = self.session
        for quantifier in session._quantifiers:
            quantifier.abort_prepare()
        session._generator.bit_generator.state = self.rng_checkpoint

    def commit(self) -> ReleaseRecord:
        """Seal the release: fold fronts, notify the provider, record."""
        session = self.session
        for quantifier in session._quantifiers:
            quantifier.commit(self.t, self.released_column)
        if session._emissions is not None:
            session._emissions.append(self.mechanism.emission_matrix())
        session._provider.after_release(self.t, self.mechanism, self.released_cell)
        record = ReleaseRecord(
            t=self.t,
            true_cell=self.cell,
            released_cell=self.released_cell,
            budget=float(self.mechanism.budget),
            n_attempts=self.attempts,
            conservative=self.conservative,
            forced_uniform=self.forced_uniform,
            elapsed_s=time.perf_counter() - self.t_start,
        )
        session._records.append(record)
        return record


class ReleaseSession:
    """One user's online release stream under Algorithm 1.

    Parameters
    ----------
    config:
        An :class:`EngineConfig` (or a prebuilt :class:`EngineCore` when
        many sessions share models, as :class:`SessionManager` does).
    rng:
        Seed or generator for mechanism sampling; the session owns its
        generator so interleaved sessions stay independently
        reproducible.
    session_id:
        Optional stable identifier (defaults to a fresh UUID hex).
    cache:
        Verdict cache override; defaults to the core's shared cache.
    """

    def __init__(
        self,
        config: EngineConfig | EngineCore,
        rng=None,
        session_id: str | None = None,
        cache: VerdictCache | None = None,
        _provider: MechanismProvider | None = None,
    ):
        core = config if isinstance(config, EngineCore) else EngineCore(config)
        self._core = core
        self._config = core.config
        self._provider = _provider if _provider is not None else core.new_provider()
        self._quantifiers = core.new_quantifiers()
        self._generator = resolve_rng(rng)
        self._cache = cache if cache is not None else core.cache
        self._records: list[ReleaseRecord] = []
        self._emissions: list[np.ndarray] | None = (
            [] if self._config.record_emissions else None
        )
        self._finished = False
        self.session_id = session_id or uuid.uuid4().hex

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The immutable engine configuration."""
        return self._config

    @property
    def t(self) -> int:
        """The next timestamp :meth:`step` would release (1-based)."""
        return len(self._records) + 1

    @property
    def horizon(self) -> int:
        """Release horizon ``T``."""
        return self._config.horizon

    @property
    def records(self) -> list[ReleaseRecord]:
        """Records released so far (copy)."""
        return list(self._records)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has sealed the session."""
        return self._finished

    def peek_budget(self) -> float:
        """Budget the next step's calibration would start from.

        Side-effect free: neither the provider state nor the RNG moves.
        """
        self._ensure_open()
        if self.t > self._config.horizon:
            raise SessionError(
                f"session exhausted its horizon T={self._config.horizon}"
            )
        return self._provider.base_budget(self.t)

    # ------------------------------------------------------------------
    # the framework loop, one timestamp per call
    # ------------------------------------------------------------------
    def step(self, true_cell: int) -> ReleaseRecord:
        """Calibrate, check and release one location (Algorithm 1).

        Raises :class:`SessionError` past the horizon or after
        :meth:`finish`, :class:`QuantificationError` for a cell outside
        the map.
        """
        driver = _StepDriver(self, true_cell)
        t = driver.t
        for quantifier in self._quantifiers:
            quantifier.prepare(t)
        try:
            prefixes = self._step_key_prefixes()
            driver.begin()
            while True:
                column = driver.next_candidate()
                if column is None:
                    break
                verdict = self._check_all(t, column, prefixes)
                if driver.apply_verdict(verdict):
                    break
        except BaseException:
            # Roll back to the committed boundary (fronts and RNG) so a
            # failed attempt (solver error, provider error, interrupt)
            # leaves the session steppable, checkpointable, and
            # deterministic on retry.
            driver.rollback()
            raise
        return driver.commit()

    def _step_key_prefixes(self) -> list[bytes] | None:
        """Per-event verdict-cache key prefixes for the prepared step.

        ``prefix + digest_array(column)`` is the full key: everything
        but the candidate column -- config fingerprint, event index and
        prepared-front digest -- is fixed for the whole timestamp, so it
        is digested and concatenated once per step instead of once per
        event per calibration attempt.
        """
        if self._cache is None:
            return None
        return [
            prefix + quantifier.prepared_digest() + b"|"
            for prefix, quantifier in zip(
                self._core.event_key_prefixes, self._quantifiers
            )
        ]

    def _uniform_release(self, cell: int):
        """Guaranteed-safe fallback: the uniform mechanism.

        It releases no information about the true location, so the
        conditions hold analytically -- no solver call needed.
        """
        mechanism = UniformMechanism(self._core.n_states)
        released_cell = int(mechanism.perturb(cell, self._generator))
        return mechanism, released_cell, mechanism.emission_column(released_cell)

    def finish(self) -> ReleaseLog:
        """Seal the session and return its release log."""
        self._ensure_open()
        self._finished = True
        return ReleaseLog(records=self._records, emission_matrices=self._emissions)

    def _ensure_open(self) -> None:
        if self._finished:
            raise SessionError(f"session {self.session_id!r} is finished")

    # ------------------------------------------------------------------
    # privacy checks (with optional verdict caching)
    # ------------------------------------------------------------------
    def _check_all(self, t, column, prefixes) -> SolverStatus:
        """Worst verdict across all events for one candidate column.

        Under a fixed prior every event is an O(m) ratio check, so the
        per-event loop (with its early return on VIOLATED) is already
        optimal.  Under the worst-case prior the per-event work is a
        quadratic program: all events' Eq. (15)/(16) conditions are
        assembled first and funnelled into *one* batched solver call,
        instead of the former quantifier-by-quantifier loop.  Verdicts
        are pure functions of the conditions, so the combined status is
        identical either way; the only difference from the sequential
        loop is that an early violation no longer spares the remaining
        events' (cheaper) condition assembly.
        """
        if self._config.prior_mode == "fixed":
            return self._check_all_fixed(t, column, prefixes)
        cache = self._cache
        column_digest = digest_array(column) if cache is not None else None
        n_events = len(self._quantifiers)
        statuses: list[SolverStatus | None] = [None] * n_events
        from_cache = [False] * n_events
        pairs: list = []
        pair_events: list[int] = []
        for index in range(n_events):
            if cache is not None:
                status = cache.lookup(prefixes[index] + column_digest)
                if status is not None:
                    statuses[index] = status
                    from_cache[index] = True
                    continue
            status, event_conditions = self._event_conditions(index, t, column)
            if status is not None:
                statuses[index] = status
            else:
                pairs.append(event_conditions)
                pair_events.append(index)
        if pairs:
            for index, status in zip(
                pair_events, _solve_condition_pairs(pairs, self._config.solver)
            ):
                statuses[index] = status
        if cache is not None:
            for index in range(n_events):
                if not from_cache[index]:
                    cache.store(prefixes[index] + column_digest, statuses[index])
        return _combine_statuses(statuses)

    def _check_all_fixed(self, t, column, prefixes) -> SolverStatus:
        """Per-event Definition II.4 ratio checks at the fixed prior.

        ``prefixes=None`` skips the verdict cache -- the lockstep batch
        path passes None since the ratio check is cheaper than the
        digesting a cache key needs.
        """
        worst = SolverStatus.SAFE
        cache = self._cache if prefixes is not None else None
        column_digest = digest_array(column) if cache is not None else None
        for index, (quantifier, a) in enumerate(
            zip(self._quantifiers, self._core.a_vectors)
        ):
            status = None
            if cache is not None:
                status = cache.lookup(prefixes[index] + column_digest)
            if status is None:
                b, c = quantifier.candidate_bc(t, column)
                status = self._fixed_prior_verdict(a, b, c)
                if cache is not None:
                    cache.store(prefixes[index] + column_digest, status)
            if status is SolverStatus.VIOLATED:
                return SolverStatus.VIOLATED
            if status is SolverStatus.UNKNOWN:
                worst = SolverStatus.UNKNOWN
        return worst

    def _event_conditions(self, index, t, column):
        """One event's verdict fast path or its solver conditions.

        Returns ``(status, conditions)``: ``status`` is set when the
        O(m) sufficient certificate already decides the event, else the
        Eq. (15)/(16) :class:`RankOneCondition` pair to solve.  Shared
        by the solo check and the lockstep batch assembly so both build
        bit-identical conditions.
        """
        quantifier = self._quantifiers[index]
        a = self._core.a_vectors[index]
        config = self._config
        b, c = quantifier.candidate_bc(t, column)
        if sufficient_safe(a, b, c, config.epsilon, config.solver.tolerance):
            # O(m) certificate: provably safe for every pi without
            # touching the quadratic program (conservative-release
            # fast path).
            return SolverStatus.SAFE, ()
        return None, privacy_conditions(a, b, c, config.epsilon)

    def _fixed_prior_verdict(self, a, b, c) -> SolverStatus:
        """Definition II.4 ratio check at the configured concrete prior."""
        config = self._config
        pi = config.prior
        prior_true = float(pi @ a)
        joint_true = float(pi @ b)
        joint_false = float(pi @ c) - joint_true
        if not 0.0 < prior_true < 1.0:
            raise QuantificationError(
                f"Pr(EVENT) = {prior_true:.6g} under the configured prior; "
                "the Definition II.4 ratio is undefined"
            )
        if joint_true <= 0.0 and joint_false <= 0.0:
            return SolverStatus.SAFE  # observation impossible either way
        if joint_true <= 0.0 or joint_false <= 0.0:
            return SolverStatus.VIOLATED  # one side certain, infinite ratio
        ratio = (joint_true / prior_true) / (joint_false / (1.0 - prior_true))
        bound = float(np.exp(config.epsilon))
        tol = 1.0 + config.solver.tolerance
        if ratio <= bound * tol and 1.0 / ratio <= bound * tol:
            return SolverStatus.SAFE
        return SolverStatus.VIOLATED

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def to_state(self) -> SessionState:
        """Snapshot the session between steps (suspend)."""
        self._ensure_open()
        return SessionState(
            committed_t=len(self._records),
            records=list(self._records),
            quantifiers=[q.state_dict() for q in self._quantifiers],
            provider=self._provider.state_dict(),
            rng=_rng_state(self._generator),
            emissions=None if self._emissions is None else list(self._emissions),
            session_id=self.session_id,
        )

    @classmethod
    def from_state(
        cls,
        config: EngineConfig | EngineCore,
        state: SessionState,
        cache: VerdictCache | None = None,
    ) -> "ReleaseSession":
        """Rebuild a suspended session (resume).

        ``config`` must match the one the state was produced under; the
        engine cannot verify that beyond shape checks, so treat the pair
        as a unit when parking sessions externally.
        """
        session = cls(config, session_id=state.session_id, cache=cache)
        if len(state.quantifiers) != len(session._quantifiers):
            raise SessionError(
                f"state has {len(state.quantifiers)} quantifiers, config "
                f"defines {len(session._quantifiers)} events"
            )
        if state.committed_t != len(state.records):
            raise SessionError(
                f"state committed_t={state.committed_t} disagrees with "
                f"{len(state.records)} records"
            )
        if state.committed_t > session._config.horizon:
            raise SessionError(
                f"state is at t={state.committed_t}, beyond horizon "
                f"{session._config.horizon}"
            )
        for quantifier, qstate in zip(session._quantifiers, state.quantifiers):
            quantifier.load_state_dict(qstate)
        session._provider.load_state_dict(state.provider)
        session._generator = _rng_from_state(state.rng)
        session._records = list(state.records)
        if session._emissions is not None:
            if state.emissions is None:
                raise SessionError(
                    "config records emissions but the state has none"
                )
            session._emissions = list(state.emissions)
        return session


# ----------------------------------------------------------------------
# lockstep batch stepping (SessionManager.step_many)
# ----------------------------------------------------------------------
def step_sessions_lockstep(
    sessions: list[ReleaseSession], true_cells: list[int]
) -> list[ReleaseRecord]:
    """Step a same-phase group of sessions as one batched pipeline.

    All sessions must share one :class:`EngineCore` and sit at the same
    timestamp ``t``.  The group is driven through the three batched
    layers:

    1. *prepare* -- every event's fronts across all sessions propagate
       through the shared lifted chain in one stacked matmul
       (:func:`repro.core.joint.prepare_many`);
    2. *calibration rounds* -- sessions advance in lockstep; each round
       samples one candidate per still-calibrating session (from that
       session's own RNG, in session order) and, under the worst-case
       prior, funnels every session's Eq. (15)/(16) conditions into a
       single batched solver call
       (:func:`repro.core.qp.solve_conditions_batch`);
    3. *commit* -- releases fold into the fronts session by session.

    The per-session transition sequence is exactly
    :meth:`ReleaseSession.step`'s (same RNG draws, same schedule calls,
    same fallbacks), and solver verdicts are pure functions of the
    assembled conditions, so the resulting records and release streams
    are bit-identical to stepping each session on its own.  Two
    deliberate differences, invisible in the stream:

    * the shared verdict cache is bypassed -- bulk solving replaces
      per-session memoization, and skipping the front digests is a
      large part of the batched win;
    * with ``time_limit_s`` set, wall-clock UNKNOWNs may fall
      differently than under solo stepping (the same caveat the verdict
      cache documents); deterministic configurations (the default, and
      any ``work_limit``) are unaffected.

    On any error during calibration every session in the group is
    rolled back to its committed boundary (fronts and RNG), so the call
    is all-or-nothing up to the commit phase.
    """
    if not sessions:
        return []
    if len(true_cells) != len(sessions):
        raise SessionError(
            f"{len(sessions)} sessions but {len(true_cells)} cells"
        )
    core = sessions[0]._core
    for session in sessions:
        if session._core is not core:
            raise SessionError(
                "step_sessions_lockstep requires sessions sharing one EngineCore"
            )
    t = sessions[0].t
    for session in sessions:
        if session.t != t:
            raise SessionError(
                "step_sessions_lockstep requires same-phase sessions; got "
                f"t={session.t} and t={t}"
            )

    drivers = [
        _StepDriver(session, cell) for session, cell in zip(sessions, true_cells)
    ]
    for index in range(len(core.models)):
        prepare_many([session._quantifiers[index] for session in sessions], t)
    try:
        for driver in drivers:
            driver.begin()
        active = list(drivers)
        while active:
            # Sample this round's candidates in session order, so each
            # session's RNG sees the same draw sequence as solo steps.
            checking: list[_StepDriver] = []
            remaining: list[_StepDriver] = []
            for driver in active:
                column = driver.next_candidate()
                if column is not None:
                    checking.append(driver)
                # else: released via the max-calibrations uniform
                # fallback; drops out of the round.
            verdicts = _lockstep_verdicts(checking, t)
            for driver, verdict in zip(checking, verdicts):
                if not driver.apply_verdict(verdict):
                    remaining.append(driver)
            active = remaining
    except BaseException:
        for driver in drivers:
            driver.rollback()
        raise
    return [driver.commit() for driver in drivers]


def _lockstep_verdicts(
    drivers: list[_StepDriver], t: int
) -> list[SolverStatus]:
    """One calibration round's verdicts, one batched solver call.

    Fixed-prior sessions resolve with the per-event ratio loop (no
    solver involved); worst-case sessions contribute their undecided
    events' conditions to a single :func:`solve_conditions_batch` call
    and recombine per event, then per session -- the same worst-of
    combination the solo check applies.
    """
    verdicts: list[SolverStatus | None] = [None] * len(drivers)
    pairs: list = []
    # (driver position, per-event status list, event index -> pair slot)
    assemblies: list[tuple[int, list, list[tuple[int, int]]]] = []
    for position, driver in enumerate(drivers):
        session = driver.session
        if session._config.prior_mode == "fixed":
            verdicts[position] = session._check_all_fixed(t, driver.column, None)
            continue
        statuses: list[SolverStatus | None] = [None] * len(session._quantifiers)
        slots: list[tuple[int, int]] = []
        for index in range(len(session._quantifiers)):
            status, event_conditions = session._event_conditions(
                index, t, driver.column
            )
            if status is not None:
                statuses[index] = status
            else:
                slots.append((index, len(pairs)))
                pairs.append(event_conditions)
        assemblies.append((position, statuses, slots))
    if pairs:
        options = drivers[0].session._config.solver
        pair_statuses = _solve_condition_pairs(pairs, options)
    else:
        pair_statuses = []
    for position, statuses, slots in assemblies:
        for index, slot in slots:
            statuses[index] = pair_statuses[slot]
        verdicts[position] = _combine_statuses(statuses)
    return verdicts
