"""The streaming release session: Algorithm 1 one timestamp at a time.

The paper's framework is inherently online -- at every timestamp it
calibrates the LPPM, checks epsilon-spatiotemporal-event privacy and
releases one location -- but the original reproduction only exposed the
batch ``PriSTE.run(trajectory)``.  :class:`ReleaseSession` is the
incremental form::

    session = builder.build(rng=0)
    record = session.step(true_cell)      # one release
    session.peek_budget()                 # budget the next step starts from
    state = session.to_state()            # suspend ...
    session = ReleaseSession.from_state(config, state)   # ... resume
    log = session.finish()                # the familiar ReleaseLog

Driven to the end of a trajectory with the default halving calibration,
a session reproduces the legacy batch run bit-for-bit (same RNG
consumption, same verdicts, same records); ``PriSTE.run`` is now a thin
wrapper doing exactly that.
"""

from __future__ import annotations

import time
import uuid

import numpy as np

from .._validation import resolve_rng
from ..core.joint import EventQuantifier
from ..core.qp import SolverStatus, check_conditions
from ..core.theorem import privacy_conditions, sufficient_safe
from ..core.two_world import TwoWorldModel
from ..errors import QuantificationError, SessionError
from ..lppm.uniform import UniformMechanism
from .cache import VerdictCache, digest_array
from .config import EngineConfig
from .providers import MechanismProvider
from .records import ReleaseLog, ReleaseRecord


class EngineCore:
    """Shared, immutable machinery behind one or more sessions.

    Building the two-world models is the expensive part of session
    start-up (O(m^2) per event); a core builds them once and every
    session created from it -- all of a :class:`SessionManager`'s fleet,
    or every ``run()`` of a legacy wrapper -- reuses them.  The optional
    verdict cache lives here too, so sessions sharing a core share hits.
    """

    def __init__(self, config: EngineConfig, cache: VerdictCache | None = None):
        self.config = config
        self.models = [
            TwoWorldModel(config.chain, event, config.horizon)
            for event in config.events
        ]
        self.n_states = self.models[0].n_states
        self.a_vectors = [model.prior_vector() for model in self.models]
        self.cache = cache
        self.config_fingerprint = config.fingerprint()

    def new_provider(self) -> MechanismProvider:
        """A provider for one new session (fresh when stateful)."""
        return self.config.provider_factory()

    def new_quantifiers(self) -> list[EventQuantifier]:
        """Fresh incremental quantifiers over the shared models."""
        return [EventQuantifier(model) for model in self.models]


class SessionState:
    """A suspended session: everything needed to resume it elsewhere.

    Produced by :meth:`ReleaseSession.to_state`; JSON-serializable via
    :meth:`to_json`/:meth:`from_json`, so sessions can be parked in a
    database between a user's location fixes.
    """

    def __init__(
        self,
        committed_t: int,
        records: list[ReleaseRecord],
        quantifiers: list[dict],
        provider: dict,
        rng: dict,
        emissions: list[np.ndarray] | None,
        session_id: str,
    ):
        self.committed_t = committed_t
        self.records = records
        self.quantifiers = quantifiers
        self.provider = provider
        self.rng = rng
        self.emissions = emissions
        self.session_id = session_id

    def to_json(self) -> dict:
        """Plain-dict form, safe for ``json.dumps``."""
        return {
            "committed_t": self.committed_t,
            "records": [record.to_json() for record in self.records],
            "quantifiers": self.quantifiers,
            "provider": self.provider,
            "rng": self.rng,
            "emissions": (
                None
                if self.emissions is None
                else [matrix.tolist() for matrix in self.emissions]
            ),
            "session_id": self.session_id,
        }

    @classmethod
    def from_json(cls, data: dict) -> "SessionState":
        """Inverse of :meth:`to_json`."""
        return cls(
            committed_t=int(data["committed_t"]),
            records=[ReleaseRecord.from_json(r) for r in data["records"]],
            quantifiers=list(data["quantifiers"]),
            provider=dict(data["provider"]),
            rng=dict(data["rng"]),
            emissions=(
                None
                if data["emissions"] is None
                else [np.asarray(m, dtype=np.float64) for m in data["emissions"]]
            ),
            session_id=str(data["session_id"]),
        )


def _rng_state(generator: np.random.Generator) -> dict:
    return generator.bit_generator.state


def _rng_from_state(state: dict) -> np.random.Generator:
    name = state["bit_generator"]
    try:
        bit_generator = getattr(np.random, name)()
    except AttributeError:
        raise SessionError(f"unknown bit generator {name!r} in session state")
    bit_generator.state = state
    return np.random.Generator(bit_generator)


class ReleaseSession:
    """One user's online release stream under Algorithm 1.

    Parameters
    ----------
    config:
        An :class:`EngineConfig` (or a prebuilt :class:`EngineCore` when
        many sessions share models, as :class:`SessionManager` does).
    rng:
        Seed or generator for mechanism sampling; the session owns its
        generator so interleaved sessions stay independently
        reproducible.
    session_id:
        Optional stable identifier (defaults to a fresh UUID hex).
    cache:
        Verdict cache override; defaults to the core's shared cache.
    """

    def __init__(
        self,
        config: EngineConfig | EngineCore,
        rng=None,
        session_id: str | None = None,
        cache: VerdictCache | None = None,
        _provider: MechanismProvider | None = None,
    ):
        core = config if isinstance(config, EngineCore) else EngineCore(config)
        self._core = core
        self._config = core.config
        self._provider = _provider if _provider is not None else core.new_provider()
        self._quantifiers = core.new_quantifiers()
        self._generator = resolve_rng(rng)
        self._cache = cache if cache is not None else core.cache
        self._records: list[ReleaseRecord] = []
        self._emissions: list[np.ndarray] | None = (
            [] if self._config.record_emissions else None
        )
        self._finished = False
        self.session_id = session_id or uuid.uuid4().hex

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The immutable engine configuration."""
        return self._config

    @property
    def t(self) -> int:
        """The next timestamp :meth:`step` would release (1-based)."""
        return len(self._records) + 1

    @property
    def horizon(self) -> int:
        """Release horizon ``T``."""
        return self._config.horizon

    @property
    def records(self) -> list[ReleaseRecord]:
        """Records released so far (copy)."""
        return list(self._records)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has sealed the session."""
        return self._finished

    def peek_budget(self) -> float:
        """Budget the next step's calibration would start from.

        Side-effect free: neither the provider state nor the RNG moves.
        """
        self._ensure_open()
        if self.t > self._config.horizon:
            raise SessionError(
                f"session exhausted its horizon T={self._config.horizon}"
            )
        return self._provider.base_budget(self.t)

    # ------------------------------------------------------------------
    # the framework loop, one timestamp per call
    # ------------------------------------------------------------------
    def step(self, true_cell: int) -> ReleaseRecord:
        """Calibrate, check and release one location (Algorithm 1).

        Raises :class:`SessionError` past the horizon or after
        :meth:`finish`, :class:`QuantificationError` for a cell outside
        the map.
        """
        self._ensure_open()
        t = self.t
        if t > self._config.horizon:
            raise SessionError(
                f"step({true_cell}) at t={t} exceeds horizon "
                f"T={self._config.horizon}; call finish()"
            )
        cell = int(true_cell)
        if not 0 <= cell < self._core.n_states:
            raise QuantificationError(
                f"cell {cell} out of range [0, {self._core.n_states})"
            )

        t_start = time.perf_counter()
        rng_checkpoint = self._generator.bit_generator.state
        for quantifier in self._quantifiers:
            quantifier.prepare(t)
        try:
            digests = (
                [quantifier.prepared_digest() for quantifier in self._quantifiers]
                if self._cache is not None
                else None
            )

            mechanism = self._provider.base_mechanism(t)
            schedule = self._config.calibration.begin(float(mechanism.budget))
            released_cell: int | None = None
            released_column: np.ndarray | None = None
            conservative = False
            forced_uniform = False
            attempts = 0

            while True:
                attempts += 1
                if attempts > self._config.max_calibrations:
                    mechanism, released_cell, released_column = (
                        self._uniform_release(cell)
                    )
                    forced_uniform = True
                    break
                candidate = int(mechanism.perturb(cell, self._generator))
                column = mechanism.emission_column(candidate)
                verdict = self._check_all(t, column, digests)
                if verdict is SolverStatus.SAFE:
                    next_budget = schedule.after_success(float(mechanism.budget))
                    if next_budget is None:
                        released_cell = candidate
                        released_column = column
                        break
                else:
                    if verdict is SolverStatus.UNKNOWN:
                        conservative = True
                    next_budget = schedule.after_failure(float(mechanism.budget))
                if next_budget <= 0.0:
                    # The schedule bottomed out: take the guaranteed-safe
                    # uniform limit without asking the solver.
                    mechanism, released_cell, released_column = (
                        self._uniform_release(cell)
                    )
                    forced_uniform = True
                    break
                mechanism = self._provider.scaled(mechanism, next_budget)
        except BaseException:
            # Roll back to the committed boundary (fronts and RNG) so a
            # failed attempt (solver error, provider error, interrupt)
            # leaves the session steppable, checkpointable, and
            # deterministic on retry.
            for quantifier in self._quantifiers:
                quantifier.abort_prepare()
            self._generator.bit_generator.state = rng_checkpoint
            raise

        for quantifier in self._quantifiers:
            quantifier.commit(t, released_column)
        if self._emissions is not None:
            self._emissions.append(mechanism.emission_matrix())
        self._provider.after_release(t, mechanism, released_cell)
        record = ReleaseRecord(
            t=t,
            true_cell=cell,
            released_cell=released_cell,
            budget=float(mechanism.budget),
            n_attempts=attempts,
            conservative=conservative,
            forced_uniform=forced_uniform,
            elapsed_s=time.perf_counter() - t_start,
        )
        self._records.append(record)
        return record

    def _uniform_release(self, cell: int):
        """Guaranteed-safe fallback: the uniform mechanism.

        It releases no information about the true location, so the
        conditions hold analytically -- no solver call needed.
        """
        mechanism = UniformMechanism(self._core.n_states)
        released_cell = int(mechanism.perturb(cell, self._generator))
        return mechanism, released_cell, mechanism.emission_column(released_cell)

    def finish(self) -> ReleaseLog:
        """Seal the session and return its release log."""
        self._ensure_open()
        self._finished = True
        return ReleaseLog(records=self._records, emission_matrices=self._emissions)

    def _ensure_open(self) -> None:
        if self._finished:
            raise SessionError(f"session {self.session_id!r} is finished")

    # ------------------------------------------------------------------
    # privacy checks (with optional verdict caching)
    # ------------------------------------------------------------------
    def _check_all(self, t, column, digests) -> SolverStatus:
        """Worst verdict across all events for one candidate column."""
        worst = SolverStatus.SAFE
        cache = self._cache
        column_digest = digest_array(column) if cache is not None else None
        for index, (quantifier, a) in enumerate(
            zip(self._quantifiers, self._core.a_vectors)
        ):
            if cache is not None:
                key = b"|".join(
                    [
                        self._core.config_fingerprint,
                        index.to_bytes(2, "little"),
                        digests[index],
                        column_digest,
                    ]
                )
                status = cache.lookup(key)
                if status is None:
                    status = self._check_one(quantifier, a, t, column)
                    cache.store(key, status)
            else:
                status = self._check_one(quantifier, a, t, column)
            if status is SolverStatus.VIOLATED:
                return SolverStatus.VIOLATED
            if status is SolverStatus.UNKNOWN:
                worst = SolverStatus.UNKNOWN
        return worst

    def _check_one(self, quantifier, a, t, column) -> SolverStatus:
        config = self._config
        b, c = quantifier.candidate_bc(t, column)
        if config.prior_mode == "fixed":
            return self._fixed_prior_verdict(a, b, c)
        if sufficient_safe(a, b, c, config.epsilon, config.solver.tolerance):
            # O(m) certificate: provably safe for every pi without
            # touching the quadratic program (conservative-release
            # fast path).
            return SolverStatus.SAFE
        conditions = privacy_conditions(a, b, c, config.epsilon)
        status, _ = check_conditions(conditions, config.solver)
        return status

    def _fixed_prior_verdict(self, a, b, c) -> SolverStatus:
        """Definition II.4 ratio check at the configured concrete prior."""
        config = self._config
        pi = config.prior
        prior_true = float(pi @ a)
        joint_true = float(pi @ b)
        joint_false = float(pi @ c) - joint_true
        if not 0.0 < prior_true < 1.0:
            raise QuantificationError(
                f"Pr(EVENT) = {prior_true:.6g} under the configured prior; "
                "the Definition II.4 ratio is undefined"
            )
        if joint_true <= 0.0 and joint_false <= 0.0:
            return SolverStatus.SAFE  # observation impossible either way
        if joint_true <= 0.0 or joint_false <= 0.0:
            return SolverStatus.VIOLATED  # one side certain, infinite ratio
        ratio = (joint_true / prior_true) / (joint_false / (1.0 - prior_true))
        bound = float(np.exp(config.epsilon))
        tol = 1.0 + config.solver.tolerance
        if ratio <= bound * tol and 1.0 / ratio <= bound * tol:
            return SolverStatus.SAFE
        return SolverStatus.VIOLATED

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def to_state(self) -> SessionState:
        """Snapshot the session between steps (suspend)."""
        self._ensure_open()
        return SessionState(
            committed_t=len(self._records),
            records=list(self._records),
            quantifiers=[q.state_dict() for q in self._quantifiers],
            provider=self._provider.state_dict(),
            rng=_rng_state(self._generator),
            emissions=None if self._emissions is None else list(self._emissions),
            session_id=self.session_id,
        )

    @classmethod
    def from_state(
        cls,
        config: EngineConfig | EngineCore,
        state: SessionState,
        cache: VerdictCache | None = None,
    ) -> "ReleaseSession":
        """Rebuild a suspended session (resume).

        ``config`` must match the one the state was produced under; the
        engine cannot verify that beyond shape checks, so treat the pair
        as a unit when parking sessions externally.
        """
        session = cls(config, session_id=state.session_id, cache=cache)
        if len(state.quantifiers) != len(session._quantifiers):
            raise SessionError(
                f"state has {len(state.quantifiers)} quantifiers, config "
                f"defines {len(session._quantifiers)} events"
            )
        if state.committed_t != len(state.records):
            raise SessionError(
                f"state committed_t={state.committed_t} disagrees with "
                f"{len(state.records)} records"
            )
        if state.committed_t > session._config.horizon:
            raise SessionError(
                f"state is at t={state.committed_t}, beyond horizon "
                f"{session._config.horizon}"
            )
        for quantifier, qstate in zip(session._quantifiers, state.quantifiers):
            quantifier.load_state_dict(qstate)
        session._provider.load_state_dict(state.provider)
        session._generator = _rng_from_state(state.rng)
        session._records = list(state.records)
        if session._emissions is not None:
            if state.emissions is None:
                raise SessionError(
                    "config records emissions but the state has none"
                )
            session._emissions = list(state.emissions)
        return session
