"""Engine configuration and the fluent session builder.

:class:`EngineConfig` is the engine-native counterpart of the legacy
:class:`repro.PriSTEConfig`: it carries the full release setting (chain,
events, horizon, privacy parameters, calibration strategy, solver
options and a mechanism-provider factory) as one immutable value, so a
config can be shared by any number of sessions and managers.

:class:`SessionBuilder` is the ergonomic way to assemble one::

    session = (
        SessionBuilder()
        .with_grid(grid)
        .with_chain(chain)
        .protecting(event)
        .with_mechanism(PlanarLaplaceMechanism(grid, 0.5))
        .with_epsilon(0.5)
        .with_fixed_prior(pi)
        .with_horizon(50)
        .build(rng=0)
    )
    record = session.step(true_cell)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from .._validation import check_positive, check_probability_vector
from ..errors import CalibrationError, SessionError
from ..events.events import SpatiotemporalEvent
from ..geo.grid import GridMap
from ..lppm.base import LPPM
from ..core.qp import SolverOptions
from .calibration import BudgetHalving, CalibrationStrategy, resolve_strategy
from .providers import (
    DeltaLocationSetProvider,
    MechanismProvider,
    StaticMechanismProvider,
)


@dataclass(frozen=True)
class EngineConfig:
    """Everything a :class:`~repro.engine.session.ReleaseSession` needs.

    Parameters
    ----------
    chain:
        The user's mobility model (also the adversary's knowledge).
    events:
        The protected events; all must hold simultaneously at every
        timestamp (Fig. 9).
    horizon:
        Release horizon ``T``.
    epsilon:
        The epsilon of epsilon-spatiotemporal event privacy to enforce.
    provider_factory:
        Zero-argument callable returning the session's
        :class:`~repro.engine.providers.MechanismProvider`.  Stateful
        providers (Algorithm 3) must return a fresh instance per call;
        the stateless Algorithm 2 provider may be shared.
    calibration:
        The budget schedule (default: the paper's halving).
    max_calibrations:
        Rounds before falling back to the uniform mechanism, the
        guaranteed-safe limit of every decay schedule.
    solver:
        QP solver options; ``time_limit_s``/``work_limit`` implement the
        conservative-release threshold of Table III.
    prior_mode / prior:
        ``"worst_case"`` enforces Theorem IV.1 for arbitrary initial
        distributions; ``"fixed"`` checks the Definition II.4 ratio at
        the concrete ``prior`` (see :class:`repro.PriSTEConfig` for the
        full discussion).
    record_emissions:
        Keep the actually-used emission matrix per timestamp in the log.
    grid:
        Optional map, for error metrics and provider conveniences.
    """

    chain: object
    events: tuple[SpatiotemporalEvent, ...]
    horizon: int
    epsilon: float
    provider_factory: Callable[[], MechanismProvider]
    calibration: CalibrationStrategy = field(default_factory=BudgetHalving)
    max_calibrations: int = 60
    solver: SolverOptions = field(default_factory=SolverOptions)
    prior_mode: str = "worst_case"
    prior: np.ndarray | None = None
    record_emissions: bool = False
    grid: GridMap | None = None

    def __post_init__(self) -> None:
        check_positive(self.epsilon, "epsilon")
        if not self.events:
            raise SessionError("the engine needs at least one event")
        object.__setattr__(self, "events", tuple(self.events))
        if int(self.horizon) < 1:
            raise SessionError(f"horizon must be >= 1, got {self.horizon!r}")
        object.__setattr__(self, "horizon", int(self.horizon))
        if self.max_calibrations < 1:
            raise CalibrationError(
                f"max_calibrations must be >= 1, got {self.max_calibrations!r}"
            )
        if self.prior_mode not in ("worst_case", "fixed"):
            raise CalibrationError(
                f"prior_mode must be 'worst_case' or 'fixed', got {self.prior_mode!r}"
            )
        if self.prior_mode == "fixed":
            if self.prior is None:
                raise CalibrationError("prior_mode='fixed' requires a prior")
            object.__setattr__(
                self, "prior", check_probability_vector(self.prior, "prior")
            )

    def fingerprint(self) -> bytes:
        """Byte identity of the parameters a cached verdict depends on.

        The chain and events are *not* included -- their influence is
        already captured exactly by the quantifier's prepared-front
        digest that shares the cache key.
        """
        prior_bytes = b"" if self.prior is None else self.prior.tobytes()
        return b"|".join(
            [
                repr(float(self.epsilon)).encode(),
                self.prior_mode.encode(),
                prior_bytes,
                self.solver.fingerprint(),
            ]
        )


class SessionBuilder:
    """Fluent assembly of an :class:`EngineConfig` and its sessions.

    Every ``with_*`` method returns the builder, so configuration chains;
    :meth:`build_config` produces the immutable config, :meth:`build` a
    ready session.  The builder itself is reusable: building does not
    consume it.
    """

    def __init__(self) -> None:
        self._grid: GridMap | None = None
        self._chain = None
        self._events: list[SpatiotemporalEvent] = []
        self._horizon: int | None = None
        self._epsilon: float | None = None
        self._calibration: CalibrationStrategy = BudgetHalving()
        self._max_calibrations = 60
        self._solver = SolverOptions()
        self._prior_mode = "worst_case"
        self._prior: np.ndarray | None = None
        self._record_emissions = False
        # ("static", lppm) | ("delta", alpha, delta, initial) | ("factory", fn)
        self._provider_spec: tuple | None = None

    # -- setting ---------------------------------------------------------
    def with_grid(self, grid: GridMap) -> "SessionBuilder":
        """The cell map (needed by delta-location-set providers)."""
        self._grid = grid
        return self

    def with_chain(self, chain) -> "SessionBuilder":
        """The mobility model."""
        self._chain = chain
        return self

    def protecting(
        self, *events: SpatiotemporalEvent | Sequence[SpatiotemporalEvent]
    ) -> "SessionBuilder":
        """Add one or more protected events (cumulative)."""
        for entry in events:
            if isinstance(entry, SpatiotemporalEvent):
                self._events.append(entry)
            else:
                self._events.extend(entry)
        return self

    def with_horizon(self, horizon: int) -> "SessionBuilder":
        """Release horizon ``T``."""
        self._horizon = int(horizon)
        return self

    # -- privacy ---------------------------------------------------------
    def with_epsilon(self, epsilon: float) -> "SessionBuilder":
        """The event-privacy level to enforce."""
        self._epsilon = float(epsilon)
        return self

    def with_fixed_prior(self, prior) -> "SessionBuilder":
        """Check the Definition II.4 ratio at this concrete prior."""
        self._prior_mode = "fixed"
        self._prior = np.asarray(prior, dtype=np.float64)
        return self

    def with_worst_case_prior(self) -> "SessionBuilder":
        """Enforce Theorem IV.1 for arbitrary priors (the default)."""
        self._prior_mode = "worst_case"
        self._prior = None
        return self

    # -- mechanism -------------------------------------------------------
    def with_mechanism(self, lppm: LPPM) -> "SessionBuilder":
        """Algorithm 2: one budget-scalable base mechanism (shared)."""
        self._provider_spec = ("static", lppm)
        return self

    def with_delta_location_set(
        self, alpha: float, delta: float, initial
    ) -> "SessionBuilder":
        """Algorithm 3: per-timestamp posterior-restricted mechanisms."""
        self._provider_spec = ("delta", float(alpha), float(delta), initial)
        return self

    def with_provider_factory(
        self, factory: Callable[[], MechanismProvider]
    ) -> "SessionBuilder":
        """Custom provider; called once per session."""
        self._provider_spec = ("factory", factory)
        return self

    # -- calibration / solver --------------------------------------------
    def with_calibration(self, strategy) -> "SessionBuilder":
        """A :class:`CalibrationStrategy` instance or registered name."""
        self._calibration = resolve_strategy(strategy)
        return self

    def with_max_calibrations(self, n: int) -> "SessionBuilder":
        """Rounds before the uniform fallback."""
        self._max_calibrations = int(n)
        return self

    def with_solver(self, options: SolverOptions) -> "SessionBuilder":
        """QP solver options (conservative-release knobs)."""
        self._solver = options
        return self

    def recording_emissions(self, record: bool = True) -> "SessionBuilder":
        """Keep per-timestamp emission matrices in the release log."""
        self._record_emissions = bool(record)
        return self

    # -- building --------------------------------------------------------
    def build_config(self) -> EngineConfig:
        """Validate and freeze the accumulated configuration."""
        if self._chain is None:
            raise SessionError("SessionBuilder needs with_chain(...)")
        if not self._events:
            raise SessionError("SessionBuilder needs protecting(event, ...)")
        if self._horizon is None:
            raise SessionError("SessionBuilder needs with_horizon(...)")
        if self._epsilon is None:
            raise SessionError("SessionBuilder needs with_epsilon(...)")
        if self._provider_spec is None:
            raise SessionError(
                "SessionBuilder needs a mechanism: with_mechanism(...), "
                "with_delta_location_set(...) or with_provider_factory(...)"
            )
        factory = self._resolve_provider_factory()
        return EngineConfig(
            chain=self._chain,
            events=tuple(self._events),
            horizon=self._horizon,
            epsilon=self._epsilon,
            provider_factory=factory,
            calibration=self._calibration,
            max_calibrations=self._max_calibrations,
            solver=self._solver,
            prior_mode=self._prior_mode,
            prior=self._prior,
            record_emissions=self._record_emissions,
            grid=self._grid,
        )

    def _resolve_provider_factory(self) -> Callable[[], MechanismProvider]:
        kind = self._provider_spec[0]
        if kind == "static":
            # Stateless: one shared instance also shares its mechanism
            # ladder memo across every session built from this config.
            provider = StaticMechanismProvider(self._provider_spec[1])
            return lambda: provider
        if kind == "delta":
            if self._grid is None:
                raise SessionError(
                    "with_delta_location_set(...) requires with_grid(...)"
                )
            _, alpha, delta, initial = self._provider_spec
            grid, chain = self._grid, self._chain
            return lambda: DeltaLocationSetProvider(grid, chain, alpha, delta, initial)
        return self._provider_spec[1]

    def build(self, rng=None, session_id: str | None = None):
        """A fresh :class:`~repro.engine.session.ReleaseSession`."""
        from .session import ReleaseSession

        return ReleaseSession(self.build_config(), rng=rng, session_id=session_id)


def config_with(config: EngineConfig, **overrides) -> EngineConfig:
    """A copy of ``config`` with fields replaced (dataclass ``replace``)."""
    return replace(config, **overrides)
