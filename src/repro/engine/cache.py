"""LRU cache of solver verdicts, shared across streaming sessions.

The Theorem IV.1 verdict for one candidate column is a pure function of

* the quantifier's prepared front state (which encodes the chain, the
  event and the committed release history),
* the candidate emission column,
* the privacy parameters (epsilon, prior mode / prior) and the solver
  options.

:class:`VerdictCache` keys on digests of exactly those inputs, so a hit
is sound by construction: sessions with the same configuration that reach
the same front state (e.g. many users at their first timestamps, or the
halving ladder re-sampling an output it already tried) skip the quadratic
program entirely.

One caveat: with ``work_limit``/``time_limit_s`` set, an UNKNOWN verdict
depends on the solver's budget and (for wall-clock limits) on machine
load; caching it is *conservative* -- never unsound -- but can keep a
timestamp conservative where a fresh solve might have certified SAFE.
The legacy batch wrappers therefore default to no cache.

The cache is thread-safe: the serving layer (:mod:`repro.service`) steps
different sessions on a worker pool, so lookups, stores and the stats
counters are guarded by one lock.  A concurrent miss on the same key
means both threads solve and both store -- wasted work, never a wrong
answer, since the verdict is a pure function of the key.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..core.qp import SolverStatus
from ..errors import ValidationError


def digest_array(array: np.ndarray) -> bytes:
    """Stable digest of an array's contents (dtype/shape-sensitive)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(str(array.dtype).encode())
    h.update(str(array.shape).encode())
    h.update(np.ascontiguousarray(array).tobytes())
    return h.digest()


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of a :class:`VerdictCache`."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class VerdictCache:
    """Bounded LRU mapping verdict keys to :class:`SolverStatus`.

    Keys are opaque byte strings built by the session from the config
    fingerprint, the prepared-front digest and the candidate-column
    digest; the cache itself only handles storage and accounting.
    """

    def __init__(self, maxsize: int = 131_072):
        if maxsize < 1:
            raise ValidationError(f"maxsize must be >= 1, got {maxsize!r}")
        self._maxsize = int(maxsize)
        self._entries: OrderedDict[bytes, SolverStatus] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def maxsize(self) -> int:
        """Capacity bound."""
        return self._maxsize

    def lookup(self, key: bytes) -> SolverStatus | None:
        """The cached verdict for ``key``, refreshing its recency."""
        with self._lock:
            status = self._entries.get(key)
            if status is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return status

    def store(self, key: bytes, status: SolverStatus) -> None:
        """Insert/refresh a verdict, evicting the LRU entry when full."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = status
            if len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """One atomic snapshot of the hit/miss/eviction counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                maxsize=self._maxsize,
            )
