"""Execution backends: where a fleet's engine work actually runs.

The serving layer drives sessions through a narrow, synchronous
:class:`ExecutionBackend` surface instead of touching a
:class:`~repro.engine.manager.SessionManager` directly.  Three
implementations exist:

* :class:`InProcessBackend` -- a thin adapter over one
  ``SessionManager`` in the calling process.  Steps run wherever the
  caller runs them (the service offloads onto its thread pool); this is
  the single-process path that existed before backends did.
* :class:`~repro.engine.shard.ShardPool` -- N worker processes *on this
  machine*, each owning a full ``SessionManager``, with deterministic
  session->shard routing.  Engine CPU leaves the caller's process
  entirely, so a multi-core machine serves near-linearly in cores
  instead of contending on one GIL.
* :class:`~repro.cluster.ClusterBackend` -- N ``repro worker``
  processes on *any* machines, reached over TCP with the same typed RPC
  codec, placed by a consistent-hash ring, with live session migration
  between workers (see :mod:`repro.cluster`).

Every method is synchronous and thread-safe to call from worker
threads; async plumbing, per-session ordering locks and residency/LRU
bookkeeping stay in the serving layer.  Both backends produce
bit-identical release streams for the same session ids and seeds --
the backend decides *where* a step executes, never *what* it computes.
"""

from __future__ import annotations

import abc
from typing import Mapping

from ..errors import SessionError
from .cache import CacheStats
from .manager import SessionManager
from .records import ReleaseLog, ReleaseRecord
from .session import SessionState


def step_batch_on_manager(
    manager: SessionManager, cells: Mapping[str, int]
) -> tuple[dict[str, ReleaseRecord], dict[str, BaseException]]:
    """One micro-batch of steps with per-member error isolation.

    Each member is validated individually, so one bad session id or
    out-of-range cell rejects that request alone.  Valid members are
    grouped by timestamp and each group steps through
    :meth:`SessionManager.step_many` (bit-identical to per-session
    stepping); a group's lockstep failure rolls that group back
    atomically and is routed to exactly its members, so sessions in
    other groups keep their committed records.

    Returns ``(records, errors)`` keyed by session id; every input id
    appears in exactly one of the two.  Shared by
    :class:`InProcessBackend` and the shard worker loop so both serving
    modes fail a batch identically.
    """
    errors: dict[str, BaseException] = {}
    valid: dict[str, int] = {}
    for sid, cell in cells.items():
        try:
            valid[sid] = manager.validate_step(sid, cell)
        except Exception as error:  # noqa: BLE001 - isolate per member
            errors[sid] = error
    groups: dict[int, dict[str, int]] = {}
    for sid, cell in valid.items():
        groups.setdefault(manager.session(sid).t, {})[sid] = cell
    records: dict[str, ReleaseRecord] = {}
    for group_cells in groups.values():
        try:
            records.update(manager.step_many(group_cells))
        except Exception as error:  # noqa: BLE001 - per-group atomic
            for sid in group_cells:
                errors[sid] = error
    return records, errors


class ExecutionBackend(abc.ABC):
    """Synchronous fleet-execution surface the serving layer drives.

    Implementations own the engine state (sessions, models, verdict
    cache) and answer the full lifecycle: open, step (single and
    batched), peek, finish, and the checkpoint/suspend/resume loop that
    the service's store-backed eviction and graceful drain ride on.
    """

    #: Number of shard worker processes (0 = everything in-process).
    n_shards: int = 0
    #: True when operations cross a process boundary.  The server keeps
    #: even cheap lifecycle ops off the event loop for remote backends,
    #: since an RPC can block behind a shard's in-flight batch.
    remote: bool = False

    @property
    @abc.abstractmethod
    def horizon(self) -> int:
        """Release horizon ``T`` of the *default* engine configuration."""

    @property
    @abc.abstractmethod
    def n_states(self) -> int:
        """Number of map cells ``m`` of the *default* configuration."""

    @abc.abstractmethod
    def open(
        self, session_id: str, seed: int | None = None, scenario=None
    ) -> int:
        """Create a session (deterministic under a fixed seed).

        ``scenario`` is an optional :class:`~repro.scenario.ScenarioSpec`
        (or its JSON dict) selecting the session's release setting;
        ``None`` uses the default configuration.  Returns the session's
        horizon ``T`` (scenarios may differ from the default's).
        """

    @abc.abstractmethod
    def contains(self, session_id: str) -> bool:
        """Whether the session is resident in the backend."""

    def __contains__(self, session_id: str) -> bool:
        return self.contains(session_id)

    @abc.abstractmethod
    def resident_count(self) -> int:
        """Number of resident sessions (drives the eviction cap)."""

    @abc.abstractmethod
    def session_ids(self) -> list[str]:
        """Resident session ids."""

    @abc.abstractmethod
    def step(self, session_id: str, cell: int) -> ReleaseRecord:
        """Validate and release one location for one session."""

    @abc.abstractmethod
    def step_batch(
        self, cells: Mapping[str, int]
    ) -> tuple[dict[str, ReleaseRecord], dict[str, BaseException]]:
        """Step many sessions with per-member error isolation.

        Same contract as :func:`step_batch_on_manager`; sharded
        backends additionally fan the batch out as one message per
        shard.
        """

    @abc.abstractmethod
    def peek_budget(self, session_id: str) -> float:
        """Budget the session's next step would start calibrating from."""

    @abc.abstractmethod
    def finish(self, session_id: str) -> ReleaseLog:
        """Seal a session and return its log."""

    @abc.abstractmethod
    def checkpoint(self, session_id: str) -> SessionState:
        """Snapshot a session without closing it."""

    @abc.abstractmethod
    def suspend(self, session_id: str) -> SessionState:
        """Snapshot a session and evict it from the backend."""

    @abc.abstractmethod
    def suspend_all(self) -> tuple[list[SessionState], list[str]]:
        """Suspend every resident session (graceful drain).

        Returns ``(states, lost)``: the checkpointed states plus the ids
        of sessions that could not be checkpointed because their shard
        died -- never silently dropped.
        """

    @abc.abstractmethod
    def resume(self, state: SessionState) -> str:
        """Re-open a suspended session from its state; returns its id."""

    @abc.abstractmethod
    def cache_stats(self) -> CacheStats | None:
        """Verdict-cache counters, aggregated across shards."""

    def shard_stats(self) -> list[dict] | None:
        """Per-shard/worker observability rows (``None`` in-process)."""
        return None

    def worker_health(self) -> list[dict] | None:
        """Local-state health rows per shard/worker (``None`` in-process).

        Unlike :meth:`shard_stats` this must never issue an RPC -- it
        feeds readiness probes and metric scrapes, which a slow worker
        must not be able to stall.  Rows carry ``worker`` (a display
        name), ``alive``, ``inflight`` (RPCs on the wire right now),
        ``heartbeat_age_s`` (seconds since the last successful reply or
        ping) and ``rpc_latency`` (a mergeable
        :meth:`~repro.obs.registry.LatencyHistogram.state`).
        """
        return None

    def lost_session_ids(self) -> list[str]:
        """Sessions unreachable behind dead shards/workers.

        In-process backends cannot lose sessions this way; multi-process
        ones override (:meth:`~repro.engine.shard.ShardPool.lost_session_ids`,
        :meth:`~repro.cluster.ClusterBackend.lost_session_ids`).
        """
        return []

    def close(self) -> None:
        """Release backend resources (processes, channels, sockets)."""


class InProcessBackend(ExecutionBackend):
    """The pre-shard path: one :class:`SessionManager`, this process."""

    def __init__(self, manager: SessionManager):
        self._manager = manager

    @property
    def manager(self) -> SessionManager:
        """The wrapped manager (advanced use; prefer the backend API)."""
        return self._manager

    @property
    def horizon(self) -> int:
        return self._manager.config.horizon

    @property
    def n_states(self) -> int:
        return self._manager.n_states

    def open(
        self, session_id: str, seed: int | None = None, scenario=None
    ) -> int:
        self._manager.open(session_id, rng=seed, scenario=scenario)
        return self._manager.horizon_of(session_id)

    def contains(self, session_id: str) -> bool:
        return session_id in self._manager

    def resident_count(self) -> int:
        return len(self._manager)

    def session_ids(self) -> list[str]:
        return self._manager.session_ids

    def step(self, session_id: str, cell: int) -> ReleaseRecord:
        self._manager.validate_step(session_id, cell)
        return self._manager.step(session_id, cell)

    def step_batch(
        self, cells: Mapping[str, int]
    ) -> tuple[dict[str, ReleaseRecord], dict[str, BaseException]]:
        return step_batch_on_manager(self._manager, cells)

    def peek_budget(self, session_id: str) -> float:
        return self._manager.peek_budget(session_id)

    def finish(self, session_id: str) -> ReleaseLog:
        return self._manager.finish(session_id)

    def checkpoint(self, session_id: str) -> SessionState:
        return self._manager.checkpoint(session_id)

    def suspend(self, session_id: str) -> SessionState:
        return self._manager.suspend(session_id)

    def suspend_all(self) -> tuple[list[SessionState], list[str]]:
        states = [
            self._manager.suspend(sid) for sid in list(self._manager.session_ids)
        ]
        return states, []

    def resume(self, state: SessionState) -> str:
        return self._manager.resume(state)

    def cache_stats(self) -> CacheStats | None:
        return self._manager.cache_stats()


def as_backend(engine) -> ExecutionBackend:
    """Adapt a :class:`SessionManager` (or pass a backend through)."""
    if isinstance(engine, ExecutionBackend):
        return engine
    if isinstance(engine, SessionManager):
        return InProcessBackend(engine)
    raise SessionError(
        f"expected a SessionManager or ExecutionBackend, got {type(engine).__name__}"
    )
