"""Mechanism providers: the strategy giving the engine its base LPPM.

Moved here from :mod:`repro.core.priste` (which re-exports them): the
provider protocol is an engine-layer concern, since both the streaming
:class:`~repro.engine.session.ReleaseSession` and the legacy batch
wrappers drive it.

Beyond the original protocol, providers now also expose

* :meth:`MechanismProvider.base_budget` -- a *non-mutating* preview of
  the budget calibration would start from at a timestamp (backs
  ``ReleaseSession.peek_budget``);
* :meth:`MechanismProvider.scaled` -- the budget-rescaling hook of the
  calibration loop, which :class:`StaticMechanismProvider` memoizes so
  the halving ladder's emission matrices are built once and shared by
  every session of a :class:`~repro.engine.manager.SessionManager`;
* ``state_dict``/``load_state_dict`` -- checkpointing hooks for
  suspend/resume.
"""

from __future__ import annotations

import threading
from typing import Protocol, runtime_checkable

import numpy as np

from .._validation import check_positive, check_probability_vector
from ..errors import QuantificationError
from ..geo.grid import GridMap
from ..lppm.base import LPPM
from ..lppm.delta_location_set import DeltaLocationSetMechanism, posterior_update


@runtime_checkable
class MechanismProvider(Protocol):
    """Strategy giving the engine its per-timestamp base mechanism."""

    def base_mechanism(self, t: int) -> LPPM:
        """The mechanism to start calibration from at timestamp ``t``."""
        ...

    def base_budget(self, t: int) -> float:
        """The budget of :meth:`base_mechanism` at ``t``, side-effect free."""
        ...

    def scaled(self, mechanism: LPPM, budget: float) -> LPPM:
        """``mechanism`` rescaled to ``budget`` (calibration retry)."""
        ...

    def after_release(self, t: int, mechanism: LPPM, released_cell: int) -> None:
        """Hook after a release (posterior bookkeeping etc.)."""
        ...

    def state_dict(self) -> dict:
        """JSON-friendly snapshot of the provider's mutable state."""
        ...

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        ...


class StaticMechanismProvider:
    """Algorithm 2's provider: the same base LPPM at every timestamp.

    Stateless across releases, so one instance can safely serve many
    concurrent sessions -- which is exactly what makes the ``scaled``
    memo valuable: the calibration ladder ``alpha, alpha/2, alpha/4, ...``
    repeats across timestamps and sessions, and each rescaled mechanism
    (with its lazily computed emission matrix) is constructed only once.

    The memo is guarded by a lock so sessions stepped concurrently on a
    worker pool (:mod:`repro.service`) share one mechanism object per
    budget.  Only the cheap ``with_budget`` construction happens under
    the lock; the heavy emission-matrix computation stays lazy, and a
    concurrent first touch of the same mechanism at worst computes the
    identical matrix twice.
    """

    def __init__(self, lppm: LPPM):
        self._lppm = lppm
        self._ladder: dict[float, LPPM] = {}
        self._ladder_lock = threading.Lock()

    def base_mechanism(self, t: int) -> LPPM:
        return self._lppm

    def base_budget(self, t: int) -> float:
        return float(self._lppm.budget)

    def scaled(self, mechanism: LPPM, budget: float) -> LPPM:
        with self._ladder_lock:
            scaled = self._ladder.get(budget)
            if scaled is None:
                scaled = mechanism.with_budget(budget)
                self._ladder[budget] = scaled
        return scaled

    def after_release(self, t: int, mechanism: LPPM, released_cell: int) -> None:
        return None

    def state_dict(self) -> dict:
        return {}

    def load_state_dict(self, state: dict) -> None:
        return None


class DeltaLocationSetProvider:
    """Algorithm 3's provider: rebuild the mechanism from the posterior.

    Maintains ``p+_{t-1}``; at each timestamp computes the Markov prior
    ``p-_t = p+_{t-1} M`` (line 2), constructs the delta-location set
    mechanism on it (lines 3-4), and updates the posterior with Eq. (21)
    after the release (line 8).

    Stateful: every session needs its own instance (the builder's
    provider factory takes care of that).
    """

    def __init__(self, grid: GridMap, chain, alpha: float, delta: float, initial):
        self._grid = grid
        from ..markov.transition import TimeVaryingChain, TransitionMatrix

        if isinstance(chain, TimeVaryingChain):
            self._chain = chain
        elif isinstance(chain, TransitionMatrix):
            self._chain = TimeVaryingChain.homogeneous(chain)
        else:
            self._chain = TimeVaryingChain.homogeneous(
                TransitionMatrix(np.asarray(chain))
            )
        self._alpha = check_positive(alpha, "alpha")
        self._delta = float(delta)
        self._posterior = check_probability_vector(initial, "initial distribution")
        self._current_prior: np.ndarray | None = None

    @property
    def posterior(self) -> np.ndarray:
        """``p+_{t-1}``: the adversary's posterior after the last release."""
        return self._posterior.copy()

    def base_mechanism(self, t: int) -> LPPM:
        if t == 1:
            prior = self._posterior
        else:
            prior = self._posterior @ self._chain.array_at(t - 1)
        self._current_prior = prior
        return DeltaLocationSetMechanism(self._grid, self._alpha, prior, self._delta)

    def base_budget(self, t: int) -> float:
        return self._alpha

    def scaled(self, mechanism: LPPM, budget: float) -> LPPM:
        # The mechanism is prior-dependent, so rescaled copies cannot be
        # shared across timestamps or sessions.
        return mechanism.with_budget(budget)

    def after_release(self, t: int, mechanism: LPPM, released_cell: int) -> None:
        if self._current_prior is None:
            raise QuantificationError("after_release called before base_mechanism")
        self._posterior = posterior_update(
            self._current_prior, mechanism.emission_matrix(), released_cell
        )
        self._current_prior = None

    def state_dict(self) -> dict:
        return {"posterior": self._posterior.tolist()}

    def load_state_dict(self, state: dict) -> None:
        self._posterior = check_probability_vector(
            np.asarray(state["posterior"], dtype=np.float64), "posterior"
        )
        self._current_prior = None
