"""Release records and logs: the engine's output types.

These used to live in :mod:`repro.core.priste`; they moved down into the
engine layer so that both the streaming API (:class:`ReleaseSession`)
and the legacy batch API (:class:`repro.PriSTE`) share one definition.
The old import path keeps working via a re-export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import QuantificationError
from ..geo.grid import GridMap


@dataclass(frozen=True)
class ReleaseRecord:
    """One released location and how it was calibrated."""

    t: int
    true_cell: int
    released_cell: int
    budget: float
    n_attempts: int
    conservative: bool
    forced_uniform: bool
    elapsed_s: float

    def to_json(self) -> dict:
        """Plain-dict form (JSON-serializable)."""
        return {
            "t": self.t,
            "true_cell": self.true_cell,
            "released_cell": self.released_cell,
            "budget": self.budget,
            "n_attempts": self.n_attempts,
            "conservative": self.conservative,
            "forced_uniform": self.forced_uniform,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ReleaseRecord":
        """Inverse of :meth:`to_json`."""
        return cls(
            t=int(data["t"]),
            true_cell=int(data["true_cell"]),
            released_cell=int(data["released_cell"]),
            budget=float(data["budget"]),
            n_attempts=int(data["n_attempts"]),
            conservative=bool(data["conservative"]),
            forced_uniform=bool(data["forced_uniform"]),
            elapsed_s=float(data["elapsed_s"]),
        )


@dataclass
class ReleaseLog:
    """The full output of one PriSTE run / one finished session.

    ``emission_matrices`` is populated only when the run's config sets
    ``record_emissions=True``: one ``(m, n_outputs)`` matrix per
    timestamp, the *actually used* mechanism (essential for exact
    post-hoc verification of Algorithm 3, whose mechanism depends on the
    evolving posterior and cannot be reconstructed from the budget
    alone).
    """

    records: list[ReleaseRecord] = field(default_factory=list)
    emission_matrices: list[np.ndarray] | None = None

    def __len__(self) -> int:
        return len(self.records)

    @property
    def released_cells(self) -> list[int]:
        """The released trajectory ``o_1..o_T``."""
        return [record.released_cell for record in self.records]

    @property
    def true_cells(self) -> list[int]:
        """The true trajectory ``u_1..u_T`` the log was produced from."""
        return [record.true_cell for record in self.records]

    @property
    def budgets(self) -> np.ndarray:
        """Final budget used at each timestamp."""
        return np.array([record.budget for record in self.records])

    @property
    def average_budget(self) -> float:
        """The paper's primary utility metric (higher = better)."""
        return float(self.budgets.mean())

    @property
    def n_conservative(self) -> int:
        """Timestamps where an UNKNOWN verdict forced extra perturbation."""
        return sum(1 for record in self.records if record.conservative)

    @property
    def total_elapsed_s(self) -> float:
        """Total wall-clock spent calibrating and releasing."""
        return sum(record.elapsed_s for record in self.records)

    def euclidean_error_km(self, grid: GridMap, true_cells: Sequence[int]) -> float:
        """Average km error vs the true trajectory (lower = better)."""
        return grid.trajectory_error_km(list(true_cells), self.released_cells)

    def emission_stack(self) -> np.ndarray:
        """The recorded per-timestamp emission matrices as one array.

        Requires the run to have used ``record_emissions=True`` and every
        mechanism to share an output alphabet; raises otherwise.
        """
        if self.emission_matrices is None:
            raise QuantificationError(
                "emissions were not recorded; set "
                "PriSTEConfig(record_emissions=True)"
            )
        shapes = {matrix.shape for matrix in self.emission_matrices}
        if len(shapes) != 1:
            raise QuantificationError(
                f"mechanisms used different output alphabets: {sorted(shapes)}"
            )
        return np.stack(self.emission_matrices)


def stack_release_logs(logs: Sequence[ReleaseLog]) -> np.ndarray:
    """Vectorized emission-stack construction over many finished logs.

    Returns a ``(n_logs, T, m, n_outputs)`` array; every log must have
    recorded emissions, the same length and the same alphabet.
    """
    if not logs:
        raise QuantificationError("need at least one release log to stack")
    stacks = [log.emission_stack() for log in logs]
    shapes = {stack.shape for stack in stacks}
    if len(shapes) != 1:
        raise QuantificationError(
            f"logs have incompatible emission stacks: {sorted(shapes)}"
        )
    return np.stack(stacks)
