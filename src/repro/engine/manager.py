"""Multi-session fan-out: one engine serving many concurrent streams.

:class:`SessionManager` drives any number of :class:`ReleaseSession`\\ s
over one shared :class:`~repro.engine.session.EngineCore`, which buys

* the two-world models built once, not per session (the dominant
  per-session start-up cost);
* one :class:`~repro.engine.cache.VerdictCache` of solver verdicts keyed
  on (front digest, emission-column digest, config fingerprint), so any
  session reaching a state another session already checked skips the
  quadratic program entirely -- e.g. a million users all at their first
  timestamps share a handful of verdicts;
* a shared mechanism ladder for Algorithm 2 (the static provider
  memoizes every rescaled budget's emission matrix).

Typical service loop::

    manager = SessionManager(builder)
    manager.open("user-1", rng=1)
    manager.open("user-2", rng=2)
    records = manager.step_all({"user-1": 17, "user-2": 3})
    log = manager.finish("user-1")
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..errors import SessionError
from .cache import CacheStats, VerdictCache
from .config import EngineConfig, SessionBuilder
from .records import ReleaseLog, ReleaseRecord
from .session import (
    EngineCore,
    ReleaseSession,
    SessionState,
    step_sessions_lockstep,
)


class SessionManager:
    """Owns a fleet of sessions sharing models, cache and mechanisms.

    Parameters
    ----------
    config:
        An :class:`EngineConfig` or a :class:`SessionBuilder` (built
        immediately).
    cache_size:
        Capacity of the shared verdict cache; ``0`` disables caching
        (every check hits the solver, as the legacy batch API does).
    """

    def __init__(
        self, config: EngineConfig | SessionBuilder, cache_size: int = 131_072
    ):
        if isinstance(config, SessionBuilder):
            config = config.build_config()
        cache = VerdictCache(cache_size) if cache_size > 0 else None
        self._core = EngineCore(config, cache=cache)
        self._sessions: dict[str, ReleaseSession] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The shared engine configuration."""
        return self._core.config

    @property
    def n_states(self) -> int:
        """Number of map cells ``m`` (valid cells are ``0..m-1``)."""
        return self._core.n_states

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    @property
    def session_ids(self) -> list[str]:
        """Open sessions, in creation order."""
        return list(self._sessions)

    def open(self, session_id: str | None = None, rng=None) -> str:
        """Create a session; returns its id (fresh UUID when omitted)."""
        session = ReleaseSession(self._core, rng=rng, session_id=session_id)
        if session.session_id in self._sessions:
            raise SessionError(f"session {session.session_id!r} already open")
        self._sessions[session.session_id] = session
        return session.session_id

    def session(self, session_id: str) -> ReleaseSession:
        """The live session object (advanced use; prefer the manager API)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"no open session {session_id!r}") from None

    def finish(self, session_id: str) -> ReleaseLog:
        """Seal a session, drop it from the fleet, return its log."""
        return self._sessions.pop(self._require(session_id)).finish()

    def finish_all(self) -> dict[str, ReleaseLog]:
        """Seal every open session; logs keyed by session id."""
        logs = {sid: session.finish() for sid, session in self._sessions.items()}
        self._sessions.clear()
        return logs

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, session_id: str, true_cell: int) -> ReleaseRecord:
        """Release one location for one session."""
        return self._sessions[self._require(session_id)].step(true_cell)

    def validate_step(self, session_id: str, true_cell) -> int:
        """Check one step request without executing it.

        Raises :class:`SessionError` when the session is not open, has
        exhausted its horizon, or the cell is outside the map; returns
        the cell as an int.  Shared by :meth:`step_all`,
        :meth:`step_many` and the service's step batcher so all entry
        points reject a bad request identically.
        """
        session = self._sessions[self._require(session_id)]
        if session.t > session.horizon:
            raise SessionError(
                f"session {session_id!r} exhausted its horizon "
                f"T={session.horizon}"
            )
        cell = int(true_cell)
        if not 0 <= cell < self._core.n_states:
            raise SessionError(
                f"cell {cell} for session {session_id!r} out of range "
                f"[0, {self._core.n_states})"
            )
        return cell

    def step_all(self, true_cells: Mapping[str, int]) -> dict[str, ReleaseRecord]:
        """Release one location for many sessions in one call.

        Sessions are stepped in the mapping's order; the shared verdict
        cache and mechanism ladder turn the fan-out into mostly cache
        hits when sessions are statistically similar.

        The whole batch is validated (ids open, horizons not exceeded,
        cells in range) before any session steps, so a bad entry raises
        without advancing anyone -- the call is safe to retry.
        """
        batch = []
        for sid, cell in true_cells.items():
            cell = self.validate_step(sid, cell)
            batch.append((self._sessions[sid], cell))
        return {
            session.session_id: session.step(cell) for session, cell in batch
        }

    def step_many(self, true_cells: Mapping[str, int]) -> dict[str, ReleaseRecord]:
        """Release one location for many sessions as batched pipelines.

        The batched counterpart of :meth:`step_all`: sessions at the
        same timestamp (the common case -- a fleet driven in lockstep,
        or a service micro-batching concurrent step requests) are
        grouped into one :func:`~repro.engine.session.step_sessions_lockstep`
        call, which propagates all their fronts through the shared
        lifted chain in one stacked matmul and funnels each calibration
        round's Theorem IV.1 checks into one batched solver call.
        Sessions at distinct timestamps form separate groups, so mixed
        fleets still batch within each phase.

        Each session's records and release stream are bit-identical to
        :meth:`step_all`'s (same RNG consumption, same verdicts); see
        :func:`~repro.engine.session.step_sessions_lockstep` for the two
        stream-invisible differences (verdict cache bypass, wall-clock
        UNKNOWNs under ``time_limit_s``).

        The whole batch is validated before any session steps; a bad
        entry raises without advancing anyone.  A mid-flight error rolls
        every session of the failing group back to its committed
        boundary.
        """
        batch = []
        for sid, cell in true_cells.items():
            cell = self.validate_step(sid, cell)
            batch.append((self._sessions[sid], cell))

        groups: dict[int, list[tuple[ReleaseSession, int]]] = {}
        for session, cell in batch:
            groups.setdefault(session.t, []).append((session, cell))
        records: dict[str, ReleaseRecord] = {}
        for members in groups.values():
            sessions = [session for session, _ in members]
            cells = [cell for _, cell in members]
            for session, record in zip(
                sessions, step_sessions_lockstep(sessions, cells)
            ):
                records[session.session_id] = record
        # Return in the caller's order, like step_all.
        return {sid: records[sid] for sid in true_cells}

    def peek_budget(self, session_id: str) -> float:
        """Budget the session's next step would start calibrating from."""
        return self._sessions[self._require(session_id)].peek_budget()

    def released_columns(self, session_ids: Iterable[str] | None = None) -> np.ndarray:
        """Latest released cell per session as one integer vector.

        ``-1`` for sessions that have not stepped yet; a cheap bulk read
        for monitoring dashboards (O(n_sessions), no record copies).
        """
        ids = list(self._sessions) if session_ids is None else list(session_ids)
        out = np.full(len(ids), -1, dtype=np.int64)
        for i, sid in enumerate(ids):
            records = self._sessions[self._require(sid)]._records
            if records:
                out[i] = records[-1].released_cell
        return out

    # ------------------------------------------------------------------
    # suspend / resume
    # ------------------------------------------------------------------
    def checkpoint(self, session_id: str) -> SessionState:
        """Snapshot a session without closing it."""
        return self._sessions[self._require(session_id)].to_state()

    def suspend(self, session_id: str) -> SessionState:
        """Snapshot a session and evict it from the fleet."""
        state = self.checkpoint(session_id)
        del self._sessions[session_id]
        return state

    def resume(self, state: SessionState) -> str:
        """Re-open a suspended session from its state."""
        if state.session_id in self._sessions:
            raise SessionError(f"session {state.session_id!r} already open")
        session = ReleaseSession.from_state(self._core, state)
        self._sessions[session.session_id] = session
        return session.session_id

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def cache_stats(self) -> CacheStats | None:
        """Shared verdict-cache counters (``None`` when disabled)."""
        return None if self._core.cache is None else self._core.cache.stats()

    def _require(self, session_id: str) -> str:
        if session_id not in self._sessions:
            raise SessionError(f"no open session {session_id!r}")
        return session_id
