"""Multi-session fan-out: one engine serving many concurrent streams.

:class:`SessionManager` drives any number of :class:`ReleaseSession`\\ s
over shared :class:`~repro.engine.session.EngineCore`\\ s, which buys

* the two-world models built once per *scenario*, not per session (the
  dominant per-session start-up cost);
* one :class:`~repro.engine.cache.VerdictCache` of solver verdicts per
  scenario, keyed on (front digest, emission-column digest, config
  fingerprint), so any session reaching a state another session already
  checked skips the quadratic program entirely -- e.g. a million users
  all at their first timestamps share a handful of verdicts;
* a shared mechanism ladder for Algorithm 2 (the static provider
  memoizes every rescaled budget's emission matrix).

Multi-tenancy: the manager interns engine cores by *scenario digest*
(see :mod:`repro.scenario`).  Sessions opened with the same
:class:`~repro.scenario.ScenarioSpec` share one core -- models, ladder
and verdict cache; sessions with different digests get disjoint cores
in the same manager, so one fleet can mix maps, mechanisms and privacy
levels.  A manager built from a plain :class:`EngineConfig` is the
degenerate single-core case, unchanged from before scenarios existed.

Typical service loop::

    manager = SessionManager(spec)               # or an EngineConfig
    manager.open("user-1", rng=1)                # the default scenario
    manager.open("user-2", rng=2, scenario=other_spec)
    records = manager.step_all({"user-1": 17, "user-2": 3})
    log = manager.finish("user-1")
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..errors import ScenarioError, SessionError
from .cache import CacheStats, VerdictCache
from .config import EngineConfig, SessionBuilder
from .records import ReleaseLog, ReleaseRecord
from .session import (
    EngineCore,
    ReleaseSession,
    SessionState,
    step_sessions_lockstep,
)


class SessionManager:
    """Owns a fleet of sessions sharing models, caches and mechanisms.

    Parameters
    ----------
    config:
        An :class:`EngineConfig`, a :class:`SessionBuilder` (built
        immediately), or a :class:`~repro.scenario.ScenarioSpec`
        (compiled immediately; its digest keys the default core, so a
        checkpoint carrying the same spec restores onto it).
    cache_size:
        Capacity of each scenario's shared verdict cache; ``0`` disables
        caching (every check hits the solver, as the legacy batch API
        does).
    max_scenarios:
        Interned-core bound: registering a scenario beyond this many
        cores first evicts idle ones (no open sessions, not the
        default), oldest registration first.  An evicted scenario is
        simply recompiled if it returns; cores with open sessions are
        never evicted, so a fleet that genuinely uses more than
        ``max_scenarios`` scenarios at once grows past the bound rather
        than failing.
    """

    def __init__(
        self, config, cache_size: int = 131_072, max_scenarios: int = 64
    ):
        self._cache_size = int(cache_size)
        if int(max_scenarios) < 1:
            raise ScenarioError(
                f"max_scenarios must be >= 1, got {max_scenarios!r}"
            )
        self._max_scenarios = int(max_scenarios)
        # digest -> (EngineCore, ScenarioSpec): one interned core per
        # distinct scenario; sessions sharing a digest share everything.
        self._cores: dict[str, tuple[EngineCore, object]] = {}
        self._sessions: dict[str, ReleaseSession] = {}
        # sid -> scenario digest (None = the default core).
        self._session_digests: dict[str, str | None] = {}
        # Sessions opened with an *explicit* scenario (or resumed from a
        # state carrying one): their checkpoints embed the spec even
        # when its digest happens to equal the manager's default, so the
        # binding survives a restart whose default config differs.
        self._bound: set[str] = set()
        self._default_digest: str | None = None
        if isinstance(config, SessionBuilder):
            config = config.build_config()
        if isinstance(config, EngineConfig):
            self._core = self._new_core(config)
        else:
            self._default_digest = self.register_scenario(config)
            self._core = self._cores[self._default_digest][0]

    def _new_core(self, config: EngineConfig) -> EngineCore:
        cache = VerdictCache(self._cache_size) if self._cache_size > 0 else None
        return EngineCore(config, cache=cache)

    # ------------------------------------------------------------------
    # scenario interning
    # ------------------------------------------------------------------
    def register_scenario(self, spec) -> str:
        """Intern a scenario; returns its digest (compiles at most once).

        ``spec`` is a :class:`~repro.scenario.ScenarioSpec` or its JSON
        dict form.  A digest already interned returns immediately
        without touching the existing core, so re-registration is free
        and never invalidates open sessions.
        """
        from ..scenario.spec import ScenarioSpec

        if isinstance(spec, Mapping):
            spec = ScenarioSpec.from_json(dict(spec))
        if not isinstance(spec, ScenarioSpec):
            raise ScenarioError(
                f"expected a ScenarioSpec or its JSON form, got "
                f"{type(spec).__name__}"
            )
        digest = spec.digest()
        if digest not in self._cores:
            if len(self._cores) >= self._max_scenarios:
                self._evict_idle_cores()
            compiled = spec.compile()
            self._cores[digest] = (self._new_core(compiled.engine_config), spec)
        return digest

    def _evict_idle_cores(self) -> None:
        """Drop interned cores no open session uses (oldest first).

        Bounds the models+cache footprint of a manager fed many distinct
        scenarios over its lifetime (e.g. a server running with
        ``--allow-any-scenario``).  The default core and any core with
        open sessions are untouchable; suspended sessions are safe --
        their checkpoints embed the spec, so a later resume recompiles.
        """
        in_use = set(self._session_digests.values())
        for digest in list(self._cores):
            if len(self._cores) < self._max_scenarios:
                return
            if digest == self._default_digest or digest in in_use:
                continue
            del self._cores[digest]

    def scenario_digests(self) -> list[str]:
        """Digests of every interned scenario (insertion order)."""
        return list(self._cores)

    def scenario_of(self, session_id: str) -> str | None:
        """The session's scenario digest (``None`` = default config)."""
        return self._session_digests[self._require(session_id)]

    def _core_for(self, scenario) -> tuple[EngineCore, str | None]:
        if scenario is None:
            return self._core, self._default_digest
        if isinstance(scenario, str):
            entry = self._cores.get(scenario)
            if entry is None:
                raise ScenarioError(
                    f"scenario digest {scenario!r} is not registered with "
                    "this manager; register_scenario(spec) first"
                )
            return entry[0], scenario
        digest = self.register_scenario(scenario)
        return self._cores[digest][0], digest

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The default engine configuration."""
        return self._core.config

    @property
    def n_states(self) -> int:
        """Default scenario's cell count ``m`` (valid cells ``0..m-1``).

        Per-session values (scenarios may use different maps) come from
        :meth:`n_states_of`.
        """
        return self._core.n_states

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions

    @property
    def session_ids(self) -> list[str]:
        """Open sessions, in creation order."""
        return list(self._sessions)

    def open(
        self, session_id: str | None = None, rng=None, scenario=None
    ) -> str:
        """Create a session; returns its id (fresh UUID when omitted).

        ``scenario`` selects the session's release setting: ``None``
        uses the manager's default configuration, a
        :class:`~repro.scenario.ScenarioSpec` (or its JSON dict) is
        interned by digest, and a digest string refers to an
        already-registered scenario.
        """
        core, digest = self._core_for(scenario)
        session = ReleaseSession(core, rng=rng, session_id=session_id)
        if session.session_id in self._sessions:
            raise SessionError(f"session {session.session_id!r} already open")
        self._sessions[session.session_id] = session
        self._session_digests[session.session_id] = digest
        if scenario is not None:
            self._bound.add(session.session_id)
        return session.session_id

    def session(self, session_id: str) -> ReleaseSession:
        """The live session object (advanced use; prefer the manager API)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise SessionError(f"no open session {session_id!r}") from None

    def horizon_of(self, session_id: str) -> int:
        """The session's release horizon ``T`` (scenarios may differ)."""
        return self._sessions[self._require(session_id)].horizon

    def n_states_of(self, session_id: str) -> int:
        """The session's map size ``m`` (scenarios may differ)."""
        return self._sessions[self._require(session_id)]._core.n_states

    def finish(self, session_id: str) -> ReleaseLog:
        """Seal a session, drop it from the fleet, return its log."""
        log = self._sessions.pop(self._require(session_id)).finish()
        self._session_digests.pop(session_id, None)
        self._bound.discard(session_id)
        return log

    def finish_all(self) -> dict[str, ReleaseLog]:
        """Seal every open session; logs keyed by session id."""
        logs = {sid: session.finish() for sid, session in self._sessions.items()}
        self._sessions.clear()
        self._session_digests.clear()
        self._bound.clear()
        return logs

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self, session_id: str, true_cell: int) -> ReleaseRecord:
        """Release one location for one session."""
        return self._sessions[self._require(session_id)].step(true_cell)

    def validate_step(self, session_id: str, true_cell) -> int:
        """Check one step request without executing it.

        Raises :class:`SessionError` when the session is not open, has
        exhausted its horizon, or the cell is outside the session's own
        map; returns the cell as an int.  Shared by :meth:`step_all`,
        :meth:`step_many` and the service's step batcher so all entry
        points reject a bad request identically.
        """
        session = self._sessions[self._require(session_id)]
        if session.t > session.horizon:
            raise SessionError(
                f"session {session_id!r} exhausted its horizon "
                f"T={session.horizon}"
            )
        cell = int(true_cell)
        n_states = session._core.n_states
        if not 0 <= cell < n_states:
            raise SessionError(
                f"cell {cell} for session {session_id!r} out of range "
                f"[0, {n_states})"
            )
        return cell

    def step_all(self, true_cells: Mapping[str, int]) -> dict[str, ReleaseRecord]:
        """Release one location for many sessions in one call.

        Sessions are stepped in the mapping's order; each scenario's
        shared verdict cache and mechanism ladder turn the fan-out into
        mostly cache hits when its sessions are statistically similar.

        The whole batch is validated (ids open, horizons not exceeded,
        cells in range) before any session steps, so a bad entry raises
        without advancing anyone -- the call is safe to retry.
        """
        batch = []
        for sid, cell in true_cells.items():
            cell = self.validate_step(sid, cell)
            batch.append((self._sessions[sid], cell))
        return {
            session.session_id: session.step(cell) for session, cell in batch
        }

    def step_many(self, true_cells: Mapping[str, int]) -> dict[str, ReleaseRecord]:
        """Release one location for many sessions as batched pipelines.

        The batched counterpart of :meth:`step_all`: sessions sharing a
        scenario core *and* a timestamp (the common case -- a fleet
        driven in lockstep, or a service micro-batching concurrent step
        requests) are grouped into one
        :func:`~repro.engine.session.step_sessions_lockstep` call, which
        propagates all their fronts through the scenario's shared lifted
        chain in one stacked matmul and funnels each calibration round's
        Theorem IV.1 checks into one batched solver call.  Sessions at
        distinct timestamps -- or on different scenarios -- form
        separate groups, so mixed fleets still batch within each
        (scenario, phase) cohort.

        Each session's records and release stream are bit-identical to
        :meth:`step_all`'s (same RNG consumption, same verdicts); see
        :func:`~repro.engine.session.step_sessions_lockstep` for the two
        stream-invisible differences (verdict cache bypass, wall-clock
        UNKNOWNs under ``time_limit_s``).

        The whole batch is validated before any session steps; a bad
        entry raises without advancing anyone.  A mid-flight error rolls
        every session of the failing group back to its committed
        boundary.
        """
        batch = []
        for sid, cell in true_cells.items():
            cell = self.validate_step(sid, cell)
            batch.append((self._sessions[sid], cell))

        groups: dict[tuple[int, int], list[tuple[ReleaseSession, int]]] = {}
        for session, cell in batch:
            groups.setdefault((id(session._core), session.t), []).append(
                (session, cell)
            )
        records: dict[str, ReleaseRecord] = {}
        for members in groups.values():
            sessions = [session for session, _ in members]
            cells = [cell for _, cell in members]
            for session, record in zip(
                sessions, step_sessions_lockstep(sessions, cells)
            ):
                records[session.session_id] = record
        # Return in the caller's order, like step_all.
        return {sid: records[sid] for sid in true_cells}

    def peek_budget(self, session_id: str) -> float:
        """Budget the session's next step would start calibrating from."""
        return self._sessions[self._require(session_id)].peek_budget()

    def released_columns(self, session_ids: Iterable[str] | None = None) -> np.ndarray:
        """Latest released cell per session as one integer vector.

        ``-1`` for sessions that have not stepped yet; a cheap bulk read
        for monitoring dashboards (O(n_sessions), no record copies).
        """
        ids = list(self._sessions) if session_ids is None else list(session_ids)
        out = np.full(len(ids), -1, dtype=np.int64)
        for i, sid in enumerate(ids):
            records = self._sessions[self._require(sid)]._records
            if records:
                out[i] = records[-1].released_cell
        return out

    # ------------------------------------------------------------------
    # suspend / resume
    # ------------------------------------------------------------------
    def _attach_scenario(self, session_id: str, state: SessionState) -> SessionState:
        digest = self._session_digests.get(session_id)
        # Embed the spec for every explicitly-bound session (even one
        # whose digest equals the current default -- a restarted manager
        # may have a *different* default) and for any session on a
        # non-default core.  Sessions opened without a scenario stay
        # unbound and restore onto the restoring manager's default,
        # which is the pre-scenario behaviour.
        if digest is not None and (
            session_id in self._bound or digest != self._default_digest
        ):
            state.scenario = {
                "digest": digest,
                "spec": self._cores[digest][1].to_json(),
            }
        return state

    def checkpoint(self, session_id: str) -> SessionState:
        """Snapshot a session without closing it.

        A session on a non-default scenario embeds its spec and digest
        in the state, so it can be restored by any manager -- including
        a shard worker that has never seen the scenario (it
        re-materializes the models from the embedded spec).  Sessions on
        the default configuration checkpoint without a binding and bind
        to the restoring manager's default, exactly as before scenarios
        existed.
        """
        state = self._sessions[self._require(session_id)].to_state()
        return self._attach_scenario(session_id, state)

    def suspend(self, session_id: str) -> SessionState:
        """Snapshot a session and evict it from the fleet."""
        state = self.checkpoint(session_id)
        del self._sessions[session_id]
        self._session_digests.pop(session_id, None)
        self._bound.discard(session_id)
        return state

    def resume(self, state: SessionState) -> str:
        """Re-open a suspended session from its state.

        A state carrying a scenario binding re-materializes (or reuses,
        when the digest is already interned) the right engine core; the
        recorded digest is verified against the embedded spec, so a
        tampered or mismatched checkpoint fails loudly.
        """
        if state.session_id in self._sessions:
            raise SessionError(f"session {state.session_id!r} already open")
        scenario = getattr(state, "scenario", None)
        if scenario is None:
            core, digest = self._core, self._default_digest
        else:
            from ..scenario.spec import ScenarioSpec

            try:
                spec_json = scenario["spec"]
                recorded = scenario["digest"]
            except (KeyError, TypeError):
                raise SessionError(
                    f"session state {state.session_id!r} has a malformed "
                    "scenario binding (expected {'digest', 'spec'})"
                ) from None
            # Parse (cheap) and verify the recorded digest *before*
            # compiling: a tampered or corrupted checkpoint must not
            # cost -- or permanently intern -- an O(m^2) model build.
            spec = ScenarioSpec.from_json(spec_json)
            if spec.digest() != recorded:
                raise SessionError(
                    f"session state {state.session_id!r} records scenario "
                    f"digest {recorded} but its spec digests to "
                    f"{spec.digest()}; refusing to restore a mismatched "
                    "checkpoint"
                )
            digest = self.register_scenario(spec)
            core = self._cores[digest][0]
        session = ReleaseSession.from_state(core, state)
        self._sessions[session.session_id] = session
        self._session_digests[session.session_id] = digest
        if scenario is not None:
            self._bound.add(session.session_id)
        return session.session_id

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def cache_stats(self) -> CacheStats | None:
        """Verdict-cache counters summed over every scenario core.

        ``None`` when caching is disabled.  The default core and any
        interned cores are all counted (each scenario owns its own
        cache, so the sum is exact, never double-counted).
        """
        caches = []
        if self._default_digest is None and self._core.cache is not None:
            caches.append(self._core.cache)
        caches.extend(
            core.cache
            for core, _ in self._cores.values()
            if core.cache is not None
        )
        if not caches:
            return None
        totals = None
        for cache in caches:
            stats = cache.stats()
            if totals is None:
                totals = stats
            else:
                totals = CacheStats(
                    hits=totals.hits + stats.hits,
                    misses=totals.misses + stats.misses,
                    evictions=totals.evictions + stats.evictions,
                    size=totals.size + stats.size,
                    maxsize=totals.maxsize + stats.maxsize,
                )
        return totals

    def _require(self, session_id: str) -> str:
        if session_id not in self._sessions:
            raise SessionError(f"no open session {session_id!r}")
        return session_id
