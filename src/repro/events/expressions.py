"""Boolean expressions over (location, time) predicates.

Definition II.1: "A spatiotemporal event ... is a set of (location, time)
predicates, i.e. ``u_t = s_i``, under the Boolean operations."  The AST
here is immutable and hashable; evaluation takes a trajectory (sequence of
cells, index 0 = timestamp 1).  ``substitute`` performs the partial
evaluation used by the automaton compiler.

Operators are overloaded so events read like the paper's formulas::

    expr = (at(3, 0) | at(3, 1)) & (at(4, 5))      # (u3=s0 v u3=s1) ^ u4=s5
"""

from __future__ import annotations

import abc
from functools import total_ordering
from typing import Iterable, Mapping, Sequence

from .._validation import check_timestamp
from ..errors import EventError


class Expression(abc.ABC):
    """Base class of the event expression AST.  Immutable and hashable."""

    __slots__ = ()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def predicates(self) -> frozenset["Predicate"]:
        """All atomic predicates appearing in the expression."""

    def timestamps(self) -> tuple[int, ...]:
        """Sorted timestamps mentioned by any predicate."""
        return tuple(sorted({p.t for p in self.predicates()}))

    def time_window(self) -> tuple[int, int]:
        """(start, end) timestamps of the expression."""
        times = self.timestamps()
        if not times:
            raise EventError("expression mentions no timestamps (constant)")
        return times[0], times[-1]

    @abc.abstractmethod
    def _key(self) -> tuple:
        """Canonical structural key (used for hashing and memoization)."""

    def __hash__(self) -> int:
        return hash(self._key())

    def __eq__(self, other) -> bool:
        return isinstance(other, Expression) and self._key() == other._key()

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def evaluate(self, trajectory: Sequence[int]) -> bool:
        """Ground truth on a full trajectory (index 0 = timestamp 1)."""

    @abc.abstractmethod
    def substitute(self, assignment: Mapping[int, int]) -> "Expression":
        """Partially evaluate: fix ``u_t = cell`` for each (t, cell) pair.

        Returns a simplified residual expression; all predicates at an
        assigned timestamp resolve simultaneously (a user is at exactly
        one location per timestamp).
        """

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def __and__(self, other: "Expression") -> "Expression":
        return And.of([self, other])

    def __or__(self, other: "Expression") -> "Expression":
        return Or.of([self, other])

    def __invert__(self) -> "Expression":
        return Not.of(self)


class _Constant(Expression):
    """TRUE or FALSE."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        object.__setattr__(self, "value", bool(value))

    def __setattr__(self, name, value):  # immutability
        raise AttributeError("Expression nodes are immutable")

    def predicates(self) -> frozenset["Predicate"]:
        return frozenset()

    def _key(self) -> tuple:
        return ("const", self.value)

    def evaluate(self, trajectory: Sequence[int]) -> bool:
        return self.value

    def substitute(self, assignment: Mapping[int, int]) -> "Expression":
        return self

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


#: The always-true expression.
TRUE = _Constant(True)
#: The always-false expression (e.g. Fig. 1(a): same-time conjunction).
FALSE = _Constant(False)


@total_ordering
class Predicate(Expression):
    """Atomic predicate ``u_t = cell`` (1-based timestamp, 0-based cell)."""

    __slots__ = ("t", "cell")

    def __init__(self, t: int, cell: int):
        object.__setattr__(self, "t", check_timestamp(t, name="t"))
        if int(cell) != cell or cell < 0:
            raise EventError(f"cell must be a non-negative integer, got {cell!r}")
        object.__setattr__(self, "cell", int(cell))

    def __setattr__(self, name, value):
        raise AttributeError("Expression nodes are immutable")

    def predicates(self) -> frozenset["Predicate"]:
        return frozenset({self})

    def _key(self) -> tuple:
        return ("pred", self.t, self.cell)

    def __lt__(self, other: "Predicate") -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return (self.t, self.cell) < (other.t, other.cell)

    def evaluate(self, trajectory: Sequence[int]) -> bool:
        if self.t > len(trajectory):
            raise EventError(
                f"trajectory has {len(trajectory)} timestamps, predicate needs t={self.t}"
            )
        return int(trajectory[self.t - 1]) == self.cell

    def substitute(self, assignment: Mapping[int, int]) -> Expression:
        if self.t in assignment:
            return TRUE if int(assignment[self.t]) == self.cell else FALSE
        return self

    def __repr__(self) -> str:
        return f"(u{self.t}=s{self.cell})"


class And(Expression):
    """Conjunction of child expressions (flattened, deduplicated)."""

    __slots__ = ("children",)

    def __init__(self, children: tuple[Expression, ...]):
        object.__setattr__(self, "children", children)

    def __setattr__(self, name, value):
        raise AttributeError("Expression nodes are immutable")

    @staticmethod
    def of(children: Iterable[Expression]) -> Expression:
        """Smart constructor: flattens, drops TRUE, short-circuits FALSE."""
        flat: list[Expression] = []
        seen: set = set()
        stack = list(children)
        while stack:
            child = stack.pop(0)
            if not isinstance(child, Expression):
                raise EventError(f"And child is not an Expression: {child!r}")
            if child == TRUE:
                continue
            if child == FALSE:
                return FALSE
            if isinstance(child, And):
                stack = list(child.children) + stack
                continue
            key = child._key()
            if key not in seen:
                seen.add(key)
                flat.append(child)
        if not flat:
            return TRUE
        if len(flat) == 1:
            return flat[0]
        # Contradictory same-time predicates make the conjunction FALSE
        # (Fig. 1(a): a user cannot be at two locations at once).
        by_time: dict[int, int] = {}
        for child in flat:
            if isinstance(child, Predicate):
                if child.t in by_time and by_time[child.t] != child.cell:
                    return FALSE
                by_time[child.t] = child.cell
        flat.sort(key=lambda e: e._key())
        return And(tuple(flat))

    def predicates(self) -> frozenset[Predicate]:
        out: set[Predicate] = set()
        for child in self.children:
            out |= child.predicates()
        return frozenset(out)

    def _key(self) -> tuple:
        return ("and",) + tuple(c._key() for c in self.children)

    def evaluate(self, trajectory: Sequence[int]) -> bool:
        return all(child.evaluate(trajectory) for child in self.children)

    def substitute(self, assignment: Mapping[int, int]) -> Expression:
        return And.of([child.substitute(assignment) for child in self.children])

    def __repr__(self) -> str:
        return "(" + " ^ ".join(repr(c) for c in self.children) + ")"


class Or(Expression):
    """Disjunction of child expressions (flattened, deduplicated)."""

    __slots__ = ("children",)

    def __init__(self, children: tuple[Expression, ...]):
        object.__setattr__(self, "children", children)

    def __setattr__(self, name, value):
        raise AttributeError("Expression nodes are immutable")

    @staticmethod
    def of(children: Iterable[Expression]) -> Expression:
        """Smart constructor: flattens, drops FALSE, short-circuits TRUE."""
        flat: list[Expression] = []
        seen: set = set()
        stack = list(children)
        while stack:
            child = stack.pop(0)
            if not isinstance(child, Expression):
                raise EventError(f"Or child is not an Expression: {child!r}")
            if child == FALSE:
                continue
            if child == TRUE:
                return TRUE
            if isinstance(child, Or):
                stack = list(child.children) + stack
                continue
            key = child._key()
            if key not in seen:
                seen.add(key)
                flat.append(child)
        if not flat:
            return FALSE
        if len(flat) == 1:
            return flat[0]
        flat.sort(key=lambda e: e._key())
        return Or(tuple(flat))

    def predicates(self) -> frozenset[Predicate]:
        out: set[Predicate] = set()
        for child in self.children:
            out |= child.predicates()
        return frozenset(out)

    def _key(self) -> tuple:
        return ("or",) + tuple(c._key() for c in self.children)

    def evaluate(self, trajectory: Sequence[int]) -> bool:
        return any(child.evaluate(trajectory) for child in self.children)

    def substitute(self, assignment: Mapping[int, int]) -> Expression:
        return Or.of([child.substitute(assignment) for child in self.children])

    def __repr__(self) -> str:
        return "(" + " v ".join(repr(c) for c in self.children) + ")"


class Not(Expression):
    """Negation of a child expression."""

    __slots__ = ("child",)

    def __init__(self, child: Expression):
        object.__setattr__(self, "child", child)

    def __setattr__(self, name, value):
        raise AttributeError("Expression nodes are immutable")

    @staticmethod
    def of(child: Expression) -> Expression:
        """Smart constructor: double negation and constants simplify."""
        if not isinstance(child, Expression):
            raise EventError(f"Not child is not an Expression: {child!r}")
        if child == TRUE:
            return FALSE
        if child == FALSE:
            return TRUE
        if isinstance(child, Not):
            return child.child
        return Not(child)

    def predicates(self) -> frozenset[Predicate]:
        return self.child.predicates()

    def _key(self) -> tuple:
        return ("not", self.child._key())

    def evaluate(self, trajectory: Sequence[int]) -> bool:
        return not self.child.evaluate(trajectory)

    def substitute(self, assignment: Mapping[int, int]) -> Expression:
        return Not.of(self.child.substitute(assignment))

    def __repr__(self) -> str:
        return f"~{self.child!r}"


# ----------------------------------------------------------------------
# convenience builders
# ----------------------------------------------------------------------
def at(t: int, cell: int) -> Predicate:
    """The predicate ``u_t = cell``."""
    return Predicate(t, cell)


def in_region(t: int, cells: Iterable[int]) -> Expression:
    """``u_t`` is in a region: the disjunction over the region's cells."""
    return Or.of([Predicate(t, cell) for cell in cells])


def any_of(expressions: Iterable[Expression]) -> Expression:
    """Disjunction of several expressions."""
    return Or.of(list(expressions))


def all_of(expressions: Iterable[Expression]) -> Expression:
    """Conjunction of several expressions."""
    return And.of(list(expressions))
