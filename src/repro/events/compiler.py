"""Compiling arbitrary event expressions into layered automata.

This module generalizes the paper's two-possible-world trick (Section III)
beyond PRESENCE and PATTERN: *any* Boolean expression over
``(location, time)`` predicates compiles into a deterministic layered
automaton whose states are the distinct residual expressions obtained by
partially evaluating the event on location prefixes.  Lifting the Markov
chain by automaton state (see :mod:`repro.core.automaton_engine`) then
computes priors and joints for arbitrary events with the same
linear-in-time structure as Lemma III.1.

PRESENCE and PATTERN compile to automata with at most 2 live states per
layer, recovering the paper's construction exactly (cross-validated in
tests).  Pathological expressions can in principle generate exponentially
many residuals; ``max_states`` guards against that.

Key efficiency point: at each timestamp only the cells mentioned by some
predicate at that timestamp can matter -- all unmentioned cells lead to
the same residual -- so each layer stores one transition per *mentioned*
cell plus a single default.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import EventError
from .expressions import Expression, FALSE, TRUE


@dataclass(frozen=True)
class Layer:
    """Transitions consumed at one timestamp of the event window.

    ``transitions[state][cell]`` is the next-state index for a mentioned
    cell; unmentioned cells go to ``defaults[state]``.
    """

    t: int
    transitions: tuple[dict, ...]
    defaults: tuple[int, ...]
    mentioned_cells: tuple[int, ...]

    def next_state(self, state: int, cell: int) -> int:
        """Next-state index after observing ``u_t = cell``."""
        return self.transitions[state].get(int(cell), self.defaults[state])


class CompiledEvent:
    """A layered DFA equivalent to an event expression.

    States at layer ``k`` are the distinct residual expressions after
    fixing ``u_start .. u_{start+k-1}``.  Layer 0 has the single initial
    state (the original expression); after the final layer every state is
    the constant TRUE or FALSE.

    Attributes
    ----------
    start, end:
        The expression's inclusive 1-based time window.
    layers:
        One :class:`Layer` per timestamp ``start..end``.
    n_states_per_layer:
        State counts (layer 0 .. layer ``length``); the final layer has at
        most 2 states.
    accepting:
        Boolean per final-layer state.
    """

    def __init__(
        self,
        start: int,
        end: int,
        layers: tuple[Layer, ...],
        states_per_layer: tuple[tuple[Expression, ...], ...],
    ):
        self.start = start
        self.end = end
        self.layers = layers
        self._states_per_layer = states_per_layer
        final = states_per_layer[-1]
        for expr in final:
            if expr not in (TRUE, FALSE):
                raise EventError(
                    "internal error: final layer contains unresolved residual"
                )
        self.accepting = tuple(expr == TRUE for expr in final)

    @property
    def length(self) -> int:
        """Number of timestamps consumed by the automaton."""
        return self.end - self.start + 1

    @property
    def n_states_per_layer(self) -> tuple[int, ...]:
        return tuple(len(states) for states in self._states_per_layer)

    @property
    def max_states(self) -> int:
        """Largest layer width (drives the lifted chain's size)."""
        return max(self.n_states_per_layer)

    def residual_at(self, layer: int, state: int) -> Expression:
        """The residual expression identified with a state."""
        return self._states_per_layer[layer][state]

    def run(self, window_cells) -> bool:
        """Evaluate the automaton on the cells of the event window.

        ``window_cells[k]`` is the location at timestamp ``start + k``.
        """
        cells = list(window_cells)
        if len(cells) != self.length:
            raise EventError(
                f"expected {self.length} window cells, got {len(cells)}"
            )
        state = 0
        for layer, cell in zip(self.layers, cells):
            state = layer.next_state(state, cell)
        return self.accepting[state]


def compile_event(expression: Expression, max_states: int = 4096) -> CompiledEvent:
    """Compile an expression into a :class:`CompiledEvent`.

    Parameters
    ----------
    expression:
        Any non-constant expression (constants have no time window and no
        privacy question to ask).
    max_states:
        Abort (raise :class:`EventError`) if any layer exceeds this many
        distinct residuals.
    """
    if expression in (TRUE, FALSE):
        raise EventError("cannot compile a constant expression")
    start, end = expression.time_window()

    # Cells mentioned per timestamp: only these can change the residual.
    mentioned: dict[int, set[int]] = {t: set() for t in range(start, end + 1)}
    for predicate in expression.predicates():
        mentioned[predicate.t].add(predicate.cell)

    current_states: list[Expression] = [expression]
    states_per_layer: list[tuple[Expression, ...]] = [tuple(current_states)]
    layers: list[Layer] = []

    for t in range(start, end + 1):
        cells = tuple(sorted(mentioned[t]))
        # A sentinel cell index distinct from every mentioned cell stands
        # in for "any unmentioned location at time t".
        sentinel = (max(cells) + 1) if cells else 0

        next_index: dict[tuple, int] = {}
        next_states: list[Expression] = []

        def intern(residual: Expression) -> int:
            key = residual._key()
            if key not in next_index:
                next_index[key] = len(next_states)
                next_states.append(residual)
            return next_index[key]

        transitions: list[dict] = []
        defaults: list[int] = []
        for state_expr in current_states:
            table: dict[int, int] = {}
            for cell in cells:
                table[cell] = intern(state_expr.substitute({t: cell}))
            defaults.append(intern(state_expr.substitute({t: sentinel})))
            transitions.append(table)
        if len(next_states) > max_states:
            raise EventError(
                f"event automaton exceeded max_states={max_states} at t={t}; "
                "the expression is too entangled for exact compilation"
            )
        layers.append(
            Layer(
                t=t,
                transitions=tuple(transitions),
                defaults=tuple(defaults),
                mentioned_cells=cells,
            )
        )
        current_states = next_states
        states_per_layer.append(tuple(current_states))

    return CompiledEvent(
        start=start,
        end=end,
        layers=tuple(layers),
        states_per_layer=tuple(states_per_layer),
    )
