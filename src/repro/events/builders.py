"""High-level event builders.

The paper's Definitions II.2/II.3 assume consecutive windows "for
simplicity" but note that "PRESENCE and PATTERN include the cases when
the time T is not consecutive".  These builders construct such richer
secrets directly as expressions; the automaton engine
(:class:`repro.core.AutomatonModel`) evaluates them, and events that
happen to be plain PRESENCE/PATTERN can still go through the faster
two-world engine.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .._validation import check_timestamp
from ..errors import EventError
from ..geo.regions import Region
from .expressions import Expression, all_of, any_of, in_region


def _region_cells(region: Region | Iterable[int]) -> tuple[int, ...]:
    if isinstance(region, Region):
        if region.is_empty:
            raise EventError("region must be non-empty")
        return region.cells
    cells = tuple(int(c) for c in region)
    if not cells:
        raise EventError("region must be non-empty")
    return cells


def visited(region: Region | Iterable[int], times: Sequence[int]) -> Expression:
    """PRESENCE over an arbitrary (possibly non-consecutive) set of times.

    ``visited(hospital, [3, 4, 9])`` is true iff the user is in the
    region at timestamp 3, 4 *or* 9.
    """
    cells = _region_cells(region)
    timestamps = sorted({check_timestamp(t, name="time") for t in times})
    if not timestamps:
        raise EventError("'times' must be non-empty")
    return any_of(in_region(t, cells) for t in timestamps)


def stayed(region: Region | Iterable[int], times: Sequence[int]) -> Expression:
    """In the region at *every* listed timestamp (a dwell secret)."""
    cells = _region_cells(region)
    timestamps = sorted({check_timestamp(t, name="time") for t in times})
    if not timestamps:
        raise EventError("'times' must be non-empty")
    return all_of(in_region(t, cells) for t in timestamps)


def avoided(region: Region | Iterable[int], times: Sequence[int]) -> Expression:
    """Never in the region during the listed timestamps."""
    return ~visited(region, times)


def followed_route(
    regions: Sequence[Region | Iterable[int]], times: Sequence[int]
) -> Expression:
    """PATTERN over explicit (possibly non-consecutive) timestamps.

    ``followed_route([home, office], [2, 7])`` is true iff the user is
    in the home block at t=2 and the office block at t=7, whatever
    happens in between.
    """
    if len(regions) != len(times):
        raise EventError(
            f"{len(regions)} regions but {len(times)} timestamps"
        )
    if not regions:
        raise EventError("route must be non-empty")
    timestamps = [check_timestamp(t, name="time") for t in times]
    if sorted(timestamps) != timestamps or len(set(timestamps)) != len(timestamps):
        raise EventError("route timestamps must be strictly increasing")
    return all_of(
        in_region(t, _region_cells(region)) for region, t in zip(regions, timestamps)
    )


def commuted_between(
    place_a: Region | Iterable[int],
    place_b: Region | Iterable[int],
    morning: Sequence[int],
    afternoon: Sequence[int],
) -> Expression:
    """The paper's flagship secret: regular commuting between two places.

    True iff the user is at ``place_a`` at some morning time, at
    ``place_b`` at some afternoon time -- "regularly commuting between
    Address 1 and Address 2 every morning and afternoon".
    """
    return visited(place_a, morning) & visited(place_b, afternoon)


def visited_exactly_one(
    region_a: Region | Iterable[int],
    region_b: Region | Iterable[int],
    times: Sequence[int],
) -> Expression:
    """Exactly one of two places visited in the window (an XOR secret)."""
    a = visited(region_a, times)
    b = visited(region_b, times)
    return (a & ~b) | (~a & b)


def recurring_presence(
    region: Region | Iterable[int],
    first: int,
    period: int,
    occurrences: int,
) -> Expression:
    """Presence at every ``first + k*period`` for ``k < occurrences``.

    A periodic secret, e.g. "at the clinic every Monday morning": true
    iff the user is in the region at *each* of the periodic timestamps.
    """
    check_timestamp(first, name="first")
    if period < 1 or occurrences < 1:
        raise EventError("period and occurrences must be >= 1")
    times = [first + k * period for k in range(occurrences)]
    return stayed(region, times)
