"""Spatiotemporal event formalism (Definitions II.1 - II.3).

An event is a Boolean expression over ``(location, time)`` predicates
``u_t = s_i``.  This package provides:

* the expression AST (:class:`Predicate`, :class:`And`, :class:`Or`,
  :class:`Not`) with ground-truth evaluation on trajectories,
* the paper's two canonical event families :class:`PresenceEvent` and
  :class:`PatternEvent`,
* a compiler from *arbitrary* expressions to layered automata
  (:func:`compile_event`), generalizing the paper's two-world method.
"""

from .builders import (
    avoided,
    commuted_between,
    followed_route,
    recurring_presence,
    stayed,
    visited,
    visited_exactly_one,
)
from .compiler import CompiledEvent, compile_event
from .events import PatternEvent, PresenceEvent, SpatiotemporalEvent
from .expressions import (
    And,
    Expression,
    FALSE,
    Not,
    Or,
    Predicate,
    TRUE,
    all_of,
    any_of,
    at,
    in_region,
)

__all__ = [
    "Expression",
    "Predicate",
    "And",
    "Or",
    "Not",
    "TRUE",
    "FALSE",
    "at",
    "in_region",
    "any_of",
    "all_of",
    "SpatiotemporalEvent",
    "PresenceEvent",
    "PatternEvent",
    "CompiledEvent",
    "compile_event",
    "visited",
    "stayed",
    "avoided",
    "followed_route",
    "commuted_between",
    "visited_exactly_one",
    "recurring_presence",
]
