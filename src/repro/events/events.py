"""PRESENCE and PATTERN events (Definitions II.2 and II.3).

These are the two canonical event families the paper's engine supports
directly: PRESENCE generalizes "single sensitive location", PATTERN
generalizes "sensitive trajectory".  Both expose:

* ``to_expression()`` -- the equivalent Boolean expression, used by the
  naive baselines and the generic automaton engine,
* ``ground_truth(trajectory)`` -- whether a concrete trajectory makes the
  event true,
* ``start`` / ``end`` / ``length`` / ``width`` -- the window geometry used
  by the two-world construction and the runtime experiments (Fig. 14).
"""

from __future__ import annotations

import abc
from typing import Sequence

from .._validation import check_timestamp
from ..errors import EventError
from ..geo.regions import Region
from .expressions import Expression, all_of, in_region


class SpatiotemporalEvent(abc.ABC):
    """Common interface of PRESENCE and PATTERN events."""

    @property
    @abc.abstractmethod
    def n_cells(self) -> int:
        """Size ``m`` of the map the event lives on."""

    @property
    @abc.abstractmethod
    def start(self) -> int:
        """First timestamp of the event window (1-based, inclusive)."""

    @property
    @abc.abstractmethod
    def end(self) -> int:
        """Last timestamp of the event window (1-based, inclusive)."""

    @abc.abstractmethod
    def region_at(self, t: int) -> Region:
        """The sensitive region in force at window timestamp ``t``."""

    @abc.abstractmethod
    def to_expression(self) -> Expression:
        """The equivalent Boolean expression over predicates."""

    @property
    def length(self) -> int:
        """The paper's *event length*: number of timestamps in the window."""
        return self.end - self.start + 1

    @property
    def window(self) -> tuple[int, int]:
        """(start, end) of the event."""
        return self.start, self.end

    def ground_truth(self, trajectory: Sequence[int]) -> bool:
        """Whether the event is true on a concrete trajectory."""
        if len(trajectory) < self.end:
            raise EventError(
                f"trajectory has {len(trajectory)} timestamps, event ends at "
                f"t={self.end}"
            )
        return self.to_expression().evaluate(trajectory)


class PresenceEvent(SpatiotemporalEvent):
    """PRESENCE(S, T): the user appears in ``region`` at any t in [start, end].

    Definition II.2.  Expression form:
    ``OR over t in window, OR over cells in region of (u_t = cell)``.

    Parameters
    ----------
    region:
        The sensitive area (non-empty).
    start, end:
        Inclusive 1-based window.  The paper "assume[s] that the events are
        defined in consecutive time"; non-consecutive windows can be
        expressed with the raw expression AST and the automaton engine.
    """

    def __init__(self, region: Region, start: int, end: int):
        if region.is_empty:
            raise EventError("PRESENCE region must be non-empty")
        start = check_timestamp(start, name="start")
        end = check_timestamp(end, name="end")
        if end < start:
            raise EventError(f"end={end} precedes start={start}")
        if region.width == region.n_cells:
            raise EventError(
                "PRESENCE region covers the whole map: the event is always true "
                "and its negation has zero probability"
            )
        self._region = region
        self._start = start
        self._end = end

    @property
    def n_cells(self) -> int:
        return self._region.n_cells

    @property
    def start(self) -> int:
        return self._start

    @property
    def end(self) -> int:
        return self._end

    @property
    def region(self) -> Region:
        """The sensitive region (constant over the window)."""
        return self._region

    @property
    def width(self) -> int:
        """Number of cells in the region (the paper's *event width*)."""
        return self._region.width

    def region_at(self, t: int) -> Region:
        t = check_timestamp(t, name="t")
        if not self._start <= t <= self._end:
            raise EventError(f"t={t} outside event window [{self._start}, {self._end}]")
        return self._region

    def to_expression(self) -> Expression:
        from .expressions import any_of

        return any_of(
            in_region(t, self._region.cells)
            for t in range(self._start, self._end + 1)
        )

    def __repr__(self) -> str:
        return (
            f"PRESENCE(cells={list(self._region.cells)}, "
            f"T={{{self._start}:{self._end}}})"
        )


class PatternEvent(SpatiotemporalEvent):
    """PATTERN(S, T): the user passes through ``regions`` sequentially.

    Definition II.3.  ``regions[k]`` is the sensitive region at timestamp
    ``start + k``; the event is true iff the user is inside *every*
    region at its timestamp.  Expression form:
    ``AND over k of (OR over cells in regions[k] of (u_{start+k} = cell))``.
    """

    def __init__(self, regions: Sequence[Region], start: int):
        if not regions:
            raise EventError("PATTERN needs at least one region")
        sizes = {region.n_cells for region in regions}
        if len(sizes) != 1:
            raise EventError(f"PATTERN regions live on different maps: {sorted(sizes)}")
        for k, region in enumerate(regions):
            if region.is_empty:
                raise EventError(f"PATTERN region {k} is empty: event is always false")
        if all(region.width == region.n_cells for region in regions):
            raise EventError(
                "every PATTERN region covers the whole map: the event is always "
                "true and its negation has zero probability"
            )
        self._regions = tuple(regions)
        self._start = check_timestamp(start, name="start")

    @property
    def n_cells(self) -> int:
        return self._regions[0].n_cells

    @property
    def start(self) -> int:
        return self._start

    @property
    def end(self) -> int:
        return self._start + len(self._regions) - 1

    @property
    def regions(self) -> tuple[Region, ...]:
        """Per-timestamp regions, index 0 = timestamp ``start``."""
        return self._regions

    @property
    def width(self) -> int:
        """Maximum region size (the paper's *event width* knob)."""
        return max(region.width for region in self._regions)

    def region_at(self, t: int) -> Region:
        t = check_timestamp(t, name="t")
        if not self._start <= t <= self.end:
            raise EventError(f"t={t} outside event window [{self._start}, {self.end}]")
        return self._regions[t - self._start]

    def to_expression(self) -> Expression:
        return all_of(
            in_region(self._start + k, region.cells)
            for k, region in enumerate(self._regions)
        )

    def __repr__(self) -> str:
        cells = [list(region.cells) for region in self._regions]
        return f"PATTERN(regions={cells}, start={self._start})"
