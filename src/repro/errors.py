"""Exception hierarchy for the PriSTE reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can distinguish library failures from programming mistakes with a
single ``except`` clause.  Subclasses are grouped by subsystem; the names
mirror the packages that raise them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An input failed structural validation (shape, range, stochasticity)."""


class GridError(ReproError, ValueError):
    """An operation on a :class:`repro.geo.GridMap` received bad indices."""


class RegionError(ReproError, ValueError):
    """A :class:`repro.geo.Region` was constructed or combined incorrectly."""


class MarkovError(ReproError, ValueError):
    """A Markov-model operation failed (non-stochastic matrix, bad fit)."""


class DatasetError(ReproError, ValueError):
    """Trace loading, simulation or discretization failed."""


class MechanismError(ReproError, ValueError):
    """An LPPM was configured or queried inconsistently."""


class UnknownMechanismError(MechanismError):
    """A mechanism name failed to resolve in the LPPM registry.

    Raised by :func:`repro.lppm.resolve_mechanism` when a name (or
    alias) is not registered -- a typed miss instead of a silent
    ``getattr``-style fallback, so a scenario referencing a mistyped
    mechanism fails loudly at spec-compile time.
    """


class EventError(ReproError, ValueError):
    """A spatiotemporal event definition is malformed."""


class QuantificationError(ReproError, ValueError):
    """Privacy quantification hit a degenerate case.

    The canonical example is a prior probability of zero for the event or
    its negation, which makes the likelihood ratio of Definition II.4
    undefined.
    """


class DegeneratePriorError(QuantificationError):
    """``Pr(EVENT)`` or ``Pr(not EVENT)`` is zero for the supplied prior."""


class SolverError(ReproError, RuntimeError):
    """The quadratic-programming solver failed to produce a usable answer."""


class CalibrationError(ReproError, RuntimeError):
    """PriSTE budget calibration could not find a releasable output."""


class SessionError(ReproError, RuntimeError):
    """A streaming release session was configured or driven incorrectly.

    Raised by :mod:`repro.engine` for lifecycle misuse: stepping past the
    horizon or after ``finish()``, building a session from an incomplete
    :class:`~repro.engine.SessionBuilder`, or restoring a corrupt
    checkpoint.
    """


class CheckpointVersionError(SessionError):
    """A session checkpoint uses a schema newer than this build knows.

    Raised when restoring a :class:`~repro.engine.SessionState` whose
    ``schema`` field exceeds the library's
    :data:`~repro.engine.session.STATE_SCHEMA_VERSION` -- a typed,
    immediate rejection instead of a ``KeyError`` deep in the engine.
    """


class ScenarioError(ReproError, ValueError):
    """A declarative :class:`~repro.scenario.ScenarioSpec` is invalid.

    Raised by :mod:`repro.scenario` for malformed spec JSON, parameters
    that cannot compile into an :class:`~repro.engine.EngineConfig`, or
    a scenario rejected by a server's allowlist.
    """


class ServiceError(ReproError, RuntimeError):
    """The network serving layer (:mod:`repro.service`) failed.

    Base class for faults that belong to the service itself rather than
    to the engine it fronts: transport problems, store corruption, a
    server that went away mid-request.
    """


class ServiceBusyError(ServiceError):
    """Admission control rejected a request (capacity reached).

    The canonical backpressure signal: opening a session beyond the
    server's ``max_sessions`` cap gets this as a typed reply instead of
    a hang, so clients can retry elsewhere or later.
    """


class OverloadedError(ServiceBusyError):
    """Load shedding rejected a request before execution (retryable).

    Raised by the server's admission layer when a request's deadline is
    already blown by queueing, or when sustained queue delay trips the
    CoDel-style shedder.  The session's state is untouched -- the shed
    happens strictly *before* execution -- so a client that retries
    after ``retry_after_ms`` observes the same bit-identical stream it
    would have seen without the shed.
    """

    def __init__(self, message: str, retry_after_ms: int | None = None):
        super().__init__(message)
        #: Server's backoff hint in milliseconds (``None`` when unknown).
        self.retry_after_ms = retry_after_ms


class ShardDownError(ServiceError):
    """A shard worker process died; its sessions are unreachable.

    Raised by the sharded execution backend (:mod:`repro.engine.shard`)
    when the process owning a session's shard has exited, hung past its
    RPC deadline, or its RPC channel broke.  Sessions routed to a dead
    shard keep raising this typed error instead of silently
    disappearing; sessions on other shards are unaffected.
    """


class WorkerDownError(ShardDownError):
    """A remote cluster worker is unreachable; its sessions are lost.

    The multi-host counterpart of :class:`ShardDownError`, raised by
    :class:`~repro.cluster.ClusterBackend` when a TCP worker's channel
    broke, its heartbeat lapsed, or an RPC exceeded its deadline.
    Sessions assigned to the dead worker keep raising this typed error;
    sessions on other workers -- and new opens, which re-route around
    the hole in the ring -- are unaffected.
    """


class ProtocolError(ServiceError, ValueError):
    """A service frame was malformed or used an unsupported version."""


class FrameTooLargeError(ProtocolError):
    """A length-prefixed RPC frame exceeds the transport's size bound.

    Raised on *both* sides of the shard/cluster RPC channels
    (:mod:`repro.cluster.frames`): before sending a frame that would
    exceed the limit (the channel stays usable) and on receiving a
    length header that announces one (the channel cannot be re-synced
    and is closed).  A corrupt or hostile length header therefore
    surfaces as a typed error instead of wedging or OOM-ing a worker.
    """
