"""PriSTE: from location privacy to spatiotemporal event privacy.

A from-scratch reproduction of Cao, Xiao, Xiong & Bai, *PriSTE: From
Location Privacy to Spatiotemporal Event Privacy* (ICDE 2019), grown
into a streaming release engine.

Batch quickstart::

    import numpy as np
    from repro import (
        GridMap, Region, PresenceEvent, PlanarLaplaceMechanism,
        PriSTE, PriSTEConfig, gaussian_kernel_transitions, sample_trajectory,
    )

    grid = GridMap(20, 20, cell_size_km=1.0)
    chain = gaussian_kernel_transitions(grid, sigma=1.0)
    event = PresenceEvent(Region.from_range(grid.n_cells, 0, 9), start=4, end=8)
    lppm = PlanarLaplaceMechanism(grid, alpha=0.2)
    priste = PriSTE(chain, event, lppm, PriSTEConfig(epsilon=0.5), horizon=50)

    pi = np.full(grid.n_cells, 1.0 / grid.n_cells)
    truth = sample_trajectory(chain, 50, initial=pi, rng=0)
    log = priste.run(truth, rng=0)
    print(log.average_budget, log.euclidean_error_km(grid, truth))

Streaming quickstart (the online form of Algorithm 1; see
:mod:`repro.engine`)::

    from repro import SessionBuilder

    session = (
        SessionBuilder()
        .with_grid(grid).with_chain(chain).protecting(event)
        .with_mechanism(lppm).with_epsilon(0.5).with_horizon(50)
        .build(rng=0)
    )
    for cell in truth:
        record = session.step(cell)   # one release per location fix
    log = session.finish()            # the same ReleaseLog as above

The README documents the full surface, including ``SessionManager``
fan-out, checkpoint/restore and the ``repro stream`` CLI.
"""

from .attacks import (
    EventInferenceAttack,
    location_posteriors,
    viterbi_map_trajectory,
)
from .core.automaton_engine import AutomatonModel
from .core.event_pair import EventPairAnalyzer
from .core.joint import EventQuantifier
from .core.priste import (
    PriSTE,
    PriSTEConfig,
    PriSTEDeltaLocationSet,
    ReleaseLog,
    ReleaseRecord,
)
from .core.qp import SolveResult, SolverOptions, SolverStatus
from .core.quantify import (
    PrivacyCheck,
    QuantificationResult,
    quantify_fixed_prior,
    verify_event_privacy,
)
from .core.theorem import RankOneCondition, privacy_conditions
from .core.two_world import TwoWorldModel
from .engine import (
    BinarySearchCalibration,
    BudgetHalving,
    CalibrationStrategy,
    EngineConfig,
    LinearDecay,
    ReleaseSession,
    SessionBuilder,
    SessionManager,
    SessionState,
    VerdictCache,
    stack_release_logs,
)
from .errors import ReproError
from .events import (
    PatternEvent,
    PresenceEvent,
    SpatiotemporalEvent,
    compile_event,
)
from .geo import GridMap, Region
from .io import load_json, save_json
from .lppm import (
    CloakingMechanism,
    DeltaLocationSetMechanism,
    ExponentialMechanism,
    PlanarLaplaceMechanism,
    RandomizedResponseMechanism,
    UniformMechanism,
)
from .markov import (
    TimeVaryingChain,
    TransitionMatrix,
    fit_initial_distribution,
    fit_transition_matrix,
    gaussian_kernel_transitions,
    sample_trajectory,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "ReproError",
    # geo
    "GridMap",
    "Region",
    # markov
    "TransitionMatrix",
    "TimeVaryingChain",
    "gaussian_kernel_transitions",
    "fit_transition_matrix",
    "fit_initial_distribution",
    "sample_trajectory",
    # events
    "SpatiotemporalEvent",
    "PresenceEvent",
    "PatternEvent",
    "compile_event",
    # lppm
    "PlanarLaplaceMechanism",
    "DeltaLocationSetMechanism",
    "UniformMechanism",
    "RandomizedResponseMechanism",
    "ExponentialMechanism",
    "CloakingMechanism",
    # attacks
    "EventInferenceAttack",
    "location_posteriors",
    "viterbi_map_trajectory",
    # io
    "save_json",
    "load_json",
    # core
    "TwoWorldModel",
    "AutomatonModel",
    "EventPairAnalyzer",
    "EventQuantifier",
    "RankOneCondition",
    "privacy_conditions",
    "SolverOptions",
    "SolverStatus",
    "SolveResult",
    "quantify_fixed_prior",
    "verify_event_privacy",
    "QuantificationResult",
    "PrivacyCheck",
    "PriSTE",
    "PriSTEConfig",
    "PriSTEDeltaLocationSet",
    "ReleaseLog",
    "ReleaseRecord",
    # engine (streaming sessions)
    "BinarySearchCalibration",
    "BudgetHalving",
    "CalibrationStrategy",
    "EngineConfig",
    "LinearDecay",
    "ReleaseSession",
    "SessionBuilder",
    "SessionManager",
    "SessionState",
    "VerdictCache",
    "stack_release_logs",
]
