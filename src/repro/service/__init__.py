"""Concurrent network serving layer over the streaming session engine.

The paper's release loop is an online, per-user service; this package is
the layer that exposes it to many concurrent clients.  The stack, top to
bottom::

    CLI (`repro serve`)            -- flags -> engine config + server knobs
      -> repro.service             -- this package: the network layer
           protocol.py            -- versioned JSONL frames + typed errors
           server.py              -- asyncio TCP server: admission control,
                                     per-connection backpressure, graceful
                                     drain on SIGINT/SIGTERM
           executor.py            -- worker-pool offload of the CPU-bound
                                     calibrate-and-check step, with strict
                                     per-session ordering; opt-in
                                     micro-batching (--batch-window-ms)
                                     coalescing concurrent steps onto the
                                     backend's batched step pipeline
           store.py               -- pluggable SessionStore (memory / JSON
                                     directory / SQLite): idle sessions are
                                     evicted via the engine's JSON
                                     checkpoint and restored on demand, so
                                     open-session count is decoupled from
                                     resident memory
           metrics.py             -- counters + latency histograms behind
                                     the `stats` op; mergeable dumps so
                                     per-shard metrics aggregate
           client.py              -- async + sync clients
      -> repro.engine.backend      -- ExecutionBackend: where fleet work
                                     runs.  InProcessBackend (one
                                     SessionManager, this process),
                                     ShardPool (`--shards N`: N worker
                                     processes, each owning a full
                                     manager, deterministic session->
                                     shard routing, typed bounded-frame
                                     RPC, batched one-message-per-shard
                                     dispatch, typed `shard_down` crash
                                     containment), or ClusterBackend
                                     (`--backend tcp://w1:9001,...`:
                                     `repro worker` processes on any
                                     machines, consistent-hash
                                     placement, live migration via the
                                     `migrate` op -- repro.cluster)
      -> repro.engine              -- SessionManager fan-out, ReleaseSession,
                                     shared VerdictCache + mechanism ladder
      -> repro.core                -- two-world models, Theorem IV.1, QP

    (stdlib only: asyncio, sqlite3, threading, multiprocessing -- no new
    dependencies.)

Many connections multiplex onto one shared execution backend; different
sessions step in parallel (worker threads in-process, shard processes
with ``--shards``) while each individual session's steps stay strictly
ordered, so a server-mediated release stream is bit-identical to
driving the manager directly under the same seeds -- at any shard
count.  Threads scale until one process saturates a couple of cores on
the GIL's bookkeeping; shards scale with the machine because every
shard owns its engine outright and the serving layer only routes; the
cluster backend scales past the machine with the same routing contract
(and sessions survive worker drains via live migration).
"""

from ..engine.backend import ExecutionBackend, InProcessBackend, as_backend
from ..engine.shard import ShardPool, shard_for
from .client import AsyncServiceClient, RetryPolicy, ServiceClient
from .executor import SessionExecutor, StepBatcher, default_workers
from .metrics import LatencyHistogram, ServiceMetrics
from .shedding import LoadShedder, ShedConfig
from .protocol import (
    PROTOCOL_VERSION,
    Request,
    decode_frame,
    encode_frame,
    error_code_for,
    error_frame,
    exception_for,
    ok_frame,
    parse_reply,
    parse_request,
)
from .server import ReleaseServer, ServerConfig
from .store import (
    DirectorySessionStore,
    MemorySessionStore,
    SessionStore,
    SQLiteSessionStore,
    resolve_store,
)

__all__ = [
    "AsyncServiceClient",
    "DirectorySessionStore",
    "ExecutionBackend",
    "InProcessBackend",
    "LatencyHistogram",
    "LoadShedder",
    "MemorySessionStore",
    "PROTOCOL_VERSION",
    "ReleaseServer",
    "Request",
    "RetryPolicy",
    "SQLiteSessionStore",
    "ServerConfig",
    "ServiceClient",
    "ServiceMetrics",
    "SessionExecutor",
    "SessionStore",
    "ShardPool",
    "ShedConfig",
    "StepBatcher",
    "as_backend",
    "decode_frame",
    "default_workers",
    "encode_frame",
    "error_code_for",
    "error_frame",
    "exception_for",
    "ok_frame",
    "parse_reply",
    "parse_request",
    "resolve_store",
    "shard_for",
]
