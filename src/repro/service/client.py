"""Clients for the serving layer: asyncio-native and plain-socket sync.

:class:`AsyncServiceClient` pipelines: many coroutines may issue
requests on one connection concurrently; a background reader matches
replies to futures by correlation id.  :class:`ServiceClient` is the
blocking counterpart for scripts and shells -- one request in flight at
a time, replies therefore in order.

Both raise the server's *typed* exceptions: an admission rejection
arrives as :class:`~repro.errors.ServiceBusyError`, lifecycle misuse as
:class:`~repro.errors.SessionError`, and so on (see
:mod:`repro.service.protocol`).

Load shedding: a server past its queue-delay target answers with the
retryable ``overloaded`` code carrying a ``retry_after_ms`` hint.  Pass
a :class:`RetryPolicy` to either client and its ``request`` loop waits
out the hint (or its own backoff when the server gave none) and
re-sends -- safe by construction, because shed requests are rejected
strictly before execution, so a retry can never double-apply a step.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from dataclasses import dataclass, replace

from ..errors import OverloadedError, ServiceError
from .protocol import MAX_FRAME_BYTES, Request, parse_reply


@dataclass(frozen=True)
class RetryPolicy:
    """How a client waits out ``overloaded`` rejections.

    The server's ``retry_after_ms`` hint (sized to its current drain
    time) is authoritative when present; otherwise exponential backoff
    from ``base_wait_s`` applies.  Either way the wait is capped at
    ``max_wait_s``, and after ``max_retries`` failed attempts the
    :class:`~repro.errors.OverloadedError` propagates to the caller.
    """

    max_retries: int = 4
    base_wait_s: float = 0.05
    backoff: float = 2.0
    max_wait_s: float = 10.0

    def wait_s(self, attempt: int, retry_after_ms: int | None) -> float:
        """Seconds to wait before retry number ``attempt`` (0-based)."""
        if retry_after_ms is not None:
            return min(self.max_wait_s, retry_after_ms / 1e3)
        return min(self.max_wait_s, self.base_wait_s * self.backoff**attempt)

_ENVELOPE_KEYS = ("v", "id", "ok", "op")


def _payload(frame: dict) -> dict:
    """A reply frame minus the protocol envelope."""
    return {k: v for k, v in frame.items() if k not in _ENVELOPE_KEYS}


def _scenario_json(scenario) -> dict | None:
    """A spec (or its JSON dict) as the wire-ready ``scenario`` field."""
    if scenario is None or isinstance(scenario, dict):
        return scenario
    return scenario.to_json()


class AsyncServiceClient:
    """Pipelined asyncio client for one server connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        retry: RetryPolicy | None = None,
    ):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._pending: dict[object, asyncio.Future] = {}
        self._write_lock = asyncio.Lock()
        self._retry = retry
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str, port: int, retry: RetryPolicy | None = None
    ) -> "AsyncServiceClient":
        """Open a connection and start the reply reader."""
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES
        )
        return cls(reader, writer, retry=retry)

    async def _read_loop(self) -> None:
        error: BaseException = ServiceError("connection closed by server")
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                frame: dict | None = None
                failure: BaseException | None = None
                try:
                    frame = parse_reply(line)
                except Exception as exc:  # typed server error or protocol
                    failure = exc
                request_id = (
                    frame.get("id")
                    if frame is not None
                    else getattr(failure, "request_id", None)
                )
                future = self._pending.pop(request_id, None)
                if future is None or future.done():
                    continue
                if failure is not None:
                    future.set_exception(failure)
                else:
                    future.set_result(frame)
        except (ConnectionError, asyncio.CancelledError) as exc:
            error = exc if isinstance(exc, ConnectionError) else error
        finally:
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(ServiceError(str(error)))
            self._pending.clear()

    async def request(self, request: Request) -> dict:
        """Send one frame and await its matched reply payload.

        With a :class:`RetryPolicy`, ``overloaded`` rejections are
        waited out (honoring the server's ``retry_after_ms`` hint) and
        the request re-sent under a fresh correlation id.
        """
        attempt = 0
        while True:
            try:
                return await self._request_once(request)
            except OverloadedError as error:
                if self._retry is None or attempt >= self._retry.max_retries:
                    raise
                await asyncio.sleep(
                    self._retry.wait_s(attempt, error.retry_after_ms)
                )
                attempt += 1
                request = replace(request, request_id=None)

    async def _request_once(self, request: Request) -> dict:
        if request.request_id is None:
            request = replace(request, request_id=next(self._ids))
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request.request_id] = future
        async with self._write_lock:
            self._writer.write(request.to_frame())
            await self._writer.drain()
        return _payload(await future)

    # -- convenience ops -------------------------------------------------
    async def open(
        self,
        session: str | None = None,
        seed: int | None = None,
        scenario=None,
    ) -> str:
        """Open a session; returns its id.

        ``scenario`` is an optional :class:`~repro.scenario.ScenarioSpec`
        (or its JSON dict) sent inline; the server admits it against its
        allowlist.
        """
        reply = await self.request(
            Request(
                op="open", session=session, seed=seed, scenario=_scenario_json(scenario)
            )
        )
        return reply["session"]

    async def step(
        self, session: str, cell: int, deadline_ms: int | None = None
    ) -> dict:
        """Release one location; returns the release record.

        ``deadline_ms`` is the request's total latency budget: the
        server sheds it (retryably) instead of executing once the
        queue wait alone has blown the budget.
        """
        return await self.request(
            Request(op="step", session=session, cell=cell, deadline_ms=deadline_ms)
        )

    async def peek_budget(self, session: str) -> float:
        """The budget the session's next step starts calibrating from."""
        reply = await self.request(Request(op="peek_budget", session=session))
        return float(reply["budget"])

    async def finish(self, session: str) -> dict:
        """Seal a session; returns its summary."""
        return await self.request(Request(op="finish", session=session))

    async def checkpoint(self, session: str) -> dict:
        """Snapshot a session server-side; returns {session, t, state}."""
        return await self.request(Request(op="checkpoint", session=session))

    async def stats(self, spans: int = 0) -> dict:
        """Server metrics snapshot (``spans`` > 0 adds recent trace spans)."""
        extra = {"spans": int(spans)} if spans else {}
        return await self.request(Request(op="stats", extra=extra))

    async def migrate(self, worker: str) -> dict:
        """Drain one cluster worker, live-migrating its sessions.

        ``worker`` is the worker's address (``tcp://host:port``).  Only
        meaningful against a server running a cluster backend; returns
        the drain summary ``{worker, migrated, targets, remaining}``.
        """
        return await self.request(Request(op="migrate", worker=worker))

    async def join(self, worker: str) -> dict:
        """Admit a worker into the cluster at runtime.

        ``worker`` is its address (``tcp://host:port``); the ring
        re-forms and only the moved arcs migrate onto it.  Returns the
        join summary ``{worker, migrated, targets, workers}``.
        """
        return await self.request(Request(op="join", worker=worker))

    async def leave(self, worker: str) -> dict:
        """Remove a worker from the cluster (drain first when alive).

        Returns the leave summary ``{worker, migrated, lost, workers}``.
        """
        return await self.request(Request(op="leave", worker=worker))

    async def cluster_status(self) -> dict:
        """The cluster membership snapshot (workers, ring, recovery)."""
        return await self.request(Request(op="cluster_status"))

    async def close(self) -> None:
        """Close the connection and stop the reader."""
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


class ServiceClient:
    """Blocking client: one request at a time over a plain socket."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float | None = 30.0,
        retry: RetryPolicy | None = None,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = itertools.count(1)
        self._retry = retry

    def request(self, request: Request) -> dict:
        """Send one frame, block for its reply, return the payload.

        With a :class:`RetryPolicy`, ``overloaded`` rejections are
        waited out (honoring the server's ``retry_after_ms`` hint) and
        the request re-sent under a fresh correlation id.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(request)
            except OverloadedError as error:
                if self._retry is None or attempt >= self._retry.max_retries:
                    raise
                time.sleep(self._retry.wait_s(attempt, error.retry_after_ms))
                attempt += 1
                request = replace(request, request_id=None)

    def _request_once(self, request: Request) -> dict:
        if request.request_id is None:
            request = replace(request, request_id=next(self._ids))
        self._file.write(request.to_frame())
        self._file.flush()
        line = self._file.readline(MAX_FRAME_BYTES + 2)
        if not line:
            raise ServiceError("connection closed by server")
        return _payload(parse_reply(line))

    # -- convenience ops (mirror the async client) -----------------------
    def open(
        self,
        session: str | None = None,
        seed: int | None = None,
        scenario=None,
    ) -> str:
        """Open a session; returns its id (``scenario`` as in the async client)."""
        return self.request(
            Request(
                op="open", session=session, seed=seed, scenario=_scenario_json(scenario)
            )
        )["session"]

    def step(
        self, session: str, cell: int, deadline_ms: int | None = None
    ) -> dict:
        """Release one location (``deadline_ms`` as in the async client)."""
        return self.request(
            Request(op="step", session=session, cell=cell, deadline_ms=deadline_ms)
        )

    def peek_budget(self, session: str) -> float:
        """The budget the session's next step starts calibrating from."""
        return float(self.request(Request(op="peek_budget", session=session))["budget"])

    def finish(self, session: str) -> dict:
        """Seal a session; returns its summary."""
        return self.request(Request(op="finish", session=session))

    def checkpoint(self, session: str) -> dict:
        """Snapshot a session server-side; returns {session, t, state}."""
        return self.request(Request(op="checkpoint", session=session))

    def stats(self, spans: int = 0) -> dict:
        """Server metrics snapshot (``spans`` > 0 adds recent trace spans)."""
        extra = {"spans": int(spans)} if spans else {}
        return self.request(Request(op="stats", extra=extra))

    def migrate(self, worker: str) -> dict:
        """Drain one cluster worker (as in the async client)."""
        return self.request(Request(op="migrate", worker=worker))

    def join(self, worker: str) -> dict:
        """Admit a worker into the cluster (as in the async client)."""
        return self.request(Request(op="join", worker=worker))

    def leave(self, worker: str) -> dict:
        """Remove a worker from the cluster (as in the async client)."""
        return self.request(Request(op="leave", worker=worker))

    def cluster_status(self) -> dict:
        """The cluster membership snapshot (as in the async client)."""
        return self.request(Request(op="cluster_status"))

    def close(self) -> None:
        """Close the connection."""
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
