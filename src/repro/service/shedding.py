"""Deadline-aware load shedding for the release server.

Two triggers, both firing *before* execution so a shed request never
touches session state:

* **Deadline** -- a request may carry ``deadline_ms``, the client's
  total latency budget.  If the estimated queue delay already exceeds
  it at admission, or the measured wait exceeds it by the time the
  request reaches a worker thread, the request is shed: executing it
  would burn capacity on an answer the client has already given up on.
* **Sustained queue delay** -- a CoDel-style controller watches the
  measured executor queue wait (EWMA).  Transient bursts above the
  target are fine; once the delay has stayed above ``target_ms`` for
  ``interval_ms`` the server is genuinely overloaded and starts
  shedding in strict priority order: ``open`` first (new work admits
  more load), then ``step`` once the overload has persisted for a
  second interval.  ``finish`` and the control-plane ops are never shed
  by this trigger -- finishing sessions *reduces* load.

Either trigger raises :class:`~repro.errors.OverloadedError`, which the
wire layer renders as the retryable ``overloaded`` code with a
``retry_after_ms`` hint sized to the current drain time.

Brownout: while the queue-delay trigger is active the server also
sheds *overhead* before it sheds requests -- per-request tracing and
the micro-batching window are bypassed (both are bit-identical
transformations, so accepted requests still return byte-for-byte the
same streams).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..errors import OverloadedError

__all__ = ["LoadShedder", "SHED_PRIORITY", "ShedConfig"]

#: Op -> shedding priority under the queue-delay trigger; *lower* sheds
#: earlier.  Ops absent from the map (``finish``, ``peek_budget``,
#: ``checkpoint``, the control plane) are never shed by sustained
#: queue delay -- only by their own blown deadline.
SHED_PRIORITY = {"open": 0, "step": 1}

#: Floor and ceiling for the ``retry_after_ms`` hint.
_RETRY_AFTER_MIN_MS = 50
_RETRY_AFTER_MAX_MS = 10_000


@dataclass(frozen=True)
class ShedConfig:
    """Knobs for the queue-delay trigger.

    ``target_ms <= 0`` disables the sustained-delay trigger entirely
    (deadline shedding still applies to requests that carry one).
    """

    #: Acceptable standing queue delay; the CoDel target.
    target_ms: float = 100.0
    #: How long the delay must stay above target before shedding starts.
    interval_ms: float = 1000.0
    #: EWMA smoothing factor for observed queue waits.
    alpha: float = 0.2


class LoadShedder:
    """Admission control shared by the event loop and pool threads.

    ``queue_depth`` (a zero-argument callable, e.g. the executor's
    live queue size) lets the shedder notice the backlog has drained:
    the delay estimate only updates when work *dequeues*, so without
    it a server that sheds everything would never observe recovery and
    shed forever on a stale estimate.
    """

    def __init__(
        self, config: ShedConfig | None = None, metrics=None, queue_depth=None
    ):
        self._config = config if config is not None else ShedConfig()
        self._metrics = metrics
        self._queue_depth = queue_depth
        self._lock = threading.Lock()
        self._delay_ewma_s = 0.0
        self._last_observe = time.perf_counter()
        #: perf_counter timestamp since which the EWMA has been above
        #: target, or None while below it.
        self._above_since: float | None = None

    # ------------------------------------------------------------------
    # measurement
    # ------------------------------------------------------------------
    def observe(self, waited_s: float) -> None:
        """Fold one measured queue wait into the delay estimate.

        Called from pool threads at the moment a queued work item
        starts running -- the measured sojourn time, not a guess.
        """
        cfg = self._config
        now = time.perf_counter()
        with self._lock:
            self._last_observe = now
            self._delay_ewma_s = (
                (1.0 - cfg.alpha) * self._delay_ewma_s + cfg.alpha * waited_s
            )
            if cfg.target_ms <= 0:
                self._above_since = None
            elif self._delay_ewma_s * 1e3 > cfg.target_ms:
                if self._above_since is None:
                    self._above_since = now
            else:
                self._above_since = None

    def _refresh(self, now: float) -> None:
        """Drop stale overload state once the backlog is gone (under lock).

        The estimate only moves when work dequeues, so after a full
        shed (or the load simply stopping) it would describe a backlog
        that no longer exists.  An empty executor queue -- or a full
        interval with no dequeue at all -- means new arrivals would
        wait ~nothing: clear the state and re-admit immediately instead
        of shedding forever on the stale number.
        """
        if self._above_since is None and self._delay_ewma_s == 0.0:
            return
        drained = self._queue_depth is not None and self._queue_depth() == 0
        idle = (now - self._last_observe) * 1e3 > self._config.interval_ms
        if drained or idle:
            self._above_since = None
            self._delay_ewma_s = 0.0

    @property
    def delay_ms(self) -> float:
        """The current smoothed queue-delay estimate."""
        with self._lock:
            self._refresh(time.perf_counter())
            return self._delay_ewma_s * 1e3

    @property
    def level(self) -> int:
        """Overload level: 0 normal, 1 shed ``open``, 2 shed ``step`` too."""
        cfg = self._config
        if cfg.target_ms <= 0:
            return 0
        with self._lock:
            self._refresh(time.perf_counter())
            if self._above_since is None:
                return 0
            sustained_ms = (time.perf_counter() - self._above_since) * 1e3
        if sustained_ms < cfg.interval_ms:
            return 0
        if sustained_ms < 2.0 * cfg.interval_ms:
            return 1
        return 2

    @property
    def brownout(self) -> bool:
        """True while overhead (tracing, batching) should be bypassed."""
        return self.level >= 1

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def admit(self, op: str, deadline_ms: int | None) -> None:
        """Gate one request at arrival; raises ``OverloadedError`` to shed.

        Runs on the event loop before any work is queued, so shedding
        costs one dict lookup and two float compares per request.
        """
        if deadline_ms is not None and self.delay_ms >= deadline_ms:
            self._shed(
                op,
                "deadline",
                f"estimated queue delay {self.delay_ms:.0f}ms exceeds the "
                f"request deadline of {deadline_ms}ms",
            )
        priority = SHED_PRIORITY.get(op)
        if priority is not None and priority < self.level:
            self._shed(
                op,
                "queue_delay",
                f"queue delay has exceeded {self._config.target_ms:.0f}ms "
                f"for over {self._config.interval_ms:.0f}ms; "
                f"shedding {op!r} requests",
            )

    def check_deadline(self, op: str, deadline_ms: int | None, waited_s: float) -> None:
        """Re-check a request's deadline with its *measured* queue wait.

        Runs on the pool thread immediately before execution: a request
        admitted under a healthy estimate can still blow its deadline
        waiting behind a slow burst, and executing it then is pure
        waste.  Session state is untouched -- nothing has run yet.
        """
        if deadline_ms is not None and waited_s * 1e3 > deadline_ms:
            self._shed(
                op,
                "deadline",
                f"request waited {waited_s * 1e3:.0f}ms in queue, past its "
                f"deadline of {deadline_ms}ms",
            )

    def _shed(self, op: str, reason: str, message: str) -> None:
        if self._metrics is not None:
            self._metrics.record_shed(op, reason)
        retry_after = int(
            min(
                _RETRY_AFTER_MAX_MS,
                max(
                    _RETRY_AFTER_MIN_MS,
                    self._config.interval_ms,
                    self.delay_ms,
                ),
            )
        )
        raise OverloadedError(message, retry_after_ms=retry_after)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-safe state for the ``stats`` op."""
        cfg = self._config
        with self._lock:
            self._refresh(time.perf_counter())
            above_since = self._above_since
            delay_ms = self._delay_ewma_s * 1e3
        return {
            "enabled": cfg.target_ms > 0,
            "target_ms": cfg.target_ms,
            "interval_ms": cfg.interval_ms,
            "queue_delay_ewma_ms": round(delay_ms, 3),
            "overload_level": self.level,
            "brownout": self.brownout,
            "above_target_for_s": (
                round(time.perf_counter() - above_since, 3)
                if above_since is not None
                else 0.0
            ),
        }
