"""Pluggable persistence for suspended sessions.

The server decouples *open* sessions from *resident* sessions: past a
residency cap it suspends idle sessions through the engine's JSON
checkpoint (:meth:`~repro.engine.ReleaseSession.to_state`) into a
:class:`SessionStore`, and transparently restores them on their next
request.  Three backends, all stdlib:

* :class:`MemorySessionStore` -- a dict of serialized states.  Bounds
  nothing by itself but keeps evicted sessions off the engine's hot
  structures; the default.
* :class:`DirectorySessionStore` -- one JSON file per session.  Survives
  restarts; also the format behind ``repro stream --checkpoint-dir``.
* :class:`SQLiteSessionStore` -- a single-file database for fleets where
  a million tiny files would hurt.

Every backend round-trips ``SessionState.to_json()`` verbatim, so a
session restored from any store continues bit-identically.  All methods
are thread-safe: stores are touched from worker-pool threads.
"""

from __future__ import annotations

import abc
import json
import os
import sqlite3
import tempfile
import threading

from ..engine.session import SessionState
from ..errors import ServiceError, ValidationError


class SessionStore(abc.ABC):
    """Keyed persistence of suspended :class:`SessionState` snapshots."""

    @abc.abstractmethod
    def put(self, state: SessionState) -> None:
        """Persist (insert or replace) one suspended session."""

    @abc.abstractmethod
    def get(self, session_id: str) -> SessionState | None:
        """Load a suspended session, or ``None`` when absent."""

    @abc.abstractmethod
    def delete(self, session_id: str) -> None:
        """Drop a session (no-op when absent)."""

    @abc.abstractmethod
    def ids(self) -> list[str]:
        """All stored session ids."""

    def __len__(self) -> int:
        return len(self.ids())

    def __contains__(self, session_id: str) -> bool:
        return self.get(session_id) is not None

    def close(self) -> None:
        """Release backend resources (default: nothing to do)."""


class MemorySessionStore(SessionStore):
    """In-process store of JSON-serialized states.

    States are stored as JSON strings, not live objects: a put/get
    round-trip always exercises the same serialization path as the
    durable backends, so switching backends cannot change behaviour.
    """

    def __init__(self):
        self._states: dict[str, str] = {}
        self._lock = threading.Lock()

    def put(self, state: SessionState) -> None:
        payload = json.dumps(state.to_json())
        with self._lock:
            self._states[state.session_id] = payload

    def get(self, session_id: str) -> SessionState | None:
        with self._lock:
            payload = self._states.get(session_id)
        if payload is None:
            return None
        return SessionState.from_json(json.loads(payload))

    def delete(self, session_id: str) -> None:
        with self._lock:
            self._states.pop(session_id, None)

    def ids(self) -> list[str]:
        with self._lock:
            return list(self._states)


class DirectorySessionStore(SessionStore):
    """One ``<hex(session_id)>.json`` file per suspended session.

    File names are the hex encoding of the UTF-8 session id: reversible
    (so :meth:`ids` needs no index) and safe for arbitrary id strings.
    Writes go through an fsynced unique temp file + ``os.replace`` so a
    crash (or kill -9) mid-write never leaves a torn checkpoint -- the
    previous complete checkpoint survives instead.  Temp names carry no
    ``.json`` suffix, so :meth:`ids` never reports a half-written file.
    """

    _SUFFIX = ".json"

    def __init__(self, root: str):
        self._root = str(root)
        os.makedirs(self._root, exist_ok=True)
        self._lock = threading.Lock()

    @property
    def root(self) -> str:
        """The backing directory."""
        return self._root

    def _path(self, session_id: str) -> str:
        return os.path.join(
            self._root, session_id.encode().hex() + self._SUFFIX
        )

    def put(self, state: SessionState) -> None:
        path = self._path(state.session_id)
        payload = json.dumps(state.to_json())
        with self._lock:
            # Unique temp name (concurrent processes may share the
            # directory), data fsynced before the atomic rename: after
            # a crash the file at `path` is always one complete
            # checkpoint, old or new -- never a mix.
            fd, tmp = tempfile.mkstemp(
                prefix=".put-", suffix=".tmp", dir=self._root
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise

    def get(self, session_id: str) -> SessionState | None:
        path = self._path(session_id)
        with self._lock:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = handle.read()
            except FileNotFoundError:
                return None
        try:
            return SessionState.from_json(json.loads(payload))
        except (ValueError, KeyError, TypeError) as error:
            raise ServiceError(
                f"corrupt session checkpoint {path!r}: {error}"
            ) from error

    def delete(self, session_id: str) -> None:
        with self._lock:
            try:
                os.remove(self._path(session_id))
            except FileNotFoundError:
                pass

    def ids(self) -> list[str]:
        with self._lock:
            names = os.listdir(self._root)
        out = []
        for name in names:
            if not name.endswith(self._SUFFIX):
                continue
            try:
                out.append(bytes.fromhex(name[: -len(self._SUFFIX)]).decode())
            except ValueError:
                continue  # foreign file in the directory; not ours
        return out


class SQLiteSessionStore(SessionStore):
    """All suspended sessions in one SQLite file (or ``:memory:``)."""

    def __init__(self, path: str):
        self._path = str(path)
        # One shared connection; sqlite3 serializes at C level but we
        # still hold a lock so multi-statement operations stay atomic.
        self._conn = sqlite3.connect(self._path, check_same_thread=False)
        self._lock = threading.Lock()
        with self._lock:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS sessions ("
                " session_id TEXT PRIMARY KEY,"
                " state TEXT NOT NULL)"
            )
            self._conn.commit()

    def put(self, state: SessionState) -> None:
        payload = json.dumps(state.to_json())
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO sessions (session_id, state) VALUES (?, ?)",
                (state.session_id, payload),
            )
            self._conn.commit()

    def get(self, session_id: str) -> SessionState | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT state FROM sessions WHERE session_id = ?", (session_id,)
            ).fetchone()
        if row is None:
            return None
        try:
            return SessionState.from_json(json.loads(row[0]))
        except (ValueError, KeyError, TypeError) as error:
            raise ServiceError(
                f"corrupt session row {session_id!r} in {self._path!r}: {error}"
            ) from error

    def delete(self, session_id: str) -> None:
        with self._lock:
            self._conn.execute(
                "DELETE FROM sessions WHERE session_id = ?", (session_id,)
            )
            self._conn.commit()

    def ids(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute("SELECT session_id FROM sessions").fetchall()
        return [row[0] for row in rows]

    def close(self) -> None:
        with self._lock:
            self._conn.close()


def resolve_store(kind: str, path: str | None = None) -> SessionStore:
    """Build a store from CLI-ish ``(kind, path)`` settings.

    ``memory`` needs no path; ``dir`` and ``sqlite`` require one.
    """
    if kind == "memory":
        return MemorySessionStore()
    if kind == "dir":
        if not path:
            raise ValidationError("store 'dir' requires a directory path")
        return DirectorySessionStore(path)
    if kind == "sqlite":
        if not path:
            raise ValidationError("store 'sqlite' requires a database path")
        return SQLiteSessionStore(path)
    raise ValidationError(
        f"unknown store kind {kind!r}; expected 'memory', 'dir' or 'sqlite'"
    )
