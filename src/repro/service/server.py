"""The asyncio TCP server multiplexing clients onto one execution backend.

The backend is either the in-process :class:`SessionManager` adapter
(single process, worker-thread offload) or a
:class:`~repro.engine.shard.ShardPool` of worker processes
(``repro serve --shards N``), selected by the CLI; the server's
admission, ordering, eviction and drain logic is identical for both.

Concurrency model
-----------------
* One reader coroutine per connection; each request frame becomes its
  own task, so slow steps never block other requests (replies carry the
  request's ``id`` and may return out of order -- clients match on it).
* A per-connection pending-request semaphore: past
  ``max_pending_per_connection`` in-flight requests the reader simply
  stops reading, which surfaces to the client as TCP backpressure.
* A global open-session cap (``max_sessions``): ``open`` beyond it gets
  a typed ``busy`` error instead of a hang.
* CPU-bound work (step, restore, suspend) runs on the
  :class:`~repro.service.executor.SessionExecutor` worker pool under a
  per-session lock; all fleet bookkeeping (the LRU table, admission,
  eviction choice) happens on the event-loop thread only.
* Past ``max_resident`` resident sessions, least-recently-used idle
  sessions are suspended through the engine's JSON checkpoint into the
  :class:`~repro.service.store.SessionStore` and restored transparently
  on their next request -- open-session count is decoupled from memory.

Graceful drain: on ``request_drain()`` (wired to SIGINT/SIGTERM by the
CLI) the server stops accepting, lets in-flight requests finish,
checkpoints every resident session into the store and resolves
:meth:`wait_drained` with a summary.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import time
import uuid
from dataclasses import dataclass

from ..core.qp import kernel_stats as _solver_kernel_stats
from ..core.two_world import front_stats as _front_stats
from ..engine.backend import as_backend
from ..errors import (
    ProtocolError,
    ReproError,
    ServiceBusyError,
    ServiceError,
    SessionError,
    ShardDownError,
)
from ..obs.http import ObsHttpServer
from ..obs.probe import EventLoopLagProbe
from ..obs.registry import LatencyHistogram
from ..obs.trace import NULL_TRACER, Tracer, activate, deactivate, new_trace_id
from ..scenario import ScenarioRegistry
from .executor import SessionExecutor, StepBatcher
from .metrics import ServiceMetrics
from .shedding import LoadShedder, ShedConfig
from .protocol import (
    MAX_FRAME_BYTES,
    Request,
    error_code_for,
    error_frame,
    ok_frame,
    parse_request,
)
from .store import MemorySessionStore, SessionStore


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs, orthogonal to the engine configuration."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read the bound port off `server.port`
    max_sessions: int = 10_000
    max_resident: int = 1_024
    max_pending_per_connection: int = 32
    workers: int | None = None  # None = cores (capped); 0 = inline
    #: Micro-batching window in milliseconds; 0 disables.  When set,
    #: concurrent `step` requests arriving within the window coalesce
    #: into one batched `SessionManager.step_many` call (bit-identical
    #: streams, bounded added latency, higher fleet throughput).
    batch_window_ms: float = 0.0
    #: Capacity of the validated-scenario LRU fronting inline `open`
    #: scenarios (evicted specs are simply re-validated on their next
    #: submission; model interning lives in the engine, per digest).
    max_cached_scenarios: int = 64
    #: Per-request tracing (trace/span ids, timed spans).  On by
    #: default: the buffers are bounded and the per-request cost is a
    #: few perf-counter reads; ``False`` swaps in the null tracer so
    #: every span call short-circuits.
    trace: bool = True
    #: Spans kept in the recent-span ring buffer.
    trace_capacity: int = 512
    #: Requests slower than this land in the slow-request ring too.
    slow_request_ms: float = 1000.0
    #: TCP port for the Prometheus/health sidecar listener (``None``
    #: disables it entirely; 0 binds an ephemeral port, read it off
    #: ``server.metrics_port``).
    metrics_port: int | None = None
    #: Host for the sidecar listener (``None`` = the serving host).
    metrics_host: str | None = None
    #: Load shedding: acceptable standing executor queue delay (the
    #: CoDel target).  Once the measured delay stays above this for
    #: ``shed_interval_ms`` the server sheds ``open`` (then ``step``)
    #: requests with the retryable ``overloaded`` code instead of
    #: letting every queue grow without bound.  ``0`` disables the
    #: queue-delay trigger; requests carrying ``deadline_ms`` are
    #: still shed when their deadline is blown.
    shed_target_ms: float = 100.0
    #: How long the queue delay must stay above target before the
    #: queue-delay trigger starts shedding.
    shed_interval_ms: float = 1000.0


def _merge_cache_rows(rows: list[dict]) -> dict | None:
    """Fleet-wide verdict-cache counters from per-shard stats rows."""
    merged = {"hits": 0, "misses": 0, "size": 0, "evictions": 0}
    seen = False
    for row in rows:
        cache = row.get("verdict_cache")
        if cache is None:
            continue
        seen = True
        for key in merged:
            merged[key] += cache[key]
    if not seen:
        return None
    total = merged["hits"] + merged["misses"]
    merged["hit_rate"] = round(merged["hits"] / total, 6) if total else 0.0
    return merged


class ReleaseServer:
    """Serve one shared execution backend over JSONL/TCP.

    ``engine`` may be a :class:`~repro.engine.SessionManager` (wrapped
    into the in-process backend, the historical single-process path) or
    any :class:`~repro.engine.backend.ExecutionBackend` -- notably a
    :class:`~repro.engine.shard.ShardPool`, which spreads the fleet
    over N worker processes for near-linear core scaling.

    Multi-tenancy: ``open`` accepts an inline
    :class:`~repro.scenario.ScenarioSpec` JSON object, gated by a
    digest allowlist (``scenarios=`` preloads it; ``allow_any_scenario``
    bypasses it) with a validated-spec LRU in front.  The engine interns
    per-scenario models by digest, and the ``stats`` op reports
    per-scenario open/step/finish counters (sessions of the flag-built
    default configuration count under ``"default"``, as do sessions
    adopted from a durable store before their first scenario-tagged
    request of this incarnation).
    """

    def __init__(
        self,
        engine,
        store: SessionStore | None = None,
        config: ServerConfig | None = None,
        metrics: ServiceMetrics | None = None,
        scenarios=None,
        allow_any_scenario: bool = False,
    ):
        self._backend = as_backend(engine)
        self._store = store if store is not None else MemorySessionStore()
        self._config = config if config is not None else ServerConfig()
        self._metrics = metrics if metrics is not None else ServiceMetrics()
        # A supervising backend (ClusterSupervisor) counts recoveries
        # and losses itself; hand it the server's sink so they land in
        # the same families the stats op and /metrics render.
        bind = getattr(self._backend, "bind_metrics", None)
        if bind is not None:
            bind(self._metrics)
        # Inline-scenario admission: preloaded specs form the digest
        # allowlist unless allow_any_scenario opens the gate entirely.
        self._scenarios = ScenarioRegistry(
            scenarios if scenarios is not None else (),
            allow_any=allow_any_scenario,
            max_cached=self._config.max_cached_scenarios,
        )
        # Per-scenario observability: sid -> digest ("default" for the
        # flag-built configuration) and digest -> lifecycle counters.
        self._session_scenario: dict[str, str] = {}
        self._scenario_counters: dict[str, dict[str, int]] = {}
        if self._backend.remote and self._config.workers == 0:
            # Inline execution would run blocking shard RPCs on the
            # event loop; one RPC queued behind a shard's in-flight
            # batch would stall every connection.
            raise ServiceError(
                "workers=0 (inline) is incompatible with a sharded backend; "
                "use workers >= 1 or shards=0"
            )
        self._tracer = (
            Tracer(
                capacity=self._config.trace_capacity,
                slow_threshold_s=self._config.slow_request_ms / 1e3,
            )
            if self._config.trace
            else NULL_TRACER
        )
        self._executor = SessionExecutor(
            self._config.workers, shards=self._backend.n_shards
        )
        self._shedder = LoadShedder(
            ShedConfig(
                target_ms=self._config.shed_target_ms,
                interval_ms=self._config.shed_interval_ms,
            ),
            metrics=self._metrics,
            queue_depth=self._executor.queue_depth,
        )
        self._batcher = (
            StepBatcher(
                self._backend,
                self._executor,
                self._config.batch_window_ms / 1e3,
                restore=self._restore_if_suspended,
                tracer=self._tracer,
            )
            if self._config.batch_window_ms > 0
            else None
        )
        # Admission registry: every open session id, resident or
        # suspended (order irrelevant).
        self._open: dict[str, None] = {}
        # Resident sessions only, in LRU order (insertion + touch moves):
        # eviction scans this, so its cost tracks max_resident, not the
        # total open-session count.
        self._resident_lru: dict[str, None] = {}
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._request_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = asyncio.Event()
        self._drained = asyncio.Event()
        self._drain_task: asyncio.Task | None = None
        self._drain_summary: dict = {}
        self.port: int | None = None
        self._loop_probe = EventLoopLagProbe()
        self._obs_http: ObsHttpServer | None = None
        #: Bound port of the metrics listener (``None`` until started).
        self.metrics_port: int | None = None
        self._mount_gauges()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> ServiceMetrics:
        """The server's metrics sink."""
        return self._metrics

    @property
    def store(self) -> SessionStore:
        """The suspended-session store."""
        return self._store

    @property
    def tracer(self) -> Tracer:
        """The server's span collector (the null tracer when disabled)."""
        return self._tracer

    def _mount_gauges(self) -> None:
        """Register live-state callback gauges on the metrics registry.

        Callback gauges sample at read time, so queue depth and
        residency are exact at every scrape with zero steady-state
        cost.  When the caller shares one :class:`ServiceMetrics`
        across servers (tests do), only the first server mounts them --
        the registry's duplicate check is the tripwire we key off.
        """
        registry = self._metrics.registry
        if registry.get("repro_sessions_open") is not None:
            return
        registry.gauge(
            "repro_sessions_open",
            "Open sessions (resident + suspended)",
            fn=lambda: len(self._open),
        )
        registry.gauge(
            "repro_sessions_resident",
            "Sessions resident in the execution backend",
            fn=self._backend.resident_count,
        )
        registry.gauge(
            "repro_sessions_stored",
            "Suspended sessions parked in the store",
            fn=lambda: len(self._store),
        )
        registry.gauge(
            "repro_connections",
            "Open client connections",
            fn=lambda: len(self._writers),
        )
        registry.gauge(
            "repro_executor_queue_depth",
            "Work items queued for the session executor",
            fn=self._executor.queue_depth,
        )
        registry.gauge(
            "repro_executor_active_sessions",
            "Sessions holding an executor ordering lock",
            fn=lambda: self._executor.active_sessions,
        )
        registry.gauge(
            "repro_batch_window_occupancy",
            "Step requests waiting in the current batch window",
            fn=lambda: (
                0 if self._batcher is None else self._batcher.window_occupancy()
            ),
        )
        registry.gauge(
            "repro_event_loop_lag_seconds",
            "Most recent event-loop lag probe sample",
            fn=lambda: self._loop_probe.current_s,
        )
        registry.gauge(
            "repro_event_loop_lag_max_seconds",
            "Worst event-loop lag sample since start",
            fn=lambda: self._loop_probe.max_s,
        )
        registry.gauge(
            "repro_spans_total",
            "Spans recorded by the server tracer since start",
            fn=lambda: self._tracer.count,
        )
        registry.gauge(
            "repro_slow_spans_total",
            "Spans at or above the slow-request threshold since start",
            fn=lambda: self._tracer.slow_count,
        )
        registry.gauge(
            "repro_draining",
            "1 while a graceful drain is in progress",
            fn=lambda: float(self._draining.is_set()),
        )
        registry.gauge(
            "repro_overload_level",
            "Load-shedding level: 0 normal, 1 shedding open, 2 shedding step",
            fn=lambda: self._shedder.level,
        )
        registry.gauge(
            "repro_queue_delay_ewma_seconds",
            "Smoothed executor queue-wait estimate driving load shedding",
            fn=lambda: self._shedder.delay_ms / 1e3,
        )
        # Solver-kernel identity as an info-style gauge: the value is a
        # constant 1, the interesting bits ride in the labels.  Kernel
        # selection is process-level (env + compiler availability), so
        # setting it once at mount time is exact.
        solver = _solver_kernel_stats()
        registry.gauge(
            "repro_solver_kernel_info",
            "Resolved rank-one solver kernel (identity in the labels)",
            labelnames=("kernel", "native_state"),
        ).set(1.0, kernel=solver["kernel"], native_state=solver["native_state"])
        registry.gauge(
            "repro_solver_native_conditions_total",
            "Rank-one conditions solved by the compiled native kernel",
            fn=lambda: _solver_kernel_stats()["native_conditions"],
        )
        registry.gauge(
            "repro_solver_numpy_conditions_total",
            "Rank-one conditions solved by the NumPy fallback kernel",
            fn=lambda: _solver_kernel_stats()["numpy_conditions"],
        )
        registry.gauge(
            "repro_front_sparse_matmuls_total",
            "Lifted-front block products routed through CSR matmuls",
            fn=lambda: _front_stats()["sparse_matmuls"],
        )
        registry.gauge(
            "repro_front_dense_matmuls_total",
            "Lifted-front block products executed as dense GEMMs",
            fn=lambda: _front_stats()["dense_matmuls"],
        )
        registry.gauge(
            "repro_front_csr_cache_hits_total",
            "Per-timestamp CSR block-cache hits in sparse propagation",
            fn=lambda: _front_stats()["csr_hits"],
        )

    async def start(self) -> None:
        """Bind and start accepting connections."""
        # Adopt sessions a previous incarnation parked in a durable
        # store: they count as open (admission) and restore on demand.
        for sid in self._store.ids():
            self._open.setdefault(sid, None)
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self._config.host,
            port=self._config.port,
            limit=MAX_FRAME_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._loop_probe.start()
        if self._config.metrics_port is not None:
            self._obs_http = ObsHttpServer(
                self._config.metrics_host or self._config.host,
                self._config.metrics_port,
                render_metrics=self._render_metrics,
                readiness=self._readiness,
            )
            await self._obs_http.start()
            self.metrics_port = self._obs_http.port

    def install_signal_handlers(self) -> None:
        """Drain on SIGINT/SIGTERM (call from within the event loop)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, self.request_drain)

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent, callable from handlers)."""
        if self._drain_task is None:
            self._drain_task = asyncio.get_running_loop().create_task(self.drain())

    async def wait_drained(self) -> dict:
        """Block until the drain completes; returns its summary."""
        await self._drained.wait()
        return self._drain_summary

    async def drain(self) -> dict:
        """Stop accepting, finish in-flight work, checkpoint sessions."""
        if self._drained.is_set():
            return self._drain_summary
        self._draining.set()
        if self._server is not None:
            self._server.close()
        for task in list(self._conn_tasks):
            task.cancel()
        await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        await asyncio.gather(*self._request_tasks, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        # Round-trip every resident session's state out of its owning
        # backend (shard workers included) into the store.  Sessions on
        # a dead shard cannot be checkpointed; they are counted, never
        # silently dropped.
        states, lost = self._backend.suspend_all()
        if lost:
            self._metrics.record_failure("sessions_lost", len(lost))
        for state in states:
            self._store.put(state)
        for writer in list(self._writers):
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()
        self._writers.clear()
        self._executor.shutdown()
        self._backend.close()
        if self._obs_http is not None:
            await self._obs_http.stop()
            self._obs_http = None
        await self._loop_probe.stop()
        self._drain_summary = {
            "sessions_checkpointed": len(states),
            "sessions_open": len(self._open),
            "sessions_lost": len(lost),
        }
        self._drained.set()
        return self._drain_summary

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conn_tasks.add(task)
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        pending_slots = asyncio.Semaphore(self._config.max_pending_per_connection)
        pending: set[asyncio.Task] = set()
        eof = False
        try:
            while True:
                await pending_slots.acquire()
                try:
                    line = await reader.readline()
                except ValueError:
                    # Over-long frame: the stream cannot be re-synced.
                    pending_slots.release()
                    error = ProtocolError(
                        f"frame exceeds the {MAX_FRAME_BYTES}-byte limit"
                    )
                    self._metrics.record_error("protocol")
                    await self._write(writer, write_lock, error_frame(None, error))
                    eof = True
                    break
                if not line:
                    pending_slots.release()
                    eof = True
                    break
                if not line.strip():
                    pending_slots.release()
                    continue
                request_task = asyncio.get_running_loop().create_task(
                    self._handle_line(line, writer, write_lock, pending_slots)
                )
                pending.add(request_task)
                request_task.add_done_callback(pending.discard)
                self._request_tasks.add(request_task)
                request_task.add_done_callback(self._request_tasks.discard)
        except asyncio.CancelledError:
            # Drain: in-flight request tasks are awaited by drain(),
            # which also closes the writer after their replies flush.
            return
        except ConnectionError:
            eof = True
        finally:
            self._conn_tasks.discard(task)
            if eof:
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
                self._writers.discard(writer)
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        pending_slots: asyncio.Semaphore,
    ) -> None:
        try:
            try:
                request = parse_request(line)
            except ProtocolError as error:
                self._metrics.record_error("protocol")
                reply = error_frame(getattr(error, "request_id", None), error)
                await self._write(writer, write_lock, reply)
                return
            self._metrics.record_request(request.op)
            # Brownout: while the shedder reports sustained overload,
            # per-request tracing is the first thing to go -- overhead
            # shed before any request is.
            traced = self._tracer.enabled and not self._shedder.brownout
            trace_id = new_trace_id() if traced else None
            started = time.perf_counter() if traced else 0.0
            try:
                payload = await self._dispatch(request, trace_id)
                reply = ok_frame(request.request_id, request.op, payload)
            except ReproError as error:
                self._metrics.record_error(error_code_for(error))
                reply = error_frame(request.request_id, error)
            except Exception as error:  # noqa: BLE001 - last-resort boundary
                self._metrics.record_error("internal")
                reply = error_frame(request.request_id, error)
            if traced:
                serialized = time.perf_counter()
                await self._write(writer, write_lock, reply)
                done = time.perf_counter()
                attrs = {"op": request.op}
                if request.session is not None:
                    attrs["session"] = request.session
                self._tracer.record(
                    "serialize", trace_id, done - serialized, **attrs
                )
                self._tracer.record("request", trace_id, done - started, **attrs)
            else:
                await self._write(writer, write_lock, reply)
        finally:
            pending_slots.release()

    async def _write(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, data: bytes
    ) -> None:
        async with write_lock:
            if writer.is_closing():
                return
            with contextlib.suppress(ConnectionError):
                writer.write(data)
                await writer.drain()

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request, trace_id: str | None = None) -> dict:
        # Admission control: shed before any work is queued.  Raises
        # the retryable ``overloaded`` error when the request's own
        # deadline is already blown by the estimated queue delay, or
        # when sustained overload sheds this op's priority class.
        self._shedder.admit(request.op, request.deadline_ms)
        if request.op == "open":
            return await self._op_open(request)
        if request.op == "step":
            return await self._op_step(request, trace_id)
        if request.op == "peek_budget":
            return await self._op_peek(request)
        if request.op == "finish":
            return await self._op_finish(request)
        if request.op == "checkpoint":
            return await self._op_checkpoint(request)
        if request.op == "migrate":
            return await self._op_migrate(request)
        if request.op == "join":
            return await self._op_join(request)
        if request.op == "leave":
            return await self._op_leave(request)
        if request.op == "cluster_status":
            return await self._op_cluster_status(request)
        return await self._op_stats(request)

    def _measured(self, op: str, deadline_ms: int | None, fn):
        """Wrap a pool closure to feed the shedder its measured queue wait.

        The wait runs from submission to the moment the closure starts
        on a worker thread; a deadline blown by that wait sheds here,
        strictly before ``fn`` touches any session state.
        """
        shedder = self._shedder
        submitted = time.perf_counter()

        def wrapped():
            waited = time.perf_counter() - submitted
            shedder.observe(waited)
            shedder.check_deadline(op, deadline_ms, waited)
            return fn()

        return wrapped

    async def _op_open(self, request: Request) -> dict:
        if self._draining.is_set():
            raise ServiceBusyError("server is draining; not accepting sessions")
        sid = request.session or uuid.uuid4().hex
        if sid in self._open:
            raise SessionError(f"session {sid!r} already open")
        if len(self._open) >= self._config.max_sessions:
            raise ServiceBusyError(
                f"open-session cap reached ({self._config.max_sessions}); "
                "finish sessions or retry later"
            )
        seed = request.seed
        spec = None
        if request.scenario is not None:
            # Validate + allowlist-check on the loop (cheap, typed
            # errors); model compilation happens inside the backend's
            # manager, interned by digest, off the loop.
            spec = self._scenarios.admit(request.scenario)
        if self._backend.remote or spec is not None:
            # Off the event loop: a shard RPC can block behind the
            # shard's in-flight batch, and compiling a first-seen
            # scenario builds O(m^2) models.
            horizon = await self._executor.run(
                sid,
                self._measured(
                    "open",
                    request.deadline_ms,
                    lambda: self._backend.open(sid, seed, spec),
                ),
            )
        else:
            horizon = await self._executor.run_inline(
                sid, lambda: self._backend.open(sid, seed, spec)
            )
        digest = spec.digest() if spec is not None else "default"
        self._session_scenario[sid] = digest
        self._count_scenario(digest, "opened")
        self._touch(sid)
        self._metrics.record_session_event("opened")
        await self._maybe_evict()
        payload = {"session": sid, "horizon": horizon}
        if spec is not None:
            payload["scenario"] = digest
        return payload

    def _count_scenario(self, digest: str, event: str, n: int = 1) -> None:
        """Bump one per-scenario lifecycle counter (loop thread only)."""
        counters = self._scenario_counters.setdefault(
            digest, {"opened": 0, "steps": 0, "finished": 0}
        )
        counters[event] += n

    async def _op_step(self, request: Request, trace_id: str | None = None) -> dict:
        sid, cell = request.session, request.cell
        assert sid is not None and cell is not None

        # Brownout bypasses the batch window: its added latency is the
        # second overhead shed (after tracing) before any request is.
        if self._batcher is not None and not self._shedder.brownout:
            restored, record = await self._batcher.submit(sid, cell, trace_id)
        elif trace_id is not None:
            tracer = self._tracer
            shedder = self._shedder
            deadline_ms = request.deadline_ms
            submitted = time.perf_counter()

            def _traced_step():
                started = time.perf_counter()
                tracer.record("queue_wait", trace_id, started - submitted, session=sid)
                shedder.observe(started - submitted)
                shedder.check_deadline("step", deadline_ms, started - submitted)
                # Activate the trace on this pool thread so the
                # backend's RPC clients can stamp the wire frame.
                token = activate(tracer, trace_id)
                try:
                    restored = self._restore_if_suspended(sid)
                    result = restored, self._backend.step(sid, cell)
                finally:
                    deactivate(token)
                tracer.record(
                    "solve",
                    trace_id,
                    time.perf_counter() - started,
                    session=sid,
                )
                return result

            restored, record = await self._executor.run(sid, _traced_step)
        else:

            def _step():
                restored = self._restore_if_suspended(sid)
                # The backend validates before stepping, so both
                # serving modes reject a bad request with the same
                # typed error code.
                return restored, self._backend.step(sid, cell)

            restored, record = await self._executor.run(
                sid, self._measured("step", request.deadline_ms, _step)
            )
        if restored:
            self._metrics.record_session_event("restored")
        self._metrics.record_step(record.elapsed_s, record)
        self._count_scenario(self._session_scenario.get(sid, "default"), "steps")
        self._touch(sid)
        await self._maybe_evict()
        return record.to_json()

    async def _op_peek(self, request: Request) -> dict:
        sid = request.session
        assert sid is not None
        if self._batcher is not None:
            await self._batcher.barrier(sid)

        def _peek():
            restored = self._restore_if_suspended(sid)
            return restored, self._backend.peek_budget(sid)

        restored, budget = await self._executor.run(
            sid, self._measured("peek_budget", request.deadline_ms, _peek)
        )
        if restored:
            self._metrics.record_session_event("restored")
        self._touch(sid)
        await self._maybe_evict()
        return {"session": sid, "budget": budget}

    async def _op_finish(self, request: Request) -> dict:
        sid = request.session
        assert sid is not None
        if self._batcher is not None:
            await self._batcher.barrier(sid)

        def _finish():
            restored = self._restore_if_suspended(sid)
            log = self._backend.finish(sid)
            self._store.delete(sid)
            return restored, log

        restored, log = await self._executor.run(
            sid, self._measured("finish", request.deadline_ms, _finish)
        )
        if restored:
            self._metrics.record_session_event("restored")
        self._open.pop(sid, None)
        self._resident_lru.pop(sid, None)
        self._metrics.record_session_event("finished")
        self._count_scenario(
            self._session_scenario.pop(sid, "default"), "finished"
        )
        return {
            "session": sid,
            "n_released": len(log),
            "average_budget": log.average_budget if len(log) else None,
            "n_conservative": log.n_conservative,
        }

    async def _op_checkpoint(self, request: Request) -> dict:
        sid = request.session
        assert sid is not None
        if self._batcher is not None:
            await self._batcher.barrier(sid)

        def _checkpoint():
            restored = self._restore_if_suspended(sid)
            state = self._backend.checkpoint(sid)
            self._store.put(state)
            return restored, state

        restored, state = await self._executor.run(
            sid, self._measured("checkpoint", request.deadline_ms, _checkpoint)
        )
        if restored:
            self._metrics.record_session_event("restored")
        self._touch(sid)
        return {
            "session": sid,
            "t": state.committed_t,
            "state": state.to_json(),
        }

    async def _op_migrate(self, request: Request) -> dict:
        """Drain one cluster worker's sessions onto the remaining ring.

        Only meaningful for backends that place sessions dynamically
        (``--backend tcp://``); shard pools route by hash and cannot
        rehome a session.  The drain runs off the event loop -- it is
        one ``suspend_all`` RPC plus a ``resume`` per session -- while
        racing step requests retry transparently onto each session's
        new home inside the backend.
        """
        if self._draining.is_set():
            raise ServiceBusyError("server is draining; try again later")
        drain = getattr(self._backend, "drain_worker", None)
        if drain is None:
            raise ServiceError(
                "this server's backend has no migratable workers; "
                "'migrate' requires a cluster backend (--backend tcp://...)"
            )
        summary = await asyncio.get_running_loop().run_in_executor(
            None, drain, request.worker
        )
        self._metrics.record_session_event("migrated", summary["migrated"])
        return summary

    async def _op_join(self, request: Request) -> dict:
        """Admit one worker into the cluster's ring at runtime.

        The backend re-forms the ring and live-migrates exactly the
        arcs the newcomer now owns; untouched sessions never move.
        """
        if self._draining.is_set():
            raise ServiceBusyError("server is draining; try again later")
        join = getattr(self._backend, "join_worker", None)
        if join is None:
            raise ServiceError(
                "this server's backend has fixed membership; "
                "'join' requires a cluster backend (--backend tcp://...)"
            )
        summary = await asyncio.get_running_loop().run_in_executor(
            None, join, request.worker
        )
        self._metrics.record_session_event(
            "migrated", summary.get("migrated", 0)
        )
        return summary

    async def _op_leave(self, request: Request) -> dict:
        """Remove one worker from the cluster (draining it first when live)."""
        if self._draining.is_set():
            raise ServiceBusyError("server is draining; try again later")
        leave = getattr(self._backend, "leave_worker", None)
        if leave is None:
            raise ServiceError(
                "this server's backend has fixed membership; "
                "'leave' requires a cluster backend (--backend tcp://...)"
            )
        summary = await asyncio.get_running_loop().run_in_executor(
            None, leave, request.worker
        )
        self._metrics.record_session_event(
            "migrated", summary.get("migrated", 0)
        )
        lost = summary.get("lost", ())
        if lost:
            self._metrics.record_failure("sessions_lost", len(lost))
        return summary

    async def _op_cluster_status(self, request: Request) -> dict:
        """The cluster membership snapshot (no worker RPCs)."""
        status = getattr(self._backend, "cluster_status", None)
        if status is None:
            raise ServiceError(
                "this server's backend is not a cluster; "
                "'cluster_status' requires --backend tcp://..."
            )
        return await asyncio.get_running_loop().run_in_executor(None, status)

    async def _op_stats(self, request: Request | None = None) -> dict:
        spans = 0
        if request is not None:
            spans = int(request.extra.get("spans", 0))
        if self._backend.remote:
            # Shard RPCs can wait behind an in-flight batch; gather the
            # backend's numbers off the event loop.
            return await asyncio.get_running_loop().run_in_executor(
                None, self._collect_stats, spans
            )
        return self._collect_stats(spans)

    def _collect_stats(self, spans: int = 0) -> dict:
        snapshot = self._metrics.snapshot()
        # One RPC round per shard: the per-shard rows already carry each
        # worker's verdict-cache counters, so the aggregate is derived
        # from them instead of a second cache_stats round trip.
        shard_rows = self._backend.shard_stats()
        snapshot["sessions"].update(
            open=len(self._open),
            resident=self._backend.resident_count(),
            stored=len(self._store),
        )
        if shard_rows is None:
            cache = self._backend.cache_stats()
            snapshot["verdict_cache"] = (
                None
                if cache is None
                else {
                    "hits": cache.hits,
                    "misses": cache.misses,
                    "hit_rate": round(cache.hit_rate, 6),
                    "size": cache.size,
                    "evictions": cache.evictions,
                }
            )
        else:
            snapshot["verdict_cache"] = _merge_cache_rows(shard_rows)
        snapshot["server"] = {
            "draining": self._draining.is_set(),
            "connections": len(self._writers),
            "workers": self._executor.workers,
            "shards": self._backend.n_shards,
            "max_sessions": self._config.max_sessions,
            "max_resident": self._config.max_resident,
            "queue_depth": self._executor.queue_depth(),
            "active_sessions": self._executor.active_sessions,
            "metrics_port": self.metrics_port,
        }
        snapshot["batching"] = (
            None if self._batcher is None else self._batcher.stats()
        )
        snapshot["shedding"] = self._shedder.stats()
        snapshot["solver"] = {
            "kernel": _solver_kernel_stats(),
            "front": _front_stats(),
        }
        snapshot["tracing"] = self._tracer.stats()
        snapshot["event_loop"] = self._loop_probe.snapshot()
        if spans > 0:
            snapshot["spans"] = {
                "recent": self._tracer.recent(spans),
                "slow": self._tracer.slow(spans),
            }
        snapshot["shards"] = self._shard_section(shard_rows)
        recovery = getattr(self._backend, "recovery_stats", None)
        if recovery is not None:
            snapshot["recovery"] = recovery()
        snapshot["scenarios"] = {
            "allow_any": self._scenarios.allow_any,
            "allowlist": self._scenarios.allowlisted(),
            "cached": self._scenarios.cached_count(),
            "counters": {
                digest: dict(counters)
                for digest, counters in self._scenario_counters.items()
            },
        }
        return snapshot

    def _shard_section(self, rows: list[dict] | None) -> dict | None:
        """Per-shard counters + their aggregate (``None`` in-process)."""
        if rows is None:
            return None
        dumps = [row["metrics"] for row in rows if row.get("alive")]
        aggregate = ServiceMetrics.aggregate(dumps).snapshot() if dumps else None
        return {
            "count": self._backend.n_shards,
            "alive": sum(1 for row in rows if row.get("alive")),
            "per_shard": rows,
            "aggregate": aggregate,
        }

    # ------------------------------------------------------------------
    # probes and exposition
    # ------------------------------------------------------------------
    #: Heartbeat age (seconds) past which a worker counts as stale for
    #: readiness.  Covers both backends' heartbeat periods (shard pool
    #: 10 s, cluster 5 s) with headroom for a long engine batch.
    STALE_HEARTBEAT_S = 30.0

    def _readiness(self) -> tuple[bool, str]:
        """Local-state readiness: backend up, every worker heartbeating.

        Consults only handle flags and heartbeat ages
        (:meth:`~repro.engine.backend.ExecutionBackend.worker_health`
        never issues RPCs), so the probe stays honest when a worker
        hangs -- and cheap enough for aggressive probe intervals.
        """
        if self._draining.is_set():
            return False, "draining"
        rows = self._backend.worker_health()
        if rows is None:
            return True, "ok"
        down = [row["worker"] for row in rows if not row["alive"]]
        if down:
            return False, f"workers down: {', '.join(down)}"
        stale = [
            row["worker"]
            for row in rows
            if row["heartbeat_age_s"] > self.STALE_HEARTBEAT_S
        ]
        if stale:
            return False, f"workers stale: {', '.join(stale)}"
        return True, f"ok ({len(rows)} workers)"

    async def _render_metrics(self) -> str:
        """The ``/metrics`` body; runs the render off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(
            None,
            lambda: self._metrics.registry.render(
                extra=self._worker_exposition()
            ),
        )

    def _worker_exposition(self) -> str:
        """Per-worker families derived from local handle state at scrape.

        These are rendered as ``extra`` text rather than registered
        families because the worker set is dynamic and the underlying
        state (handle histograms) already lives outside the registry --
        folding them in would double-count on every scrape.
        """
        rows = self._backend.worker_health()
        if not rows:
            return ""
        up: list[str] = []
        age: list[str] = []
        inflight: list[str] = []
        latency: list[str] = []
        for row in rows:
            label = f'worker="{row["worker"]}"'
            up.append(f'repro_worker_up{{{label}}} {int(bool(row["alive"]))}')
            age.append(
                f'repro_worker_heartbeat_age_seconds{{{label}}} '
                f'{row["heartbeat_age_s"]}'
            )
            inflight.append(
                f'repro_worker_inflight{{{label}}} {int(row["inflight"])}'
            )
            histogram = LatencyHistogram()
            histogram.merge_state(row["rpc_latency"])
            latency.extend(
                histogram.exposition_lines(
                    "repro_worker_rpc_latency_seconds", label
                )
            )
        lines = (
            ["# TYPE repro_worker_up gauge", *up]
            + ["# TYPE repro_worker_heartbeat_age_seconds gauge", *age]
            + ["# TYPE repro_worker_inflight gauge", *inflight]
            + ["# TYPE repro_worker_rpc_latency_seconds histogram", *latency]
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # residency management
    # ------------------------------------------------------------------
    def _restore_if_suspended(self, sid: str) -> bool:
        """Bring a suspended session back under its executor lock.

        Runs on a worker thread; only touches the (thread-safe) store
        and the backend entry for ``sid``, which the per-session lock
        protects.  With a sharded backend the state round-trips into
        the owning shard -- routing is a pure hash of the id, so a
        checkpoint taken under any shard count restores correctly.
        """
        if self._backend.contains(sid):
            return False
        state = self._store.get(sid)
        if state is None:
            raise SessionError(f"no open session {sid!r}")
        self._backend.resume(state)
        self._store.delete(sid)
        return True

    def _touch(self, sid: str) -> None:
        """Mark a session resident and most-recently-used (loop thread)."""
        self._open.setdefault(sid, None)
        self._resident_lru.pop(sid, None)
        self._resident_lru[sid] = None

    async def _maybe_evict(self) -> None:
        """Suspend LRU idle sessions past the residency cap."""
        while self._backend.resident_count() > self._config.max_resident:
            victim = None
            for sid in self._resident_lru:
                if self._backend.contains(sid) and self._executor.session_idle(sid):
                    victim = sid
                    break
            if victim is None:
                return  # everything resident is busy; try after next op

            def _suspend(sid=victim):
                if not self._backend.contains(sid):
                    return False  # raced with finish/evict; nothing to do
                try:
                    self._store.put(self._backend.suspend(sid))
                except ShardDownError:
                    # The victim's shard died: it cannot be evicted (or
                    # served), but that is the *victim's* loss -- never
                    # an error for the unrelated request that happened
                    # to trigger eviction.  Dropping it from the LRU
                    # below keeps the scan from re-picking it.
                    return False
                return True

            evicted = await self._executor.run(victim, _suspend)
            self._resident_lru.pop(victim, None)
            if evicted:
                self._metrics.record_session_event("evicted")
