"""Service observability: counters and latency histograms.

Everything here is updated from worker-pool threads *and* the event
loop.  :class:`ServiceMetrics` is now a facade over a
:class:`~repro.obs.registry.MetricsRegistry` -- the same primitives that
render the ``/metrics`` Prometheus exposition -- so the ``stats`` op,
the per-shard dumps and the scrape endpoint all read one set of
families under one lock, and a snapshot is an internally consistent cut
(a histogram's count always matches its buckets).

Family map (Prometheus names in parentheses):

==================  =====================================  ============
snapshot key        family (label)                         kind
==================  =====================================  ============
``requests``        ``repro_requests_total`` (op)          counter
``errors``          ``repro_errors_total`` (code)          counter
``sessions``        ``repro_session_events_total``         counter
                    (event)
``releases``        ``repro_releases_total`` (kind)        counter
``failures``        ``repro_failures_total`` (kind)        counter
``recoveries``      ``repro_recoveries_total`` (kind)      counter
``shed``            ``repro_shed_total`` (op, reason)      counter
``standby_          ``repro_standby_promotions_total``     counter
promotions``
``step_latency``    ``repro_step_latency_seconds``         histogram
``scenario_step_    ``repro_scenario_step_latency_         histogram
latency``           seconds`` (digest)
==================  =====================================  ============

``failures`` counts first-class loss events -- ``sessions_lost`` (drain
found sessions on a dead shard/worker), ``worker_down`` and
``shard_down`` (requests answered with those wire codes) -- which used
to be visible only in drain summaries and per-request errors.

The per-scenario histogram keys on the scenario digest, capped at
:data:`MAX_SCENARIO_DIGESTS` distinct digests per process (beyond that
steps fold into the ``"other"`` series) so a tenant churning digests
cannot grow server memory.

:class:`~repro.obs.registry.LatencyHistogram` is re-exported here for
compatibility -- it moved to :mod:`repro.obs.registry` so shard and
cluster handles can record RPC latencies without importing the service
package.
"""

from __future__ import annotations

from ..obs.registry import LatencyHistogram, MetricsRegistry

__all__ = ["LatencyHistogram", "ServiceMetrics", "MAX_SCENARIO_DIGESTS"]

_SESSION_EVENTS = ("opened", "finished", "evicted", "restored", "migrated")
_RELEASE_KINDS = ("conservative", "forced_uniform")
#: First-class loss counters (the satellite of drain results and typed
#: error replies): always present in snapshots, even at zero.
FAILURE_KINDS = ("sessions_lost", "worker_down", "shard_down")
#: Checkpoint-replay recovery counters: ``worker`` (one per healed
#: worker death), ``session`` (sessions restored bit-identically) and
#: ``replayed_step`` (journal steps re-executed to catch up).
RECOVERY_KINDS = ("worker", "session", "replayed_step")
#: Distinct scenario digests tracked per process before folding into
#: the ``"other"`` series.
MAX_SCENARIO_DIGESTS = 32


class ServiceMetrics:
    """Thread-safe counters + histograms behind the ``stats`` op."""

    def __init__(self, registry: MetricsRegistry | None = None):
        self._registry = registry if registry is not None else MetricsRegistry()
        self._requests = self._registry.counter(
            "repro_requests_total", "Requests received, by op", ("op",)
        )
        self._errors = self._registry.counter(
            "repro_errors_total", "Error replies, by wire code", ("code",)
        )
        self._sessions = self._registry.counter(
            "repro_session_events_total", "Session lifecycle events", ("event",)
        )
        self._releases = self._registry.counter(
            "repro_releases_total", "Released steps, by release kind", ("kind",)
        )
        self._failures = self._registry.counter(
            "repro_failures_total",
            "Loss events: sessions_lost / worker_down / shard_down",
            ("kind",),
        )
        self._recoveries = self._registry.counter(
            "repro_recoveries_total",
            "Checkpoint-replay recoveries: worker / session / replayed_step",
            ("kind",),
        )
        self._shed = self._registry.counter(
            "repro_shed_total",
            "Requests shed before execution, by op and trigger",
            ("op", "reason"),
        )
        self._standby_promotions = self._registry.counter(
            "repro_standby_promotions_total",
            "Warm standbys auto-joined to replace dead workers",
        )
        self._step_latency = self._registry.histogram(
            "repro_step_latency_seconds", "End-to-end step latency"
        )
        self._scenario_latency = self._registry.histogram(
            "repro_scenario_step_latency_seconds",
            "Step latency by scenario digest",
            ("digest",),
        )
        # Seed the fixed-vocabulary families so snapshots always carry
        # every key (the historical Counter(opened=0, ...) behaviour).
        for event in _SESSION_EVENTS:
            self._sessions.inc(0, event=event)
        for kind in _RELEASE_KINDS:
            self._releases.inc(0, kind=kind)
        for kind in FAILURE_KINDS:
            self._failures.inc(0, kind=kind)
        for kind in RECOVERY_KINDS:
            self._recoveries.inc(0, kind=kind)

    @property
    def registry(self) -> MetricsRegistry:
        """The backing registry (the server mounts its gauges here and
        renders it at ``/metrics``)."""
        return self._registry

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_request(self, op: str) -> None:
        """Count one incoming request by op."""
        self._requests.inc(op=op)

    def record_error(self, code: str) -> None:
        """Count one error reply by wire code.

        ``worker_down`` / ``shard_down`` codes also bump the matching
        first-class failure counter.
        """
        self._errors.inc(code=code)
        if code in ("worker_down", "shard_down"):
            self._failures.inc(kind=code)

    def record_failure(self, kind: str, n: int = 1) -> None:
        """Count loss events: sessions_lost / worker_down / shard_down."""
        if n:
            self._failures.inc(n, kind=kind)

    def record_recovery(self, kind: str, n: int = 1) -> None:
        """Count recovery events: worker / session / replayed_step."""
        if n:
            self._recoveries.inc(n, kind=kind)

    def record_shed(self, op: str, reason: str) -> None:
        """Count one request shed before execution.

        ``reason`` is the trigger: ``deadline`` (the request's own
        ``deadline_ms`` was blown by queue wait) or ``queue_delay``
        (the CoDel-style sustained-delay trigger).
        """
        self._shed.inc(op=op, reason=reason)

    def record_standby_promotion(self, n: int = 1) -> None:
        """Count warm standbys auto-joined to replace dead workers."""
        if n:
            self._standby_promotions.inc(n)

    def record_session_event(self, event: str, n: int = 1) -> None:
        """Count a lifecycle event: opened/finished/evicted/restored/migrated."""
        self._sessions.inc(n, event=event)

    def record_step(self, seconds: float, record, scenario: str | None = None) -> None:
        """Count one completed release with its latency.

        ``scenario`` (a digest) additionally lands the latency in the
        per-scenario family, bounded by :data:`MAX_SCENARIO_DIGESTS`.
        """
        with self._registry.lock:
            self._step_latency.observe(seconds)
            if record.conservative:
                self._releases.inc(kind="conservative")
            if record.forced_uniform:
                self._releases.inc(kind="forced_uniform")
            if scenario is not None:
                self._scenario_latency.observe(
                    seconds, digest=self._bounded_digest(scenario)
                )

    def _bounded_digest(self, digest: str) -> str:
        series = self._scenario_latency._series  # under the registry lock
        if (digest,) in series or len(series) < MAX_SCENARIO_DIGESTS:
            return digest
        return "other"

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One atomic plain-dict snapshot (JSON-safe)."""
        with self._registry.lock:
            return {
                "requests": self._requests.as_dict(),
                "errors": self._errors.as_dict(),
                "sessions": self._sessions.as_dict(),
                "releases": self._releases.as_dict(),
                "failures": self._failures.as_dict(),
                "recoveries": self._recoveries.as_dict(),
                "shed": self._shed.as_dict(),
                "standby_promotions": self._standby_promotions.total(),
                "step_latency": self._step_latency.get().snapshot(),
                "scenario_step_latency": self._scenario_latency.snapshots(),
            }

    # ------------------------------------------------------------------
    # cross-process aggregation (the sharded backend)
    # ------------------------------------------------------------------
    def dump(self) -> dict:
        """Mergeable raw state: counters + histogram bucket counts.

        Shard workers return this from their ``stats`` RPC; unlike
        :meth:`snapshot` it survives summation (percentiles recompute
        from the merged buckets).
        """
        with self._registry.lock:
            return {
                "requests": self._requests.as_dict(),
                "errors": self._errors.as_dict(),
                "sessions": self._sessions.as_dict(),
                "releases": self._releases.as_dict(),
                "failures": self._failures.as_dict(),
                "recoveries": self._recoveries.as_dict(),
                "shed": self._shed.as_dict(),
                "standby_promotions": self._standby_promotions.total(),
                "step_latency": self._step_latency.get().state(),
                "scenario_step_latency": {
                    digest: histogram.state()
                    for (digest,), histogram in (
                        self._scenario_latency._series.items()
                    )
                },
            }

    def merge_dump(self, dump: dict) -> None:
        """Fold another instance's :meth:`dump` into this one.

        Tolerates dumps from builds without the newer keys
        (``failures``, ``scenario_step_latency``) -- mixed fleets
        aggregate what they have.
        """
        with self._registry.lock:
            for op, count in dump.get("requests", {}).items():
                self._requests.inc(int(count), op=op)
            for code, count in dump.get("errors", {}).items():
                self._errors.inc(int(count), code=code)
            for event, count in dump.get("sessions", {}).items():
                self._sessions.inc(int(count), event=event)
            for kind, count in dump.get("releases", {}).items():
                self._releases.inc(int(count), kind=kind)
            for kind, count in dump.get("failures", {}).items():
                self._failures.inc(int(count), kind=kind)
            for kind, count in dump.get("recoveries", {}).items():
                self._recoveries.inc(int(count), kind=kind)
            for key, count in dump.get("shed", {}).items():
                op, _, reason = key.partition("|")
                self._shed.inc(int(count), op=op, reason=reason)
            promotions = int(dump.get("standby_promotions", 0))
            if promotions:
                self._standby_promotions.inc(promotions)
            self._step_latency.get().merge_state(dump["step_latency"])
            for digest, state in dump.get("scenario_step_latency", {}).items():
                self._scenario_latency.merge_state(
                    state, digest=self._bounded_digest(digest)
                )

    @classmethod
    def aggregate(cls, dumps) -> "ServiceMetrics":
        """One metrics instance merging many :meth:`dump` payloads."""
        merged = cls()
        for dump in dumps:
            merged.merge_dump(dump)
        return merged
