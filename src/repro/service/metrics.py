"""Service observability: counters and latency histograms.

Everything here is updated from worker-pool threads *and* the event
loop, so :class:`ServiceMetrics` guards its state with one lock and
hands out plain-dict snapshots (the ``stats`` op's payload).

The histogram is a fixed log-spaced bucket array rather than a sample
reservoir: constant memory regardless of traffic, and percentile reads
(p50/p99) resolve to a bucket's upper bound -- at the configured 16
buckets per decade that is a <= ~15% overestimate, plenty for a
latency dashboard and never an *under*-estimate.
"""

from __future__ import annotations

import math
import threading
from collections import Counter

#: Histogram range: 10 microseconds .. ~17 minutes, 16 buckets/decade.
_FLOOR_S = 1e-5
_BUCKETS_PER_DECADE = 16
_N_BUCKETS = 8 * _BUCKETS_PER_DECADE


class LatencyHistogram:
    """Fixed-bucket log-scale latency histogram (seconds).

    Not thread-safe on its own; :class:`ServiceMetrics` serializes
    access.  Standalone use (the load benchmark) is single-threaded.
    """

    def __init__(self):
        self._counts = [0] * _N_BUCKETS
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    @staticmethod
    def _bucket(seconds: float) -> int:
        if seconds <= _FLOOR_S:
            return 0
        index = int(math.log10(seconds / _FLOOR_S) * _BUCKETS_PER_DECADE)
        return min(index, _N_BUCKETS - 1)

    @staticmethod
    def _upper_bound(index: int) -> float:
        return _FLOOR_S * 10.0 ** ((index + 1) / _BUCKETS_PER_DECADE)

    def record(self, seconds: float) -> None:
        """Add one observation."""
        seconds = float(seconds)
        self._counts[self._bucket(seconds)] += 1
        self._count += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean latency in seconds (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Latency (seconds) at quantile ``q`` in [0, 1] (0.0 when empty).

        Returns the upper bound of the bucket holding the q-th
        observation, clamped to the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self._count:
            return 0.0
        rank = max(1, math.ceil(q * self._count))
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= rank:
                if index == _N_BUCKETS - 1:
                    return self._max  # overflow bucket: no finite bound
                return min(self._upper_bound(index), self._max)
        return self._max

    def snapshot(self) -> dict:
        """Summary dict in milliseconds (the wire/report unit)."""
        return {
            "count": self._count,
            "mean_ms": round(self.mean * 1e3, 4),
            "p50_ms": round(self.quantile(0.50) * 1e3, 4),
            "p99_ms": round(self.quantile(0.99) * 1e3, 4),
            "max_ms": round(self._max * 1e3, 4),
        }

    def state(self) -> dict:
        """Raw mergeable state (bucket counts, not percentiles).

        Unlike :meth:`snapshot`, this form can be summed across
        processes without losing distribution shape -- shard workers
        ship it over the RPC channel and the server merges via
        :meth:`merge_state`.
        """
        return {
            "counts": list(self._counts),
            "count": self._count,
            "sum": self._sum,
            "max": self._max,
        }

    def merge_state(self, state: dict) -> None:
        """Fold another histogram's :meth:`state` into this one."""
        counts = state["counts"]
        if len(counts) != _N_BUCKETS:
            raise ValueError(
                f"histogram state has {len(counts)} buckets, expected {_N_BUCKETS}"
            )
        for index, count in enumerate(counts):
            self._counts[index] += int(count)
        self._count += int(state["count"])
        self._sum += float(state["sum"])
        self._max = max(self._max, float(state["max"]))


class ServiceMetrics:
    """Thread-safe counters + histograms behind the ``stats`` op."""

    def __init__(self):
        self._lock = threading.Lock()
        self._requests: Counter[str] = Counter()
        self._errors: Counter[str] = Counter()
        self._sessions = Counter(
            opened=0, finished=0, evicted=0, restored=0, migrated=0
        )
        self._releases = Counter(conservative=0, forced_uniform=0)
        self._step_latency = LatencyHistogram()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_request(self, op: str) -> None:
        """Count one incoming request by op."""
        with self._lock:
            self._requests[op] += 1

    def record_error(self, code: str) -> None:
        """Count one error reply by wire code."""
        with self._lock:
            self._errors[code] += 1

    def record_session_event(self, event: str, n: int = 1) -> None:
        """Count a lifecycle event: opened/finished/evicted/restored/migrated."""
        with self._lock:
            self._sessions[event] += n

    def record_step(self, seconds: float, record) -> None:
        """Count one completed release with its latency."""
        with self._lock:
            self._step_latency.record(seconds)
            if record.conservative:
                self._releases["conservative"] += 1
            if record.forced_uniform:
                self._releases["forced_uniform"] += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """One atomic plain-dict snapshot (JSON-safe)."""
        with self._lock:
            return {
                "requests": dict(self._requests),
                "errors": dict(self._errors),
                "sessions": dict(self._sessions),
                "releases": dict(self._releases),
                "step_latency": self._step_latency.snapshot(),
            }

    # ------------------------------------------------------------------
    # cross-process aggregation (the sharded backend)
    # ------------------------------------------------------------------
    def dump(self) -> dict:
        """Mergeable raw state: counters + histogram bucket counts.

        Shard workers return this from their ``stats`` RPC; unlike
        :meth:`snapshot` it survives summation (percentiles recompute
        from the merged buckets).
        """
        with self._lock:
            return {
                "requests": dict(self._requests),
                "errors": dict(self._errors),
                "sessions": dict(self._sessions),
                "releases": dict(self._releases),
                "step_latency": self._step_latency.state(),
            }

    def merge_dump(self, dump: dict) -> None:
        """Fold another instance's :meth:`dump` into this one."""
        with self._lock:
            self._requests.update(Counter(dump.get("requests", {})))
            self._errors.update(Counter(dump.get("errors", {})))
            self._sessions.update(Counter(dump.get("sessions", {})))
            self._releases.update(Counter(dump.get("releases", {})))
            self._step_latency.merge_state(dump["step_latency"])

    @classmethod
    def aggregate(cls, dumps) -> "ServiceMetrics":
        """One metrics instance merging many :meth:`dump` payloads."""
        merged = cls()
        for dump in dumps:
            merged.merge_dump(dump)
        return merged
