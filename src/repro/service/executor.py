"""Worker-pool offload with strict per-session ordering.

The calibrate-and-check step is CPU-bound (linear algebra + the QP
solver); run on the event loop it would serialize every client behind
the slowest step and starve the loop.  :class:`SessionExecutor` pushes
each step onto a ``ThreadPoolExecutor`` -- numpy/scipy release the GIL
in their kernels, so different sessions genuinely overlap -- while a
per-session async lock guarantees that operations *on one session*
never run concurrently or out of order (the session owns a stateful RNG
and quantifier fronts; ordering is what makes server-mediated streams
bit-identical to direct ones).

The same per-session lock also serializes lifecycle operations (open,
finish, evict, restore) against in-flight steps of that session.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, TypeVar

T = TypeVar("T")


def default_workers() -> int:
    """Worker count when unspecified: the machine's cores, capped."""
    return min(32, os.cpu_count() or 4)


class _KeyedLocks:
    """Per-key asyncio locks that free themselves when unused."""

    def __init__(self):
        self._locks: dict[str, list] = {}  # key -> [lock, holders+waiters]

    @contextlib.asynccontextmanager
    async def hold(self, key: str):
        entry = self._locks.get(key)
        if entry is None:
            entry = self._locks[key] = [asyncio.Lock(), 0]
        entry[1] += 1
        try:
            async with entry[0]:
                yield
        finally:
            entry[1] -= 1
            if entry[1] == 0:
                self._locks.pop(key, None)

    def is_idle(self, key: str) -> bool:
        """True when no task holds or awaits the key's lock."""
        return key not in self._locks

    def __len__(self) -> int:
        return len(self._locks)


class SessionExecutor:
    """Run session-touching callables off the event loop, in order.

    Parameters
    ----------
    workers:
        Thread-pool size; ``0`` runs callables inline on the event loop
        (useful for debugging and for tests that want single-threaded
        determinism of *scheduling*, not just results).
    """

    def __init__(self, workers: int | None = None):
        self._workers = default_workers() if workers is None else int(workers)
        self._pool = (
            ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-step"
            )
            if self._workers > 0
            else None
        )
        self._locks = _KeyedLocks()

    @property
    def workers(self) -> int:
        """Configured worker count (0 = inline)."""
        return self._workers

    def session_idle(self, session_id: str) -> bool:
        """True when no request currently touches ``session_id``."""
        return self._locks.is_idle(session_id)

    async def run(self, session_id: str, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the session's lock, on the pool."""
        async with self._locks.hold(session_id):
            if self._pool is None:
                return fn()
            return await asyncio.get_running_loop().run_in_executor(
                self._pool, fn
            )

    async def run_inline(self, session_id: str, fn: Callable[[], T]) -> T:
        """Run a cheap ``fn`` under the session's lock, on the loop.

        For operations that only touch dicts and small objects (open,
        peek, evict bookkeeping) the pool round-trip costs more than the
        work.
        """
        async with self._locks.hold(session_id):
            return fn()

    def shutdown(self) -> None:
        """Stop the pool (waits for running steps)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
