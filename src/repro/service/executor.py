"""Worker-pool offload with strict per-session ordering.

The calibrate-and-check step is CPU-bound (linear algebra + the QP
solver); run on the event loop it would serialize every client behind
the slowest step and starve the loop.  :class:`SessionExecutor` pushes
each step onto a ``ThreadPoolExecutor`` -- numpy/scipy release the GIL
in their kernels, so different sessions genuinely overlap -- while a
per-session async lock guarantees that operations *on one session*
never run concurrently or out of order (the session owns a stateful RNG
and quantifier fronts; ordering is what makes server-mediated streams
bit-identical to direct ones).

The same per-session lock also serializes lifecycle operations (open,
finish, evict, restore) against in-flight steps of that session.

:class:`StepBatcher` adds opt-in micro-batching on top: concurrent step
requests arriving within a small window coalesce into one
:meth:`~repro.engine.SessionManager.step_many` call, which batches the
linear algebra and solver work across sessions while the per-session
locks keep each stream ordered and bit-identical.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, TypeVar

T = TypeVar("T")


def default_workers(shards: int = 0) -> int:
    """Worker count when unspecified, aware of the shard layout.

    In-process (``shards == 0``) the workers *are* the CPU concurrency:
    one thread per core, capped.  With a sharded backend the engine CPU
    moves into ``shards`` worker processes and the parent's threads
    only wait on RPC replies, so spawning cores' worth of threads per
    process would just oversubscribe the box with bookkeeping: the pool
    shrinks so ``workers x shards`` stays near the core count (never
    below 2 threads, so lifecycle ops don't serialize behind one slot).
    Both numbers are reported by the ``stats`` op (``server.workers``,
    ``server.shards``).
    """
    cores = os.cpu_count() or 4
    if shards <= 0:
        return min(32, cores)
    return min(32, max(2, cores // shards))


class _KeyedLocks:
    """Per-key asyncio locks that free themselves when unused."""

    def __init__(self):
        self._locks: dict[str, list] = {}  # key -> [lock, holders+waiters]

    @contextlib.asynccontextmanager
    async def hold(self, key: str):
        entry = self._locks.get(key)
        if entry is None:
            entry = self._locks[key] = [asyncio.Lock(), 0]
        entry[1] += 1
        try:
            async with entry[0]:
                yield
        finally:
            entry[1] -= 1
            if entry[1] == 0:
                self._locks.pop(key, None)

    def is_idle(self, key: str) -> bool:
        """True when no task holds or awaits the key's lock."""
        return key not in self._locks

    def __len__(self) -> int:
        return len(self._locks)


class SessionExecutor:
    """Run session-touching callables off the event loop, in order.

    Parameters
    ----------
    workers:
        Thread-pool size; ``0`` runs callables inline on the event loop
        (useful for debugging and for tests that want single-threaded
        determinism of *scheduling*, not just results).
    shards:
        Shard-process count of the backend this executor fronts; only
        shapes the *default* worker count (see :func:`default_workers`).
    """

    def __init__(self, workers: int | None = None, shards: int = 0):
        self._workers = default_workers(shards) if workers is None else int(workers)
        self._pool = (
            ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="repro-step"
            )
            if self._workers > 0
            else None
        )
        self._locks = _KeyedLocks()

    @property
    def workers(self) -> int:
        """Configured worker count (0 = inline)."""
        return self._workers

    @property
    def active_sessions(self) -> int:
        """Sessions with a held or awaited lock right now (gauge)."""
        return len(self._locks)

    def queue_depth(self) -> int:
        """Jobs waiting in the pool's queue (0 when inline).

        Reads the executor's internal work queue -- guarded, so an
        interpreter without it simply reports 0 instead of breaking
        the scrape.
        """
        if self._pool is None:
            return 0
        queue = getattr(self._pool, "_work_queue", None)
        if queue is None:
            return 0
        try:
            return queue.qsize()
        except (NotImplementedError, OSError):
            return 0

    def session_idle(self, session_id: str) -> bool:
        """True when no request currently touches ``session_id``."""
        return self._locks.is_idle(session_id)

    async def run(self, session_id: str, fn: Callable[[], T]) -> T:
        """Run ``fn`` under the session's lock, on the pool."""
        async with self._locks.hold(session_id):
            if self._pool is None:
                return fn()
            return await asyncio.get_running_loop().run_in_executor(
                self._pool, fn
            )

    async def run_inline(self, session_id: str, fn: Callable[[], T]) -> T:
        """Run a cheap ``fn`` under the session's lock, on the loop.

        For operations that only touch dicts and small objects (open,
        peek, evict bookkeeping) the pool round-trip costs more than the
        work.
        """
        async with self._locks.hold(session_id):
            return fn()

    @contextlib.asynccontextmanager
    async def hold_many(self, session_ids, acquisition_gate: asyncio.Lock | None = None):
        """Hold several sessions' locks at once (batched stepping).

        Locks are acquired in sorted order, so any two holders that
        overlap acquire their common sessions in the same global order
        -- no deadlock regardless of how batches interleave with
        single-session operations (which never acquire a second lock).

        ``acquisition_gate`` serializes the *acquisition phase* across
        batches: a later batch cannot start queueing on any lock until
        the earlier batch holds all of its own, so two batches sharing
        a session always apply their steps in flush order even when the
        earlier batch is momentarily blocked on an unrelated contended
        lock.  The gate is released before the work runs, so disjoint
        batches still execute concurrently.
        """
        async with contextlib.AsyncExitStack() as stack:
            if acquisition_gate is not None:
                await acquisition_gate.acquire()
            try:
                for session_id in sorted(session_ids):
                    await stack.enter_async_context(self._locks.hold(session_id))
            finally:
                if acquisition_gate is not None:
                    acquisition_gate.release()
            yield

    async def run_batch(
        self,
        session_ids,
        fn: Callable[[], T],
        acquisition_gate: asyncio.Lock | None = None,
    ) -> T:
        """Run ``fn`` on the pool while holding every session's lock."""
        async with self.hold_many(session_ids, acquisition_gate):
            if self._pool is None:
                return fn()
            return await asyncio.get_running_loop().run_in_executor(
                self._pool, fn
            )

    def shutdown(self) -> None:
        """Stop the pool (waits for running steps)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)


class StepBatcher:
    """Coalesce concurrent step requests onto one batched backend call.

    Opt-in (``--batch-window-ms``): the first step request of a batch
    opens a collection window; requests landing within it join; when the
    window closes, one worker-pool job steps the whole batch through the
    execution backend's batched pipeline
    (:meth:`~repro.engine.backend.ExecutionBackend.step_batch`) under
    every member session's lock.  Accepts a
    :class:`~repro.engine.SessionManager` (wrapped in-process) or any
    :class:`~repro.engine.backend.ExecutionBackend`.

    Ordering and stream identity are preserved:

    * a session appears at most once per batch -- a second request for a
      session already collected flushes the open batch immediately and
      seeds the next one;
    * batches acquire their session locks under one acquisition gate
      (see :meth:`SessionExecutor.hold_many`), so consecutive batches
      touching the same session apply its steps strictly in flush
      order, and :meth:`barrier` lets non-step operations on a session
      wait for its pending batched step first;
    * ``step_many`` itself is bit-identical to per-session stepping, so
      a served stream looks exactly as it would without batching --
      micro-batching only trades a bounded admission latency for
      cross-session throughput.

    Failures stay per-request: each member is validated (and restored
    from the store) individually, so one bad session id or cell rejects
    that request alone; only an engine-level error inside the shared
    batched call fails that member's timestamp group.

    With a sharded backend the flushed batch additionally fans out as
    at most one RPC per shard (see
    :meth:`repro.engine.shard.ShardPool.step_batch`), which is the
    multi-core scaling path: one collection window's worth of steps
    runs on every shard process in parallel.
    """

    def __init__(
        self,
        manager,
        executor: SessionExecutor,
        window_s: float,
        restore: Callable[[str], bool] | None = None,
        tracer=None,
    ):
        from ..engine.backend import as_backend
        from ..obs.trace import NULL_TRACER

        self._backend = as_backend(manager)
        self._executor = executor
        self._window_s = float(window_s)
        self._restore = restore
        self._tracer = tracer if tracer is not None else NULL_TRACER
        # sid -> (cell, future, trace_id, enqueued_perf_s)
        self._pending: dict[str, tuple] = {}
        # Newest in-flight (flushed but unresolved) step future per
        # session; the acquisition gate orders batches, so awaiting the
        # newest also waits out any older one for the same session.
        self._inflight: dict[str, asyncio.Future] = {}
        self._window_task: asyncio.Task | None = None
        self._flush_tasks: set[asyncio.Task] = set()
        self._acquisition_gate = asyncio.Lock()
        self._batches = 0
        self._steps = 0
        self._max_batch = 0

    def stats(self) -> dict:
        """Counters for the ``stats`` op."""
        return {
            "window_ms": self._window_s * 1e3,
            "batches": self._batches,
            "steps": self._steps,
            "max_batch": self._max_batch,
            "mean_batch": round(self._steps / self._batches, 3)
            if self._batches
            else None,
            "pending": len(self._pending),
            "inflight": len(self._inflight),
        }

    def window_occupancy(self) -> int:
        """Steps collected in the currently open window (gauge)."""
        return len(self._pending)

    async def submit(self, session_id: str, cell: int, trace_id: str | None = None):
        """Queue one step; resolves to ``(restored, record)`` or raises."""
        loop = asyncio.get_running_loop()
        if session_id in self._pending:
            # Same session twice in one window: close the batch so the
            # two steps stay strictly ordered (the locks do the rest).
            self._spawn_flush()
        future: asyncio.Future = loop.create_future()
        self._pending[session_id] = (
            int(cell),
            future,
            trace_id,
            time.perf_counter() if self._tracer.enabled else 0.0,
        )
        if self._window_task is None:
            self._window_task = loop.create_task(self._window())
        return await future

    async def barrier(self, session_id: str) -> None:
        """Wait out a pending or in-flight batched step for ``session_id``.

        Non-step operations (finish, checkpoint, peek) call this before
        taking the session's lock, so a step still sitting in the open
        collection window -- or flushed but not yet holding its locks --
        cannot be overtaken by a later request for the same session.
        The step's own outcome (or error) is delivered to its
        submitter, not here.
        """
        entry = self._pending.get(session_id)
        if entry is not None:
            self._spawn_flush()
            future = entry[1]
        else:
            future = self._inflight.get(session_id)
            if future is None:
                return
        try:
            await asyncio.shield(future)
        except BaseException:  # noqa: BLE001 - outcome belongs to the submitter
            pass

    def _spawn_flush(self) -> None:
        batch = self._pending
        self._pending = {}
        if self._window_task is not None:
            self._window_task.cancel()
            self._window_task = None
        if not batch:
            return
        for sid, entry in batch.items():
            future = entry[1]
            self._inflight[sid] = future

            def _clear(done, sid=sid, future=future):
                if self._inflight.get(sid) is future:
                    del self._inflight[sid]

            future.add_done_callback(_clear)
        task = asyncio.get_running_loop().create_task(self._flush(batch))
        self._flush_tasks.add(task)
        task.add_done_callback(self._flush_tasks.discard)

    async def _window(self) -> None:
        try:
            await asyncio.sleep(self._window_s)
        except asyncio.CancelledError:
            return
        self._window_task = None
        self._spawn_flush()

    async def _flush(self, batch: dict[str, tuple]) -> None:
        self._batches += 1
        self._steps += len(batch)
        self._max_batch = max(self._max_batch, len(batch))
        backend = self._backend
        restore = self._restore
        tracer = self._tracer
        cells = {sid: entry[0] for sid, entry in batch.items()}
        if tracer.enabled:
            # Batch-wait: submit -> flush start, per member (its share
            # of the collection window plus any flush backlog).
            flushed_at = time.perf_counter()
            for sid, entry in batch.items():
                if entry[2] is not None:
                    tracer.record(
                        "batch_wait",
                        entry[2],
                        flushed_at - entry[3],
                        session=sid,
                        batch=len(batch),
                    )

        def _run():
            # Restore store-parked members individually, then hand the
            # batch to the backend, which validates each member, groups
            # by timestamp (and by shard when sharded) and isolates
            # errors per member / per lockstep group.
            errors: dict[str, BaseException] = {}
            restored: dict[str, bool] = {}
            todo: dict[str, int] = {}
            for sid, cell in cells.items():
                try:
                    restored[sid] = bool(restore(sid)) if restore else False
                    todo[sid] = cell
                except Exception as error:  # noqa: BLE001 - isolate per member
                    errors[sid] = error
            solve_started = time.perf_counter() if tracer.enabled else 0.0
            records, step_errors = backend.step_batch(todo)
            if tracer.enabled:
                # One batched backend call served every member: each
                # gets a solve span of the shared duration, tagged with
                # the batch size so dashboards can tell it apart from a
                # solo step.
                solve_s = time.perf_counter() - solve_started
                for sid in todo:
                    trace_id = batch[sid][2]
                    if trace_id is not None:
                        tracer.record(
                            "solve", trace_id, solve_s,
                            session=sid, batch=len(todo),
                        )
            errors.update(step_errors)
            return records, errors, restored

        try:
            records, errors, restored = await self._executor.run_batch(
                batch.keys(), _run, self._acquisition_gate
            )
        except BaseException as error:  # noqa: BLE001 - route to every waiter
            for entry in batch.values():
                future = entry[1]
                if not future.done():
                    future.set_exception(error)
            return
        for sid, entry in batch.items():
            future = entry[1]
            if future.done():
                continue
            if sid in errors:
                future.set_exception(errors[sid])
            else:
                future.set_result((restored.get(sid, False), records[sid]))
